"""Tests of the deterministic RNG and the job arrival generators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import DeterministicRNG
from repro.scheduler.arrivals import PoissonArrivalProcess, TraceArrivalProcess


class TestDeterministicRNG:
    def test_same_seed_same_sequence(self):
        a = DeterministicRNG(123)
        b = DeterministicRNG(123)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError):
            DeterministicRNG("42")  # type: ignore[arg-type]

    def test_spawn_is_independent_of_parent_draws(self):
        parent1 = DeterministicRNG(7)
        parent2 = DeterministicRNG(7)
        parent2.random()  # extra draw must not perturb the child stream
        child1 = parent1.spawn("stream")
        child2 = parent2.spawn("stream")
        assert [child1.random() for _ in range(10)] == [
            child2.random() for _ in range(10)
        ]

    def test_spawn_keys_give_distinct_streams(self):
        parent = DeterministicRNG(7)
        a = parent.spawn("a")
        b = parent.spawn("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_exponential_is_positive(self):
        rng = DeterministicRNG(0)
        draws = [rng.exponential(2.0) for _ in range(100)]
        assert all(value > 0 for value in draws)

    def test_exponential_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).exponential(0.0)

    def test_integer_bounds_inclusive(self):
        rng = DeterministicRNG(3)
        draws = {rng.integer(1, 4) for _ in range(200)}
        assert draws == {1, 2, 3, 4}

    def test_uniform_bounds(self):
        rng = DeterministicRNG(3)
        assert all(2.0 <= rng.uniform(2.0, 5.0) <= 5.0 for _ in range(100))

    def test_choice(self):
        rng = DeterministicRNG(3)
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffled_is_a_permutation_and_keeps_input(self):
        rng = DeterministicRNG(3)
        items = list(range(10))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        times1 = PoissonArrivalProcess(2.0, DeterministicRNG(5)).generate(50)
        times2 = PoissonArrivalProcess(2.0, DeterministicRNG(5)).generate(50)
        assert times1 == times2

    def test_non_decreasing_and_positive(self):
        times = PoissonArrivalProcess(2.0, DeterministicRNG(5)).generate(100)
        assert len(times) == 100
        assert all(t > 0 for t in times)
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_mean_gap_tracks_rate(self):
        rate = 4.0
        times = PoissonArrivalProcess(rate, DeterministicRNG(11)).generate(4000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_start_offsets_first_arrival(self):
        times = PoissonArrivalProcess(
            2.0, DeterministicRNG(5), start=100.0
        ).generate(10)
        assert times[0] > 100.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(0.0, DeterministicRNG(0))
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(1.0, DeterministicRNG(0), start=-1.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivalProcess(1.0, DeterministicRNG(0)).generate(-1)


class TestTraceArrivals:
    def test_replays_sorted_prefix(self):
        trace = TraceArrivalProcess([3.0, 1.0, 2.0])
        assert trace.generate(2) == [1.0, 2.0]
        assert trace.generate(3) == [1.0, 2.0, 3.0]

    def test_rejects_negative_times(self):
        with pytest.raises(ConfigurationError):
            TraceArrivalProcess([-1.0, 2.0])

    def test_rejects_overlong_request(self):
        with pytest.raises(ConfigurationError):
            TraceArrivalProcess([1.0]).generate(2)
