"""Integration-style tests for the Simulation facade, WMS and tracing."""

import pytest

from repro import File, Simulation, SimulationConfig
from repro.errors import ConfigurationError, SchedulingError
from repro.pagecache.config import PageCacheConfig
from repro.simulator.workflow import Task, Workflow, chain_workflow
from repro.units import GB, GiB, MBps


def quiet_config(**kwargs):
    """A simulation configuration without background flushing or tracing."""
    defaults = dict(
        cache_mode="writeback",
        page_cache=PageCacheConfig(periodic_flushing=False),
        trace_interval=None,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def simple_pipeline(size=1 * GB, name="app"):
    files = [File(f"{name}_f{i}", size) for i in range(3)]
    workflow = chain_workflow(name, files, [2.0, 3.0])
    return workflow, files[0]


class TestSimulationConfig:
    def test_invalid_cache_mode(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(cache_mode="bogus")

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(chunk_size=0)

    def test_invalid_trace_interval(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(trace_interval=0)


class TestSimulationSetup:
    def test_host_lookup_requires_platform(self):
        sim = Simulation(config=quiet_config())
        with pytest.raises(ConfigurationError):
            sim.host("node1")

    def test_run_requires_workflow(self):
        sim = Simulation(config=quiet_config())
        sim.create_single_node_platform()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_run_twice_rejected(self):
        sim = Simulation(config=quiet_config())
        sim.create_single_node_platform()
        svc = sim.create_storage_service("node1", "/local")
        workflow, input_file = simple_pipeline()
        sim.stage_file(input_file, svc)
        sim.submit_workflow(workflow, host="node1", storage=svc)
        sim.run()
        with pytest.raises(ConfigurationError):
            sim.run()

    def test_unknown_cache_mode_for_service(self):
        sim = Simulation(config=quiet_config())
        sim.create_single_node_platform()
        with pytest.raises(ConfigurationError):
            sim.create_storage_service("node1", "/local", cache_mode="bogus")

    def test_missing_input_file_detected(self):
        sim = Simulation(config=quiet_config())
        sim.create_single_node_platform()
        svc = sim.create_storage_service("node1", "/local")
        workflow, input_file = simple_pipeline()
        # Input file intentionally not staged.
        sim.submit_workflow(workflow, host="node1", storage=svc)
        with pytest.raises(SchedulingError):
            sim.run()


class TestEndToEndExecution:
    def _run(self, cache_mode):
        sim = Simulation(config=quiet_config(cache_mode=cache_mode))
        sim.create_single_node_platform(
            memory_size=16 * GiB,
            memory_bandwidth=1000 * MBps,
            disk_bandwidth=100 * MBps,
        )
        svc = sim.create_storage_service("node1", "/local")
        workflow, input_file = simple_pipeline()
        sim.stage_file(input_file, svc)
        sim.submit_workflow(workflow, host="node1", storage=svc, label="app")
        return sim.run()

    def test_cacheless_execution_times(self):
        result = self._run("none")
        # Task1: 10 s read + 2 s compute + 10 s write; Task2: 10 + 3 + 10.
        assert result.makespan == pytest.approx(45.0)
        assert result.duration_of("app_task1", "read") == pytest.approx(10.0)
        assert result.duration_of("app_task2", "read") == pytest.approx(10.0)
        assert result.total_read_time() == pytest.approx(20.0)
        assert result.total_write_time() == pytest.approx(20.0)

    def test_writeback_execution_is_faster(self):
        result = self._run("writeback")
        # Reads of produced files and all writes hit the cache at 1000 MBps.
        assert result.duration_of("app_task1", "read") == pytest.approx(10.0)
        assert result.duration_of("app_task1", "write") == pytest.approx(1.0)
        assert result.duration_of("app_task2", "read") == pytest.approx(1.0)
        assert result.makespan < 45.0
        stats = result.cache_stats["node1"]
        assert stats.cache_hit_bytes > 0

    def test_writethrough_writes_pay_disk(self):
        result = self._run("writethrough")
        assert result.duration_of("app_task1", "write") == pytest.approx(10.0)
        # Written data is cached, so the next task's read is fast.
        assert result.duration_of("app_task2", "read") == pytest.approx(1.0)

    def test_operation_records_are_complete(self):
        result = self._run("writeback")
        kinds = [(op.task, op.kind) for op in result.operations]
        assert ("app_task1", "read") in kinds
        assert ("app_task1", "compute") in kinds
        assert ("app_task2", "write") in kinds
        assert len(result.operations_of("read", app="app")) == 2
        assert result.app_makespans["app"] == pytest.approx(result.makespan)

    def test_mean_app_times_single_app(self):
        result = self._run("none")
        assert result.mean_app_read_time() == pytest.approx(20.0)
        assert result.mean_app_write_time() == pytest.approx(20.0)


class TestConcurrentWorkflows:
    def test_two_apps_share_the_disk(self):
        sim = Simulation(config=quiet_config(cache_mode="none"))
        sim.create_single_node_platform(
            memory_size=16 * GiB,
            memory_bandwidth=1000 * MBps,
            disk_bandwidth=100 * MBps,
        )
        svc = sim.create_storage_service("node1", "/local")
        for index in range(2):
            workflow, input_file = simple_pipeline(name=f"app{index}")
            sim.stage_file(input_file, svc)
            sim.submit_workflow(workflow, host="node1", storage=svc)
        result = sim.run()
        # Each app alone would take 45 s; sharing the disk roughly doubles
        # the I/O time but not the compute time.
        assert result.makespan > 45.0
        assert len(result.app_makespans) == 2

    def test_compute_contention_with_single_core(self):
        sim = Simulation(config=quiet_config(cache_mode="none"))
        sim.create_single_node_platform(
            cores=1,
            memory_size=16 * GiB,
            memory_bandwidth=1000 * MBps,
            disk_bandwidth=1000 * MBps,
        )
        svc = sim.create_storage_service("node1", "/local")
        compute_heavy = Workflow("hog")
        f_in = File("hog_in", 1 * GB)
        compute_heavy.add_task(
            Task.from_cpu_time("burn", 10.0, inputs=[f_in], outputs=[File("hog_out", 1 * GB)])
        )
        other = Workflow("other")
        f_in2 = File("other_in", 1 * GB)
        other.add_task(
            Task.from_cpu_time("burn2", 10.0, inputs=[f_in2], outputs=[File("other_out", 1 * GB)])
        )
        sim.stage_file(f_in, svc)
        sim.stage_file(f_in2, svc)
        sim.submit_workflow(compute_heavy, host="node1", storage=svc)
        sim.submit_workflow(other, host="node1", storage=svc)
        result = sim.run()
        # With one core the 10 s computations serialise.
        assert result.makespan >= 20.0


class TestNFSSimulation:
    def test_nfs_writethrough_and_server_cache(self):
        sim = Simulation(config=quiet_config())
        sim.create_cluster_platform(
            memory_size=16 * GiB,
            memory_bandwidth=1000 * MBps,
            local_disk_bandwidth=100 * MBps,
            remote_disk_bandwidth=100 * MBps,
            network_bandwidth=1000 * MBps,
        )
        svc = sim.create_nfs_storage_service("storage1", "/export",
                                             cache_mode="writethrough")
        workflow, input_file = simple_pipeline()
        sim.stage_file(input_file, svc)
        sim.submit_workflow(workflow, host="node1", storage=svc, label="app")
        result = sim.run()
        # Writes are writethrough: roughly disk bandwidth + network.
        assert result.duration_of("app_task1", "write") >= 10.0
        # The file written by task1 is in the server cache, so task2's read
        # avoids the server disk.
        assert result.duration_of("app_task2", "read") < 5.0


class TestMemoryTracing:
    def test_memory_trace_collected(self):
        sim = Simulation(config=SimulationConfig(
            cache_mode="writeback",
            page_cache=PageCacheConfig(periodic_flushing=False),
            trace_interval=1.0,
        ))
        sim.create_single_node_platform(
            memory_size=16 * GiB,
            memory_bandwidth=1000 * MBps,
            disk_bandwidth=100 * MBps,
        )
        svc = sim.create_storage_service("node1", "/local")
        workflow, input_file = simple_pipeline()
        sim.stage_file(input_file, svc)
        sim.submit_workflow(workflow, host="node1", storage=svc)
        result = sim.run()
        assert len(result.memory_trace) >= 10
        assert all(snap.total == pytest.approx(16 * GiB) for snap in result.memory_trace)
        # Cache usage must appear in the trace at some point.
        assert max(snap.cached for snap in result.memory_trace) > 0
        # Cache content records exist for every read/write operation.
        io_ops = [op for op in result.operations if op.kind in ("read", "write")]
        assert len(result.cache_contents) == len(io_ops)
