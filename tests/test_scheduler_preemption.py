"""Tests of preemptive priority scheduling (checkpoint-and-requeue).

Unit tests exercise the :class:`PreemptivePriorityPolicy` planner alone;
integration tests drive the whole stack through the :class:`Simulation`
facade and check the timing, the checkpoint credit (lost-work penalty),
the rollback of partial outputs, and the page-cache residency restored on
resume.
"""

from __future__ import annotations

import pytest

from repro.filesystem.file import File
from repro.platform.host import Host
from repro.scheduler.cluster import NodeState
from repro.scheduler.job import Job
from repro.scheduler.policies import PreemptivePriorityPolicy
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.units import MB


def compute_job(name: str, cpu_time: float, *, cores: int = 1,
                arrival: float = 0.0, priority: int = 0,
                job_id: int = 0) -> Job:
    workflow = Workflow(name)
    workflow.add_task(Task(f"{name}_t", flops=cpu_time * 1e9))
    job = Job(workflow, cores=cores, arrival_time=arrival,
              estimated_runtime=cpu_time, priority=priority, label=name)
    job.id = job_id
    return job


def make_node(env, name: str = "n1", cores: int = 4) -> NodeState:
    return NodeState(Host(env, name, cores=cores), storage=None)


def running(node: NodeState, job: Job, started: float) -> Job:
    job.start_time = started
    job.last_start_time = started
    node.allocate(job)
    return job


class TestPolicyOrderAndPlan:
    def test_orders_by_priority_then_arrival(self):
        jobs = [
            compute_job("low", 1.0, arrival=0.0, priority=0, job_id=0),
            compute_job("high-late", 1.0, arrival=5.0, priority=2, job_id=1),
            compute_job("high-early", 1.0, arrival=1.0, priority=2, job_id=2),
        ]
        ordered = PreemptivePriorityPolicy().order(jobs)
        assert [job.label for job in ordered] == ["high-early", "high-late", "low"]

    def test_plan_picks_lowest_priority_least_elapsed_victims(self, env):
        node = make_node(env, cores=4)
        old_low = running(node, compute_job("old", 50.0, cores=2, job_id=1), started=0.0)
        new_low = running(node, compute_job("new", 50.0, cores=2, job_id=2), started=8.0)
        head = compute_job("urgent", 1.0, cores=2, priority=5, job_id=3)
        plan = PreemptivePriorityPolicy().plan_preemption([head], [node], now=10.0)
        assert plan is not None
        assert plan.job is head
        # One victim suffices; the most recently started loses least work.
        assert [victim.label for victim in plan.victims] == ["new"]
        assert old_low in node.running.values()

    def test_plan_accumulates_victims_until_fit(self, env):
        node = make_node(env, cores=4)
        running(node, compute_job("a", 50.0, cores=2, job_id=1), started=0.0)
        running(node, compute_job("b", 50.0, cores=2, job_id=2), started=0.0)
        head = compute_job("urgent", 1.0, cores=4, priority=1, job_id=3)
        plan = PreemptivePriorityPolicy().plan_preemption([head], [node], now=1.0)
        assert plan is not None
        assert len(plan.victims) == 2

    def test_no_plan_against_equal_or_higher_priority(self, env):
        node = make_node(env, cores=4)
        running(node, compute_job("peer", 50.0, cores=4, priority=1, job_id=1), 0.0)
        head = compute_job("urgent", 1.0, cores=4, priority=1, job_id=2)
        assert PreemptivePriorityPolicy().plan_preemption([head], [node], 1.0) is None

    def test_no_plan_when_victims_insufficient(self, env):
        node = make_node(env, cores=4)
        running(node, compute_job("low", 50.0, cores=1, job_id=1), 0.0)
        running(node, compute_job("peer", 50.0, cores=3, priority=7, job_id=2), 0.0)
        head = compute_job("urgent", 1.0, cores=4, priority=5, job_id=3)
        assert PreemptivePriorityPolicy().plan_preemption([head], [node], 1.0) is None

    def test_plan_respects_pinned_node(self, env):
        pinned_to = make_node(env, "n1", cores=4)
        other = make_node(env, "n2", cores=4)
        running(pinned_to, compute_job("low1", 50.0, cores=4, job_id=1), 0.0)
        running(other, compute_job("low2", 50.0, cores=4, job_id=2), 0.0)
        head = compute_job("urgent", 1.0, cores=4, priority=5, job_id=3)
        head.pinned_node = "n2"
        plan = PreemptivePriorityPolicy().plan_preemption([head], [pinned_to, other], 1.0)
        assert plan is not None
        assert plan.node.name == "n2"
        assert [victim.label for victim in plan.victims] == ["low2"]

    def test_plan_prefers_fewest_victims_across_nodes(self, env):
        split = make_node(env, "n1", cores=4)
        whole = make_node(env, "n2", cores=4)
        running(split, compute_job("s1", 50.0, cores=2, job_id=1), 0.0)
        running(split, compute_job("s2", 50.0, cores=2, job_id=2), 0.0)
        running(whole, compute_job("w", 50.0, cores=4, job_id=3), 0.0)
        head = compute_job("urgent", 1.0, cores=4, priority=5, job_id=4)
        plan = PreemptivePriorityPolicy().plan_preemption([head], [split, whole], 1.0)
        assert plan is not None
        assert [victim.label for victim in plan.victims] == ["w"]


def cluster_simulation(n_nodes: int = 1, cores_per_node: int = 4, *,
                       placement: str = "round-robin",
                       cache_mode: str = "writeback",
                       lost_work_penalty: float = 0.0) -> Simulation:
    simulation = Simulation(
        config=SimulationConfig(cache_mode=cache_mode, trace_interval=None)
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(
        policy="preemptive-priority",
        placement=placement,
        lost_work_penalty=lost_work_penalty,
    )
    return simulation


def submit_compute(simulation: Simulation, label: str, cpu_time: float, *,
                   cores: int, arrival: float, priority: int = 0) -> Job:
    workflow = Workflow(label)
    workflow.add_task(Task(f"{label}_t", flops=cpu_time * 1e9))
    return simulation.submit_job(
        workflow, cores=cores, arrival_time=arrival,
        estimated_runtime=cpu_time, priority=priority, label=label,
    )


class TestPreemptiveScheduling:
    def test_high_priority_preempts_and_victim_resumes(self):
        simulation = cluster_simulation()
        submit_compute(simulation, "low", 10.0, cores=4, arrival=0.0)
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=1)
        result = simulation.run()

        records = {record.label: record for record in result.scheduler.records}
        # The high-priority job starts the moment it arrives.
        assert records["high"].start_time == pytest.approx(2.0)
        assert records["high"].wait_time == pytest.approx(0.0)
        # The victim checkpointed 2s of compute, resumed after the urgent
        # job finished, and redid nothing (no lost-work penalty).
        low = records["low"]
        assert low.preemptions == 1
        assert low.end_time == pytest.approx(11.0)
        assert low.runtime == pytest.approx(10.0)
        assert result.scheduler.n_preemptions == 1

    def test_lost_work_penalty_is_redone_on_resume(self):
        simulation = cluster_simulation(lost_work_penalty=1.5)
        submit_compute(simulation, "low", 10.0, cores=4, arrival=0.0)
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=1)
        result = simulation.run()

        low = next(r for r in result.scheduler.records if r.label == "low")
        # 2s done, 1.5s lost: 9.5s remain after the resume at t=3.
        assert low.end_time == pytest.approx(12.5)
        assert low.runtime == pytest.approx(11.5)

    def test_no_preemption_between_equal_priorities(self):
        simulation = cluster_simulation()
        submit_compute(simulation, "first", 5.0, cores=4, arrival=0.0)
        submit_compute(simulation, "second", 1.0, cores=4, arrival=1.0)
        result = simulation.run()

        records = {record.label: record for record in result.scheduler.records}
        assert result.scheduler.n_preemptions == 0
        assert records["second"].start_time == pytest.approx(5.0)

    def test_victim_resumes_on_its_checkpoint_node(self):
        simulation = cluster_simulation(n_nodes=2, cores_per_node=2)
        submit_compute(simulation, "low1", 10.0, cores=2, arrival=0.0)
        submit_compute(simulation, "low2", 10.0, cores=2, arrival=0.0)
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=3)
        result = simulation.run()

        records = {record.label: record for record in result.scheduler.records}
        victim = next(r for r in records.values() if r.preemptions == 1)
        scheduler = simulation.scheduler
        job = next(j for j in scheduler.jobs if j.label == victim.label)
        # The requeued job was pinned to (and finished on) the node
        # holding its checkpoint.
        assert job.pinned_node == victim.node

    def test_preempted_io_job_rolls_back_and_rereads_from_cache(self):
        simulation = cluster_simulation(cache_mode="writeback")
        dataset = File("dataset", 200 * MB)
        simulation.stage_file_replicated(dataset)

        low = Workflow("low")
        low.add_task(Task.from_cpu_time(
            "work", 10.0, inputs=[dataset], outputs=[File("low_out", 50 * MB)],
        ))
        simulation.submit_job(low, cores=4, arrival_time=0.0,
                              estimated_runtime=10.0, label="low")
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=1)
        result = simulation.run()

        records = {record.label: record for record in result.scheduler.records}
        assert records["low"].preemptions == 1
        # Two read attempts were traced: the original and the resume; the
        # resume is served (almost) entirely by the page cache left warm
        # through the suspension.
        reads = [op for op in result.operations_of("read", "low")]
        assert len(reads) == 2
        assert reads[1].cache_bytes >= 0.9 * dataset.size
        assert reads[1].duration < reads[0].duration
        # The rollback deallocated the interrupted attempt's output: the
        # node disk holds exactly the dataset and one copy of the output.
        node = simulation.scheduler.nodes[0]
        assert node.storage.disk.used == pytest.approx(250 * MB)
        # All anonymous memory was released (suspension releases the
        # checkpointed task's footprint; completion releases the rest).
        assert node.host.memory_manager.anonymous == pytest.approx(0.0)

    def test_preemption_during_write_rolls_back_partial_output(self):
        simulation = cluster_simulation(cache_mode="writethrough")
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)

        low = Workflow("low")
        low.add_task(Task.from_cpu_time(
            "work", 1.0, inputs=[dataset], outputs=[File("low_out", 1000 * MB)],
        ))
        simulation.submit_job(low, cores=4, arrival_time=0.0,
                              estimated_runtime=4.0, label="low")
        # Arrives while "low" streams its 1000 MB output to disk.
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=1)
        result = simulation.run()

        records = {record.label: record for record in result.scheduler.records}
        assert records["low"].preemptions == 1
        node = simulation.scheduler.nodes[0]
        # No double-allocation: dataset + exactly one output copy.
        assert node.storage.disk.used == pytest.approx(1010 * MB)
        # Exactly one completed write operation was traced.
        assert len(result.operations_of("write", "low")) == 1

    def test_priority_class_metrics_split_classes(self):
        simulation = cluster_simulation()
        submit_compute(simulation, "low", 10.0, cores=4, arrival=0.0)
        submit_compute(simulation, "high", 1.0, cores=2, arrival=2.0, priority=1)
        result = simulation.run()

        classes = result.scheduler.priority_class_metrics()
        assert sorted(classes) == [0, 1]
        assert classes[1].n_jobs == 1
        assert classes[1].mean_wait_time == pytest.approx(0.0)
        assert classes[1].mean_bounded_slowdown == pytest.approx(1.0)
        assert classes[0].preemptions == 1
        # The victim started immediately (wait 0) but its turnaround now
        # exceeds its runtime: the preemption cost lands in its slowdown.
        assert classes[0].mean_bounded_slowdown > 1.0


class TestComputeCreditAccuracy:
    def test_core_queueing_time_earns_no_checkpoint_credit(self, env):
        """A task interrupted while queued for a busy core executed nothing."""
        from repro.des.events import Interrupt
        from repro.simulator.compute_service import ComputeService

        host = Host(env, "n1", cores=1)
        service = ComputeService(env, host)
        hog = Task("hog", flops=10e9)
        queued = Task("queued", flops=10e9)
        observed = {}

        def run_hog():
            yield from service.execute(hog)

        def run_queued():
            try:
                yield from service.execute(queued)
            except Interrupt as interrupt:
                observed["executed"] = interrupt.executed_seconds

        env.process(run_hog())
        victim = env.process(run_queued())

        def interrupter():
            yield env.timeout(3.0)
            victim.interrupt("preempt")

        env.process(interrupter())
        env.run()
        # Three wall-clock seconds elapsed, but the core was never granted.
        assert observed["executed"] == pytest.approx(0.0)

    def test_granted_core_reports_executed_seconds(self, env):
        from repro.des.events import Interrupt
        from repro.simulator.compute_service import ComputeService

        host = Host(env, "n1", cores=1)
        service = ComputeService(env, host)
        observed = {}

        def run():
            try:
                yield from service.execute(Task("t", flops=10e9))
            except Interrupt as interrupt:
                observed["executed"] = interrupt.executed_seconds

        victim = env.process(run())

        def interrupter():
            yield env.timeout(4.0)
            victim.interrupt("preempt")

        env.process(interrupter())
        env.run()
        assert observed["executed"] == pytest.approx(4.0)
        # The cancelled computation released its core at the interrupt.
        assert host.cpu.busy_cores == 0


class TestPriorityAging:
    """aging_rate bounds low-priority starvation (ROADMAP Exp 7 follow-up)."""

    def test_rejects_negative_rate(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PreemptivePriorityPolicy(aging_rate=-0.1)

    def test_effective_priority_grows_with_waiting(self):
        policy = PreemptivePriorityPolicy(aging_rate=0.5)
        job = compute_job("j", 1.0, arrival=10.0, priority=1)
        assert policy.effective_priority(job, now=10.0) == pytest.approx(1.0)
        assert policy.effective_priority(job, now=14.0) == pytest.approx(3.0)
        # Jobs submitted in the future (trace replays) never get credit.
        assert policy.effective_priority(job, now=5.0) == pytest.approx(1.0)

    def test_zero_rate_keeps_strict_priority_order(self):
        jobs = [
            compute_job("low", 1.0, arrival=0.0, priority=0, job_id=0),
            compute_job("high", 1.0, arrival=100.0, priority=2, job_id=1),
        ]
        ordered = PreemptivePriorityPolicy().order(jobs, now=1000.0)
        assert [job.label for job in ordered] == ["high", "low"]

    def test_starved_job_overtakes_fresher_high_priority(self):
        # Aging overtakes *later* arrivals: every queued job ages at the
        # same rate, so a low-priority job never catches one it co-waits
        # with, but any high-priority job arriving more than
        # priority_gap / rate seconds later starts behind it — which is
        # the starvation pattern (an endless stream of fresh arrivals).
        policy = PreemptivePriorityPolicy(aging_rate=0.02)
        starved = compute_job("starved", 1.0, arrival=0.0, priority=0, job_id=0)
        early = compute_job("early", 1.0, arrival=50.0, priority=2, job_id=1)
        late = compute_job("late", 1.0, arrival=150.0, priority=2, job_id=2)
        # At t=50 the starved job's credit (1 point) trails the 2-point gap.
        assert policy.order([starved, early], now=50.0)[0].label == "early"
        # At t=150 its credit (3 points) beats the newcomer's bare priority.
        assert policy.order([starved, late], now=150.0)[0].label == "starved"

    def test_aged_head_blocks_queue_until_it_runs(self, env):
        # Once an aged low-priority job reaches the head, strict
        # head-of-line scheduling reserves the next fitting allocation
        # for it: a fresh high-priority job cannot jump past it.
        policy = PreemptivePriorityPolicy(aging_rate=1.0)
        node = make_node(env, cores=4)
        running(node, compute_job("hog", 100.0, cores=4, job_id=9), started=0.0)
        starved = compute_job("starved", 1.0, arrival=0.0, priority=0, job_id=0)
        fresh = compute_job("fresh", 1.0, arrival=99.0, priority=2, job_id=1)
        queue = [starved, fresh]
        assert policy.order(queue, now=100.0)[0].label == "starved"
        # No room: nothing is selected, but the starved job stays the head
        # (it is not skipped in favour of the high-priority arrival).
        assert policy.select(queue, [node], now=100.0) is None
        node.release(node.running[9])
        decision = policy.select(queue, [node], now=100.0)
        assert decision is not None and decision.job.label == "starved"

    def test_aging_does_not_enable_preemption_of_higher_priority(self, env):
        # Aging affects ordering only: an aged batch job never suspends a
        # running job of a higher raw priority class.
        policy = PreemptivePriorityPolicy(aging_rate=1.0)
        node = make_node(env, cores=4)
        running(node, compute_job("interactive", 50.0, cores=4, priority=2,
                                  job_id=9), started=0.0)
        starved = compute_job("starved", 1.0, arrival=0.0, priority=0, job_id=0)
        assert policy.order([starved], now=1000.0)[0].label == "starved"
        assert policy.plan_preemption([starved], [node], now=1000.0) is None

    def test_starved_job_eventually_runs_in_simulation(self):
        # End to end: a stream of high-priority jobs saturates a single
        # node.  Without aging the low-priority job waits for the whole
        # stream; with aging it reaches the head and runs much earlier.
        def replay(aging_rate):
            simulation = Simulation(config=SimulationConfig(
                cache_mode="writeback", trace_interval=None))
            simulation.create_cluster_platform(1, cores_per_node=2,
                                               with_nfs_server=False)
            simulation.create_cluster_scheduler(
                policy=PreemptivePriorityPolicy(aging_rate=aging_rate),
                placement="round-robin",
            )
            low_workflow = Workflow("low")
            low_workflow.add_task(Task("low_t", flops=1e9))
            simulation.submit_job(low_workflow, cores=1, arrival_time=0.0,
                                  estimated_runtime=1.0, priority=0,
                                  label="low")
            for index in range(30):
                workflow = Workflow(f"hi{index}")
                workflow.add_task(Task(f"hi{index}_t", flops=4e9))
                simulation.submit_job(workflow, cores=2,
                                      arrival_time=0.1 * index,
                                      estimated_runtime=4.0, priority=5,
                                      label=f"hi{index}")
            result = simulation.run()
            records = {r.label: r for r in result.scheduler.records}
            return records["low"]

        without_aging = replay(0.0)
        with_aging = replay(2.0)
        # The aged run starts the starved job well before the stream ends;
        # the strict run keeps it waiting until every high-priority job
        # (which needs both cores) has finished.
        assert with_aging.start_time < without_aging.start_time
        assert with_aging.wait_time < without_aging.wait_time
