"""Unit tests for the page cache configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.pagecache.config import PageCacheConfig


class TestValidation:
    def test_defaults_match_stock_linux(self):
        config = PageCacheConfig()
        assert config.dirty_ratio == pytest.approx(0.20)
        assert config.dirty_background_ratio == pytest.approx(0.10)
        assert config.dirty_expire == pytest.approx(30.0)
        assert config.writeback_interval == pytest.approx(5.0)
        assert config.active_to_inactive_ratio == pytest.approx(2.0)

    @pytest.mark.parametrize("field,value", [
        ("dirty_ratio", 0.0),
        ("dirty_ratio", 1.5),
        ("dirty_background_ratio", -0.1),
        ("dirty_background_ratio", 0.5),  # above dirty_ratio
        ("dirty_expire", -1.0),
        ("writeback_interval", 0.0),
        ("chunk_size", 0.0),
        ("dirty_threshold_base", "bogus"),
        ("active_to_inactive_ratio", 0.0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            PageCacheConfig(**{field: value})

    def test_with_updates_returns_validated_copy(self):
        config = PageCacheConfig()
        updated = config.with_updates(dirty_ratio=0.4)
        assert updated.dirty_ratio == pytest.approx(0.4)
        assert config.dirty_ratio == pytest.approx(0.2)
        with pytest.raises(ConfigurationError):
            config.with_updates(dirty_ratio=2.0)

    def test_coalesce_extents_is_a_deprecated_no_op(self):
        # Existing experiment scripts passing the PR 3 knob keep working:
        # the value is accepted, warned about and ignored (the extent
        # cache coalesces losslessly and unconditionally).
        with pytest.warns(DeprecationWarning, match="coalesce_extents"):
            config = PageCacheConfig(coalesce_extents=True)
        with pytest.warns(DeprecationWarning, match="coalesce_extents"):
            PageCacheConfig(coalesce_extents=False)
        assert config.validate() is None

    def test_coalesce_extents_is_no_longer_a_field(self):
        # The deprecation completed: the value is dropped at the door, so
        # the config object carries no trace of it.
        with pytest.warns(DeprecationWarning):
            config = PageCacheConfig(coalesce_extents=True)
        assert not hasattr(config, "coalesce_extents")
        assert "coalesce_extents" not in PageCacheConfig.__dataclass_fields__

    def test_coalesce_extents_warns_through_with_updates(self):
        config = PageCacheConfig()
        with pytest.warns(DeprecationWarning, match="coalesce_extents"):
            updated = config.with_updates(coalesce_extents=True)
        assert updated == config

    def test_coalesce_extents_unset_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PageCacheConfig()

    def test_eviction_policy_default_and_validation(self):
        assert PageCacheConfig().eviction_policy == "lru"
        assert PageCacheConfig(eviction_policy="arc").eviction_policy == "arc"
        with pytest.raises(ConfigurationError, match="unknown eviction policy"):
            PageCacheConfig(eviction_policy="mru")
        with pytest.raises(ConfigurationError):
            PageCacheConfig().with_updates(eviction_policy=3.5)

    def test_eviction_policy_accepts_instance_and_class(self):
        from repro.pagecache.policy import ARCPolicy

        assert isinstance(
            PageCacheConfig(eviction_policy=ARCPolicy()).eviction_policy,
            ARCPolicy,
        )
        assert (
            PageCacheConfig(eviction_policy=ARCPolicy).eviction_policy
            is ARCPolicy
        )


class TestPresets:
    def test_linux_default(self):
        assert PageCacheConfig.linux_default() == PageCacheConfig()

    def test_reference_preset_enables_kernel_idiosyncrasies(self):
        config = PageCacheConfig.reference()
        assert config.protect_written_files is True
        assert config.evict_from_active is True
        assert config.dirty_threshold_base == "available"

    def test_no_periodic_flush_preset(self):
        assert PageCacheConfig.no_periodic_flush().periodic_flushing is False
