"""Regenerate the parity golden traces (``tests/data/pagecache_golden.json``).

Run from the repo root against a *known-good* implementation::

    PYTHONPATH=src:tests python tests/record_parity_golden.py

The committed golden was recorded from the pre-refactor list-of-Blocks
``LRUList`` (PR 2 tree), so the parity suite certifies that the O(1)
rewrite preserves the observable semantics of the original implementation.
Only regenerate it on purpose, when the *workload* (not the LRU) changes,
and bump ``parity_workload.WORKLOAD_VERSION`` when you do.
"""

from __future__ import annotations

import json
from pathlib import Path

from parity_workload import WORKLOAD_VERSION, run_parity_workload

#: The workload variants pinned by the golden file.  ``evict_from_active``
#: exercises the active-list spill path of the reference model.
SCENARIOS = {
    "default": dict(seed=2021, n_ops=120),
    "no_periodic_flush": dict(seed=7, n_ops=100, periodic_flushing=False),
    "evict_from_active": dict(seed=93, n_ops=100, evict_from_active=True),
}


def main() -> None:
    golden = {
        "workload_version": WORKLOAD_VERSION,
        "scenarios": {
            name: run_parity_workload(**kwargs)
            for name, kwargs in SCENARIOS.items()
        },
    }
    out = Path(__file__).parent / "data" / "pagecache_golden.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    total = sum(len(t) for t in golden["scenarios"].values())
    print(f"recorded {total} states over {len(SCENARIOS)} scenarios -> {out}")


if __name__ == "__main__":
    main()
