"""Sweep-engine tests: determinism, seeding, failure paths, clean shutdown.

The engine's contract (see :mod:`repro.experiments.runner`):

* results come back in spec order and are byte-identical for any worker
  count — proven here both on synthetic experiments and on the real
  exp5/exp6 sweep pipelines;
* per-point seeds derive from ``(base_seed, seed_key)`` only;
* a point failing in a worker surfaces as :class:`SweepPointError` with
  the failing :class:`PointSpec` attached;
* ``KeyboardInterrupt`` cancels the queue and shuts the pool down
  cleanly (no worker processes left behind).

The synthetic experiments below are registered at import time with plain
callables; the pool uses a fork context on Linux, so workers inherit the
registrations.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    EXPERIMENTS,
    PointSpec,
    SweepPointError,
    derive_point_seed,
    make_spec,
    register_experiment,
    resolve_workers,
    run_sweep,
    sweep_values,
)
from repro.rng import derive_seed


# --------------------------------------------------------- test experiments
def _square(x):
    return x * x


def _echo_seed(tag, seed=None):
    return (tag, seed)


def _boom(x):
    raise ValueError(f"boom on {x}")


def _nap(duration):
    time.sleep(duration)
    return duration


class _HostileError(Exception):
    """An exception whose every printable surface raises."""

    def __str__(self):
        raise RuntimeError("no str for you")

    def __repr__(self):
        raise RuntimeError("no repr either")


class _UnpicklableError(Exception):
    def __init__(self):
        super().__init__("cannot cross process boundary")
        self.payload = lambda: None  # lambdas do not pickle


def _raise_hostile(x):
    raise _HostileError()


def _raise_unpicklable(x):
    raise _UnpicklableError()


def _return_unpicklable(x):
    return lambda: x  # the *value* fails to pickle on the way back


register_experiment("test-square", _square)
register_experiment("test-echo-seed", _echo_seed)
register_experiment("test-boom", _boom)
register_experiment("test-nap", _nap)
register_experiment("test-hostile", _raise_hostile)
register_experiment("test-unpicklable-exc", _raise_unpicklable)
register_experiment("test-unpicklable-value", _return_unpicklable)


def _no_children(timeout=10.0):
    """True once no worker subprocesses remain (poll up to ``timeout``)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


# ------------------------------------------------------------------- config
class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(2) == 2

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3

    def test_auto_uses_cpu_count(self):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -1, "zero"])
    def test_invalid_counts_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad)


class TestSpecs:
    def test_params_are_sorted_and_picklable(self):
        import pickle

        spec = make_spec("test-square", x=3)
        other = make_spec("test-square", x=3)
        assert spec == other
        assert pickle.loads(pickle.dumps(spec)) == spec
        multi = make_spec("exp2", simulator="real", n_apps=4, nfs=False)
        assert [name for name, _ in multi.params] == sorted(
            name for name, _ in multi.params
        )

    def test_unknown_experiment_fails_with_spec(self):
        with pytest.raises(SweepPointError) as err:
            run_sweep([make_spec("no-such-experiment")])
        assert err.value.spec.experiment == "no-such-experiment"

    def test_builtin_registry_targets_resolve(self):
        from repro.experiments.runner import experiment_fn

        for name in ("exp1", "exp2", "exp3", "exp4", "exp5-point", "exp6",
                     "exp7"):
            assert callable(experiment_fn(name)), name
        assert set(EXPERIMENTS) >= {"exp2", "exp5-point", "exp6", "exp7"}

    def test_register_rejects_bad_target(self):
        with pytest.raises(ConfigurationError):
            register_experiment("broken", "not-a-module-path")


# -------------------------------------------------------------- determinism
class TestDeterminism:
    def test_results_in_spec_order_any_worker_count(self):
        specs = [make_spec("test-square", x=x) for x in range(12)]
        inline = sweep_values(specs, workers=1)
        pooled = sweep_values(specs, workers=4)
        assert inline == [x * x for x in range(12)]
        assert pooled == inline

    def test_progress_reports_every_point(self):
        seen = []
        results = run_sweep(
            [make_spec("test-square", x=x) for x in range(5)],
            workers=1,
            progress=lambda result, done, total: seen.append(
                (result.index, done, total)
            ),
        )
        assert [r.index for r in results] == list(range(5))
        assert [done for _, done, _ in seen] == [1, 2, 3, 4, 5]
        assert all(total == 5 for _, _, total in seen)

    def test_seed_derivation_is_order_and_worker_independent(self):
        specs = [
            make_spec("test-echo-seed", tag=tag, seed_key=f"point:{tag}")
            for tag in ("a", "b", "c", "d")
        ]
        inline = sweep_values(specs, workers=1, base_seed=42)
        pooled = sweep_values(specs, workers=3, base_seed=42)
        assert inline == pooled
        assert inline == [
            (tag, derive_point_seed(42, f"point:{tag}"))
            for tag in ("a", "b", "c", "d")
        ]
        # Reversing the sweep order changes nothing about each point's seed.
        reversed_values = sweep_values(list(reversed(specs)), workers=1,
                                       base_seed=42)
        assert reversed_values == list(reversed(inline))
        # The primitive matches repro.rng's derivation.
        assert derive_point_seed(42, "point:a") == derive_seed(42, "point:a")

    def test_run_named_sweep_matches_keys_to_values(self):
        from repro.experiments.runner import run_named_sweep

        variants = {("sq", x): dict(x=x) for x in (3, 1, 2)}
        results = run_named_sweep("test-square", variants, workers=2)
        assert list(results) == [("sq", 3), ("sq", 1), ("sq", 2)]
        assert results == {("sq", 3): 9, ("sq", 1): 1, ("sq", 2): 4}

    def test_seed_key_without_base_seed_is_an_error(self):
        with pytest.raises(ConfigurationError):
            run_sweep([make_spec("test-echo-seed", tag="a", seed_key="k")])

    def test_exp5_sweep_outputs_byte_identical_across_worker_counts(self):
        from repro.experiments.exp5_scaling import run_scaling
        from repro.units import GB, MB

        def table(curves):
            return "\n".join(
                f"{label}|{p.n_apps}|{p.simulated_makespan!r}"
                for label, points in curves.items()
                for p in points
            ).encode()

        kwargs = dict(
            configs=(("wrench-cache", False),),
            input_size=1 * GB,
            chunk_size=100 * MB,
        )
        serial = run_scaling((1, 2), workers=1, **kwargs)
        pooled = run_scaling((1, 2), workers=4, **kwargs)
        assert table(serial) == table(pooled)

    def test_exp6_sweep_outputs_byte_identical_across_worker_counts(self):
        from repro.experiments.exp6_cluster import exp6_report, exp6_series

        kwargs = dict(n_jobs=24, n_nodes=4, n_datasets=6)
        serial = exp6_series(("round-robin", "cache"), workers=1, **kwargs)
        pooled = exp6_series(("round-robin", "cache"), workers=4, **kwargs)
        # The rendered report (placement, policy, hit ratio, makespan,
        # waits, slowdown, utilization, throughput) is the result table;
        # it contains no wall-clock column and must match byte for byte.
        assert exp6_report(serial).encode() == exp6_report(pooled).encode()


# ------------------------------------------------------------ failure paths
class TestFailurePaths:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_worker_exception_surfaces_failing_spec(self, workers):
        specs = [
            make_spec("test-square", x=1, label="ok-point"),
            make_spec("test-boom", x=99, label="bad-point"),
            make_spec("test-square", x=2),
        ]
        with pytest.raises(SweepPointError) as err:
            run_sweep(specs, workers=workers)
        assert err.value.spec.label == "bad-point"
        assert err.value.index == 1
        assert "ValueError" in str(err.value)
        assert "boom on 99" in str(err.value)
        if workers > 1:
            assert _no_children()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_unpicklable_worker_exception_still_carries_the_spec(self, workers):
        # The exception itself cannot cross the process boundary; the
        # engine ships (type, message, traceback) strings instead, so the
        # parent still learns which point died and why.
        specs = [make_spec("test-unpicklable-exc", x=1, label="poison")]
        with pytest.raises(SweepPointError) as err:
            run_sweep(specs, workers=workers)
        assert err.value.spec.label == "poison"
        assert "_UnpicklableError" in str(err.value)
        assert "cannot cross process boundary" in str(err.value)
        if workers > 1:
            assert _no_children()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_hostile_exception_repr_does_not_mask_the_failure(self, workers):
        # str(exc) and repr(exc) both raise; the report degrades to the
        # type name instead of replacing the failure with a new one.
        specs = [make_spec("test-hostile", x=1, label="hostile")]
        with pytest.raises(SweepPointError) as err:
            run_sweep(specs, workers=workers)
        assert err.value.spec.label == "hostile"
        assert "_HostileError" in str(err.value)

    def test_unpicklable_point_value_becomes_sweep_point_error(self):
        # Success values must pickle to cross back from a pool worker;
        # when one does not, the error names the guilty point rather
        # than surfacing a bare pool internals failure.  (Inline runs
        # never pickle, so this is pool-only behaviour.)
        specs = [
            make_spec("test-square", x=2, label="fine"),
            make_spec("test-unpicklable-value", x=1, label="lambda-point"),
        ]
        with pytest.raises(SweepPointError) as err:
            run_sweep(specs, workers=2)
        assert err.value.spec.label == "lambda-point"
        assert _no_children()

    def test_keyboard_interrupt_shuts_the_pool_down_cleanly(self):
        specs = [make_spec("test-nap", duration=0.2) for _ in range(8)]

        def interrupt_after_first(result, done, total):
            raise KeyboardInterrupt

        started = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_sweep(specs, workers=2, progress=interrupt_after_first)
        # Queued points were cancelled (8 x 0.2s would take ~0.8s on two
        # workers; the interrupt path only waits out the in-flight ones)
        # and no worker process is left behind.
        assert time.monotonic() - started < 5.0
        assert _no_children()
