"""Unit tests for the I/O Controller (Algorithms 2 and 3, writethrough)."""

import pytest

from repro.errors import ConfigurationError
from repro.pagecache import IOController, MemoryManager, PageCacheConfig
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, MB, MBps


@pytest.fixture
def small_setup(env):
    """10 GB of memory, 100 MBps disk, 1000 MBps memory, no background flush."""
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    config = PageCacheConfig(periodic_flushing=False, chunk_size=100 * MB)
    manager = MemoryManager(env, memory, config)
    controller = IOController(env, manager)
    return env, manager, controller, disk


class TestConstruction:
    def test_requires_memory_manager(self, env):
        with pytest.raises(ConfigurationError):
            IOController(env, None)

    def test_config_defaults_to_manager_config(self, small_setup):
        _, mm, io, _ = small_setup
        assert io.config is mm.config


class TestChunkReads:
    def test_uncached_chunk_reads_from_disk(self, small_setup, runner):
        env, mm, io, disk = small_setup
        disk_read, cache_read = runner(
            env, io.read_chunk("f", 1 * GB, 100 * MB, disk)
        )
        assert disk_read == 100 * MB
        assert cache_read == 0
        assert env.now == pytest.approx(1.0)  # 100 MB at 100 MBps
        assert mm.cached_amount("f") == 100 * MB
        assert mm.anonymous == 100 * MB

    def test_cached_chunk_reads_from_memory(self, small_setup, runner):
        env, mm, io, disk = small_setup
        mm.add_to_cache("f", 1 * GB, disk)
        disk_read, cache_read = runner(
            env, io.read_chunk("f", 1 * GB, 100 * MB, disk)
        )
        assert disk_read == 0
        assert cache_read == 100 * MB
        assert env.now == pytest.approx(0.1)  # 100 MB at 1000 MBps

    def test_partially_cached_file_reads_uncached_part_first(self, small_setup, runner):
        env, mm, io, disk = small_setup
        mm.add_to_cache("f", 0.9 * GB, disk)
        # File is 1 GB, 0.9 GB cached: the first chunk must hit the disk for
        # the remaining 0.1 GB only.
        disk_read, cache_read = runner(
            env, io.read_chunk("f", 1 * GB, 200 * MB, disk)
        )
        assert disk_read == pytest.approx(100 * MB)
        assert cache_read == pytest.approx(100 * MB)

    def test_read_without_anonymous_memory(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.read_chunk("f", 1 * GB, 100 * MB, disk,
                                  use_anonymous_memory=False))
        assert mm.anonymous == 0

    def test_read_records_statistics(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.read_chunk("f", 1 * GB, 100 * MB, disk))
        assert mm.stats.cache_miss_bytes == 100 * MB
        assert mm.stats.read_ops == 1


class TestFileReads:
    def test_fully_uncached_read_time(self, small_setup, runner):
        env, mm, io, disk = small_setup
        result = runner(env, io.read_file("f", 1 * GB, disk))
        assert result.storage_bytes == pytest.approx(1 * GB)
        assert result.cache_bytes == 0
        assert result.elapsed == pytest.approx(10.0)  # 1 GB at 100 MBps
        assert result.chunks == 10
        assert mm.cached_amount("f") == pytest.approx(1 * GB)

    def test_fully_cached_read_time(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.read_file("f", 1 * GB, disk))
        mm.release_anonymous_memory()
        result = runner(env, io.read_file("f", 1 * GB, disk))
        assert result.cache_bytes == pytest.approx(1 * GB)
        assert result.storage_bytes == 0
        assert result.elapsed == pytest.approx(1.0)  # 1 GB at 1000 MBps
        assert result.cache_fraction == pytest.approx(1.0)

    def test_read_allocates_anonymous_memory_per_owner(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.read_file("f", 1 * GB, disk, anonymous_owner="app1"))
        assert mm.anonymous_of("app1") == pytest.approx(1 * GB)

    def test_read_larger_than_memory_evicts_lru_data(self, small_setup, runner):
        env, mm, io, disk = small_setup
        # 6 GB file + 6 GB anonymous copy > 10 GB memory: the cache must
        # evict its own least recently used blocks to make room.
        result = runner(env, io.read_file("big", 6 * GB, disk))
        assert result.storage_bytes == pytest.approx(6 * GB)
        assert mm.free_mem >= -1e-3
        assert mm.cached <= 10 * GB
        assert mm.anonymous == pytest.approx(6 * GB)
        mm.assert_consistent()


class TestChunkWrites:
    def test_write_below_dirty_threshold_goes_to_memory(self, small_setup, runner):
        env, mm, io, disk = small_setup
        cache_written, flushed = runner(env, io.write_chunk("f", 100 * MB, disk))
        assert cache_written == 100 * MB
        assert flushed == 0
        assert mm.dirty == 100 * MB
        assert env.now == pytest.approx(0.1)  # memory write only
        assert disk.bytes_written == 0

    def test_write_beyond_dirty_threshold_flushes(self, small_setup, runner):
        env, mm, io, disk = small_setup
        # dirty capacity = 20% of 10 GB = 2 GB; write 3 GB.
        result = runner(env, io.write_file("f", 3 * GB, disk))
        assert result.cache_bytes == pytest.approx(3 * GB)
        assert result.storage_bytes > 0  # some data had to be flushed
        assert mm.dirty <= mm.dirty_capacity + 1e-3
        assert disk.bytes_written == pytest.approx(result.storage_bytes)
        mm.assert_consistent()

    def test_small_writes_never_touch_disk(self, small_setup, runner):
        env, mm, io, disk = small_setup
        result = runner(env, io.write_file("f", 1 * GB, disk))
        assert result.storage_bytes == 0
        assert result.elapsed == pytest.approx(1.0)  # 1 GB at memory bandwidth
        assert disk.bytes_written == 0

    def test_write_records_statistics(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.write_file("f", 1 * GB, disk))
        assert mm.stats.cache_write_bytes == pytest.approx(1 * GB)
        assert mm.stats.write_ops == 10


class TestWritethrough:
    def test_writethrough_pays_disk_bandwidth(self, small_setup, runner):
        env, mm, io, disk = small_setup
        result = runner(env, io.write_file("f", 1 * GB, disk, writethrough=True))
        assert result.elapsed == pytest.approx(10.0)  # 1 GB at 100 MBps
        assert result.storage_bytes == pytest.approx(1 * GB)
        assert disk.bytes_written == pytest.approx(1 * GB)

    def test_writethrough_populates_cache_with_clean_data(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.write_file("f", 1 * GB, disk, writethrough=True))
        assert mm.cached_amount("f") == pytest.approx(1 * GB)
        assert mm.dirty == 0

    def test_writethrough_statistics(self, small_setup, runner):
        env, mm, io, disk = small_setup
        runner(env, io.write_file("f", 1 * GB, disk, writethrough=True))
        assert mm.stats.direct_write_bytes == pytest.approx(1 * GB)


class TestWrittenFileTracking:
    def test_file_marked_during_write_and_unmarked_after(self, env, runner):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        config = PageCacheConfig(periodic_flushing=False,
                                 protect_written_files=True)
        mm = MemoryManager(env, memory, config)
        io = IOController(env, mm)

        observed = {}

        def observer(env):
            yield env.timeout(0.5)
            observed["during"] = "f" in mm._files_being_written

        env.process(observer(env))
        runner(env, io.write_file("f", 1 * GB, disk))
        assert observed["during"] is True
        assert "f" not in mm._files_being_written


class TestIOResult:
    def test_elapsed_and_cache_fraction(self, small_setup, runner):
        env, mm, io, disk = small_setup
        mm.add_to_cache("f", 0.5 * GB, disk)
        result = runner(env, io.read_file("f", 1 * GB, disk))
        assert result.elapsed == result.end_time - result.start_time
        assert result.cache_fraction == pytest.approx(0.5)

    def test_zero_size_cache_fraction(self):
        from repro.pagecache.io_controller import IOResult

        result = IOResult("f", 0.0, 0.0, 0.0)
        assert result.cache_fraction == 0.0
