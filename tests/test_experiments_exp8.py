"""Smoke tests of the Exp 8 eviction-policy ablation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exp8_policy_ablation import (
    EXP8_POLICIES,
    EXP8_WORKLOADS,
    exp8_report,
    exp8_series,
    run_exp8,
    run_skewed,
)
from repro.experiments.runner import EXPERIMENTS


class TestSkewedWorkload:
    def test_deterministic(self):
        first = run_skewed("arc")
        second = run_skewed("arc")
        assert first.hit_ratio == second.hit_ratio
        assert first.makespan == second.makespan

    def test_scan_resistant_policies_beat_lru(self):
        # The acceptance criterion of the policy API: on the hot-set-plus-
        # scans workload at least one non-LRU policy wins on hit ratio.
        lru = run_skewed("lru")
        arc = run_skewed("arc")
        twoq = run_skewed("2q")
        clockpro = run_skewed("clock-pro")
        assert arc.hit_ratio > lru.hit_ratio
        assert twoq.hit_ratio > lru.hit_ratio
        assert clockpro.hit_ratio > lru.hit_ratio
        # Keeping the hot set also shortens the simulated runtime.
        assert arc.makespan < lru.makespan

    def test_policy_label_is_registry_name(self):
        point = run_skewed("clockpro")  # alias
        assert point.policy == "clock-pro"
        assert point.workload == "skewed"


class TestRunExp8:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown exp8 workload"):
            run_exp8("lru", "exp99")

    def test_registered_in_runner(self):
        assert "exp8" in EXPERIMENTS

    def test_workload_names_cover_dispatch(self):
        assert set(EXP8_WORKLOADS) == {
            "skewed", "exp5", "exp6", "exp7", "sched"
        }

    def test_exp5_workload_fits_in_memory_so_policies_tie(self):
        # Honest control: without memory pressure victim selection is
        # irrelevant and every policy reproduces the LRU numbers.
        lru = run_exp8("lru", "exp5")
        arc = run_exp8("arc", "exp5")
        assert arc.hit_ratio == pytest.approx(lru.hit_ratio)
        assert arc.makespan == pytest.approx(lru.makespan)


class TestSchedCell:
    """The scheduler-driven cell built for the priority-weighted policy."""

    def test_priority_policy_receives_dispatch_and_preemption_events(self):
        from repro.experiments.exp8_policy_ablation import run_sched_cell

        point = run_sched_cell("priority")
        assert point.workload == "sched"
        assert point.policy == "priority"
        # The cell's whole point: the scheduler hooks actually fire.
        assert point.n_job_dispatches > 0
        assert point.n_job_preemptions > 0

    def test_policies_without_job_hooks_see_no_events(self):
        from repro.experiments.exp8_policy_ablation import run_sched_cell

        point = run_sched_cell("lru")
        # LRU does not subscribe (wants_job_events is False), so the
        # scheduler never forwards events to it.
        assert point.n_job_dispatches == 0
        assert point.n_job_preemptions == 0
        # The workload still exercises the cache under pressure.
        assert 0.0 < point.hit_ratio < 1.0

    def test_sched_cell_is_deterministic(self):
        first = run_exp8("priority", "sched")
        second = run_exp8("priority", "sched")
        assert first.hit_ratio == second.hit_ratio
        assert first.makespan == second.makespan
        assert first.n_job_preemptions == second.n_job_preemptions


class TestSeriesAndReport:
    def test_series_covers_grid_and_report_renders(self):
        points = exp8_series(("lru", "arc"), workloads=("skewed",), rounds=3)
        assert set(points) == {("skewed", "lru"), ("skewed", "arc")}
        table = exp8_report(points)
        assert "Exp 8" in table
        assert "arc" in table and "lru" in table

    def test_default_policy_tuple_is_the_registry_subset(self):
        from repro.pagecache.policy import POLICIES

        assert all(name in POLICIES for name in EXP8_POLICIES)
