"""Unit tests for shared resources (Resource, Container, Store, Lock)."""

import pytest

from repro.des import Container, Lock, PriorityResource, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_counts(self, env, runner):
        resource = Resource(env, capacity=2)

        def proc(env):
            first = resource.request()
            second = resource.request()
            yield first
            yield second
            counts = (resource.count, resource.available)
            first.release()
            second.release()
            return counts

        assert runner(env, proc(env)) == (2, 0)
        assert resource.count == 0

    def test_fifo_queuing(self, env):
        resource = Resource(env, capacity=1)
        order = []

        def user(env, label, hold):
            with (yield resource.request()):
                order.append(label)
                yield env.timeout(hold)

        env.process(user(env, "a", 2.0))
        env.process(user(env, "b", 1.0))
        env.process(user(env, "c", 1.0))
        env.run()
        assert order == ["a", "b", "c"]

    def test_context_manager_releases(self, env, runner):
        resource = Resource(env, capacity=1)

        def proc(env):
            with (yield resource.request()):
                yield env.timeout(1.0)
            return resource.count

        assert runner(env, proc(env)) == 0

    def test_release_is_idempotent(self, env, runner):
        resource = Resource(env, capacity=1)

        def proc(env):
            request = resource.request()
            yield request
            request.release()
            request.release()
            return resource.count

        assert runner(env, proc(env)) == 0

    def test_cancel_pending_request(self, env, runner):
        resource = Resource(env, capacity=1)

        def proc(env):
            holder = resource.request()
            yield holder
            waiter = resource.request()
            waiter.cancel()
            holder.release()
            return len(resource.queue)

        assert runner(env, proc(env)) == 0

    def test_priority_resource_orders_by_priority(self, env):
        resource = PriorityResource(env, capacity=1)
        order = []

        def user(env, label, priority, delay):
            yield env.timeout(delay)
            with (yield resource.request(priority=priority)):
                order.append(label)
                yield env.timeout(5.0)

        # "first" grabs the resource; "low" and "high" queue while it holds it.
        env.process(user(env, "first", 0, 0.0))
        env.process(user(env, "low", 5, 1.0))
        env.process(user(env, "high", 1, 2.0))
        env.run()
        assert order == ["first", "high", "low"]


class TestContainer:
    def test_initial_level_bounds(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
        with pytest.raises(ValueError):
            Container(env, capacity=0)

    def test_put_and_get(self, env, runner):
        container = Container(env, capacity=100, init=10)

        def proc(env):
            yield container.put(30)
            yield container.get(25)
            return container.level

        assert runner(env, proc(env)) == 15

    def test_get_blocks_until_available(self, env):
        container = Container(env, capacity=100, init=0)
        times = {}

        def consumer(env):
            yield container.get(50)
            times["consumed"] = env.now

        def producer(env):
            yield env.timeout(3.0)
            yield container.put(50)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times["consumed"] == 3.0

    def test_put_blocks_when_full(self, env):
        container = Container(env, capacity=10, init=10)
        times = {}

        def producer(env):
            yield container.put(5)
            times["produced"] = env.now

        def consumer(env):
            yield env.timeout(2.0)
            yield container.get(8)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times["produced"] == 2.0

    def test_non_positive_amounts_rejected(self, env):
        container = Container(env, capacity=10)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)


class TestStore:
    def test_fifo_order(self, env, runner):
        store = Store(env)

        def proc(env):
            yield store.put("first")
            yield store.put("second")
            a = yield store.get()
            b = yield store.get()
            return [a, b]

        assert runner(env, proc(env)) == ["first", "second"]

    def test_get_blocks_until_item_available(self, env):
        store = Store(env)
        received = {}

        def consumer(env):
            item = yield store.get()
            received["item"] = (item, env.now)

        def producer(env):
            yield env.timeout(4.0)
            yield store.put("payload")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert received["item"] == ("payload", 4.0)

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        times = {}

        def producer(env):
            yield store.put(1)
            yield store.put(2)
            times["second_put"] = env.now

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times["second_put"] == 5.0

    def test_len_reports_stored_items(self, env, runner):
        store = Store(env)

        def proc(env):
            yield store.put("x")
            yield store.put("y")
            return len(store)

        assert runner(env, proc(env)) == 2


class TestLock:
    def test_mutual_exclusion(self, env):
        lock = Lock(env)
        critical = []

        def worker(env, label):
            with (yield lock.acquire()):
                critical.append((label, "in", env.now))
                yield env.timeout(1.0)
                critical.append((label, "out", env.now))

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        # The second worker must only enter after the first one left.
        assert critical == [
            ("a", "in", 0.0),
            ("a", "out", 1.0),
            ("b", "in", 1.0),
            ("b", "out", 2.0),
        ]

    def test_locked_and_waiters(self, env, runner):
        lock = Lock(env)

        def proc(env):
            assert not lock.locked
            with (yield lock.acquire()):
                return lock.locked, lock.waiters

        locked, waiters = runner(env, proc(env))
        assert locked is True
        assert waiters == 0
        assert not lock.locked
