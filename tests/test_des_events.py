"""Unit tests for the core event types."""

import pytest

from repro.des import Environment
from repro.des.events import AllOf, ConditionValue


class TestEvent:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self, env):
        event = env.event()
        with pytest.raises(AttributeError):
            _ = event.value
        with pytest.raises(AttributeError):
            _ = event.ok

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_sets_exception_value(self, env):
        event = env.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_unhandled_failure_propagates_from_run(self, env):
        event = env.event()
        event.fail(RuntimeError("nobody caught me"))
        with pytest.raises(RuntimeError, match="nobody caught me"):
            env.run()

    def test_defused_failure_does_not_propagate(self, env):
        event = env.event()
        event.fail(RuntimeError("handled"))
        event.defused = True
        env.run()  # must not raise

    def test_trigger_copies_outcome(self, env):
        source = env.event()
        source.succeed("payload")
        target = env.event()
        target.trigger(source)
        assert target.ok
        assert target.value == "payload"

    def test_callbacks_invoked_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed(7)
        env.run()
        assert seen == [7]
        assert event.processed


class TestTimeout:
    def test_timeout_advances_clock(self, env):
        env.timeout(5.0)
        env.run()
        assert env.now == 5.0

    def test_timeout_value(self, env, runner):
        def proc(env):
            value = yield env.timeout(1.0, value="done")
            return value

        assert runner(env, proc(env)) == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_delay_property(self, env):
        timeout = env.timeout(2.5)
        assert timeout.delay == 2.5


class TestConditions:
    def test_all_of_waits_for_all(self, env, runner):
        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            result = yield env.all_of([t1, t2])
            return env.now, result.values()

        now, values = runner(env, proc(env))
        assert now == 3.0
        assert values == ["a", "b"]

    def test_any_of_returns_at_first(self, env, runner):
        def proc(env):
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(3.0, value="slow")
            result = yield env.any_of([t1, t2])
            return env.now, list(result.values())

        now, values = runner(env, proc(env))
        assert now == 1.0
        assert values == ["fast"]

    def test_and_operator(self, env, runner):
        def proc(env):
            yield env.timeout(1.0) & env.timeout(2.0)
            return env.now

        assert runner(env, proc(env)) == 2.0

    def test_or_operator(self, env, runner):
        def proc(env):
            yield env.timeout(1.0) | env.timeout(2.0)
            return env.now

        assert runner(env, proc(env)) == 1.0

    def test_empty_all_of_triggers_immediately(self, env, runner):
        def proc(env):
            yield env.all_of([])
            return env.now

        assert runner(env, proc(env)) == 0.0

    def test_condition_with_already_processed_event(self, env, runner):
        def proc(env):
            t1 = env.timeout(1.0)
            yield t1
            # t1 is already processed when the condition is built.
            yield env.all_of([t1, env.timeout(1.0)])
            return env.now

        assert runner(env, proc(env)) == 2.0

    def test_failed_subevent_fails_condition(self, env, runner):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("sub-process failure")

        def proc(env):
            bad = env.process(failing(env))
            with pytest.raises(ValueError, match="sub-process failure"):
                yield env.all_of([bad, env.timeout(5.0)])
            return env.now

        assert runner(env, proc(env)) == 1.0

    def test_mixing_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1.0), other.timeout(1.0)])

    def test_condition_value_mapping(self, env, runner):
        def proc(env):
            t1 = env.timeout(1.0, value="x")
            t2 = env.timeout(2.0, value="y")
            result = yield env.all_of([t1, t2])
            return result, t1, t2

        result, t1, t2 = runner(env, proc(env))
        assert result[t1] == "x"
        assert t2 in result
        assert len(result) == 2
        assert result.todict() == {t1: "x", t2: "y"}
        assert result == {t1: "x", t2: "y"}

    def test_condition_value_missing_key(self):
        value = ConditionValue()
        with pytest.raises(KeyError):
            _ = value[object()]
