"""Edge-case tests for the extent-run page cache core.

The extent representation must be *lossless*: fragments keep their exact
byte sizes through every structural event — coalescing, state changes,
partial flushes, partial evictions, pooled run reuse — and the byte
totals the accounting reports are exactly the sum of the run lengths (no
float slack needed on integer-sized workloads).  These tests drive the
true state boundaries one by one.
"""

from __future__ import annotations

import pytest

from repro.errors import CacheConsistencyError
from repro.pagecache import MemoryManager, PageCacheConfig
from repro.pagecache.block import Block
from repro.pagecache.lru import LRUList, PageCacheLists
from repro.pagecache.stats import ExtentOccupancy
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, MB, MBps


def make_block(filename="f", size=10.0, entry=0.0, access=None, dirty=False,
               storage=None):
    return Block(filename, size, entry_time=entry, last_access=access,
                 dirty=dirty, storage=storage)


def exact_totals(lru: LRUList):
    """(size, dirty) recomputed as the plain sum of the run lengths."""
    total = 0.0
    dirty = 0.0
    for run in lru.runs():
        length = run.length()
        total += length
        if run.dirty:
            dirty += length
    return total, dirty


@pytest.fixture
def mm_setup(env):
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    manager = MemoryManager(env, memory,
                            PageCacheConfig(periodic_flushing=False))
    return env, manager, disk


class TestPartialFlushSplits:
    """A foreground flush that stops mid-run splits at the exact byte."""

    def test_partial_flush_carves_the_dirty_run(self, mm_setup, runner):
        env, mm, disk = mm_setup
        for step in range(4):
            env._now = float(step)
            mm.add_to_cache("f", 100.0 * MB, disk, dirty=True)
        assert mm.lists.inactive.run_count == 1
        # Flush two and a half fragments' worth.
        flushed = runner(env, mm.flush(250.0 * MB))
        assert flushed == 250.0 * MB
        # The flushed bytes are clean, the remainder dirty; the split
        # fragment's halves carry exactly the split sizes.
        assert mm.dirty == 150.0 * MB
        assert mm.cached == 400.0 * MB
        sizes = sorted(block.size for block in
                       mm.lists.inactive.dirty_blocks())
        assert sizes == [50.0 * MB, 100.0 * MB]
        mm.lists.assert_consistent()
        total, dirty = exact_totals(mm.lists.inactive)
        assert mm.lists.inactive.size == total
        assert mm.lists.inactive.dirty_size == dirty

    def test_background_flush_cleans_a_mid_run_fragment(self, mm_setup,
                                                        runner):
        env, mm, disk = mm_setup
        lru = mm.lists.inactive
        # Three dirty fragments; the middle one is old enough to expire.
        lru.append(make_block("f", 10.0, entry=100.0, access=100.0,
                              dirty=True, storage=disk))
        lru.append(make_block("f", 20.0, entry=0.0, access=101.0,
                              dirty=True, storage=disk))
        lru.append(make_block("f", 30.0, entry=102.0, access=102.0,
                              dirty=True, storage=disk))
        env._now = 103.0
        expired = lru.expired_blocks(now=103.0, expiration=50.0)
        assert [block.size for block in expired] == [20.0]
        # Cleaning the middle fragment moves it to the clean run; the
        # dirty neighbours stay in one dirty run (no split needed: order
        # lives in the position keys).
        lru.mark_clean(expired[0])
        assert lru.dirty_size == 40.0
        assert lru.run_count == 2
        assert [block.size for block in lru.dirty_blocks()] == [10.0, 30.0]
        assert [block.size for block in lru.clean_blocks()] == [20.0]
        # Byte-exact totals, no tolerance.
        total, dirty = exact_totals(lru)
        assert lru.size == total == 60.0
        assert lru.dirty_size == dirty == 40.0
        lru.assert_consistent()


class TestEvictionCarving:
    """Eviction consumes clean runs front-first, splitting at the byte."""

    def test_partial_eviction_splits_the_front_fragment(self, mm_setup):
        env, mm, disk = mm_setup
        for step in range(3):
            env._now = float(step)
            mm.add_to_cache("f", 100.0 * MB, disk, dirty=False)
        evicted = mm.evict(150.0 * MB)
        assert evicted == 150.0 * MB
        assert mm.cached == 150.0 * MB
        # The carved fragment keeps the exact remainder.
        sizes = [block.size for block in mm.lists.inactive.clean_blocks()]
        assert sizes == [50.0 * MB, 100.0 * MB]
        mm.lists.assert_consistent()

    def test_eviction_interleaves_files_in_exact_lru_order(self, mm_setup):
        env, mm, disk = mm_setup
        # a and b interleave in time; each still occupies one run.
        for step, name in enumerate(["a", "b", "a", "b"]):
            env._now = float(step)
            mm.add_to_cache(name, 10.0, disk, dirty=False)
        assert mm.lists.inactive.run_count == 2
        # Evicting 25 bytes must take a[0], b[1], and half of a[2].
        evicted = mm.evict(25.0)
        assert evicted == 25.0
        assert mm.cached_amount("a") == 5.0
        assert mm.cached_amount("b") == 10.0
        mm.lists.assert_consistent()

    def test_excluded_file_survives_and_stays_reachable(self, mm_setup):
        env, mm, disk = mm_setup
        mm.add_to_cache("keep", 10.0, disk, dirty=False)
        env._now = 1.0
        mm.add_to_cache("evictme", 10.0, disk, dirty=False)
        assert mm.evict(100.0, exclude_file="keep") == 10.0
        assert mm.cached_amount("keep") == 10.0
        # The held-aside run must return to the heap: a later eviction
        # without the exclusion reclaims it.
        assert mm.evict(100.0) == 10.0
        assert mm.cached == 0.0
        mm.lists.assert_consistent()


class TestStateBoundaries:
    def test_adjacent_dirty_and_clean_runs_never_merge(self, mm_setup):
        env, mm, disk = mm_setup
        mm.add_to_cache("f", 10.0, disk, dirty=False)
        env._now = 1.0
        mm.add_to_cache("f", 10.0, disk, dirty=True)
        lru = mm.lists.inactive
        assert lru.run_count == 2
        states = {run.dirty for run in lru.runs()}
        assert states == {True, False}
        lru.assert_consistent()

    def test_redirty_of_a_clean_sub_range_coexists(self, mm_setup, runner):
        env, mm, disk = mm_setup
        # A fully clean cached file...
        mm.add_to_cache("f", 100.0, disk, dirty=False)
        # ... gets new dirty data written over part of its range (the
        # model appends dirty blocks; it never re-dirties in place).
        runner(env, mm.write_to_cache("f", 40.0, disk))
        lru = mm.lists.inactive
        assert lru.run_count == 2
        assert lru.dirty_size == 40.0
        assert lru.size == 140.0
        # Flushing the re-dirtied range merges it back into clean data.
        runner(env, mm.flush(40.0))
        assert lru.run_count == 1
        assert lru.dirty_size == 0.0
        total, dirty = exact_totals(lru)
        assert lru.size == total == 140.0
        assert dirty == 0.0
        lru.assert_consistent()


class TestZeroLengthInvariants:
    def test_no_empty_runs_after_full_consumption(self, mm_setup):
        env, mm, disk = mm_setup
        mm.add_to_cache("f", 10.0, disk, dirty=False)
        assert mm.evict(10.0) == 10.0
        assert mm.lists.inactive.run_count == 0
        assert mm.extent_runs == 0
        assert mm.extent_fragments == 0
        mm.lists.assert_consistent()

    def test_assert_consistent_rejects_stored_empty_run(self):
        lru = LRUList()
        block = make_block("f", 10.0)
        lru.append(block)
        run = block._run
        # Corrupt the run behind the list's back.
        run.frags.clear()
        run.head = 0
        with pytest.raises(CacheConsistencyError):
            lru.assert_consistent()

    def test_fragment_sizes_must_stay_positive(self):
        lru = LRUList()
        block = make_block("f", 10.0)
        lru.append(block)
        block.size = 0.0
        with pytest.raises(CacheConsistencyError):
            lru.assert_consistent()


class TestExactAccounting:
    """Integer-sized workloads need no float slack at all."""

    def test_totals_are_exactly_the_sum_of_run_lengths(self, mm_setup,
                                                       runner):
        env, mm, disk = mm_setup
        for step in range(8):
            env._now = float(step)
            mm.add_to_cache(f"f{step % 3}", float(64 * MB), disk,
                            dirty=step % 2 == 0)
        runner(env, mm.flush(96.0 * MB))
        mm.evict(32.0 * MB)
        for lru in (mm.lists.inactive, mm.lists.active):
            total, dirty = exact_totals(lru)
            assert lru.size == total
            assert lru.dirty_size == dirty
        assert mm.cached == (mm.lists.inactive.size
                             + mm.lists.active.size)

    def test_read_consumption_is_byte_exact(self, mm_setup, runner):
        env, mm, disk = mm_setup
        for step in range(4):
            env._now = float(step)
            mm.add_to_cache("f", float(10 * MB), disk, dirty=False)
        env._now = 10.0
        served = runner(env, mm.read_from_cache("f", float(25 * MB)))
        assert served == float(25 * MB)
        # 25 MB re-accessed (merged into one active fragment), 15 MB left
        # behind: 5 MB carved from the third fragment plus the fourth.
        assert mm.cached_amount("f") == float(40 * MB)
        assert mm.lists.active.cached_of_file("f") >= float(25 * MB)
        sizes = [block.size for block in
                 mm.lists.inactive.blocks_of_file("f")]
        assert sizes == [float(5 * MB), float(10 * MB)]
        mm.lists.assert_consistent()


class TestRunPooling:
    """Dead run objects are reused; stale references are fenced."""

    def test_killed_run_is_reused_with_a_new_epoch(self):
        lru = LRUList()
        block = make_block("a", 10.0, access=0.0)
        lru.append(block)
        run = block._run
        epoch = run._epoch
        lru.remove(block)
        assert run._list is None
        assert run._epoch == epoch + 1
        other = make_block("b", 5.0, access=1.0)
        lru.append(other)
        assert other._run is run  # recycled object...
        assert other._run.filename == "b"  # ...new identity
        lru.assert_consistent()

    def test_stale_file_cursor_sees_reuse_as_exhaustion(self):
        lru = LRUList()
        block = make_block("a", 10.0, access=0.0)
        lru.append(block)
        cursor = lru.file_cursor("a")
        lru.remove(block)  # the run dies under the cursor
        lru.append(make_block("b", 5.0, access=1.0))  # object reused for b
        assert cursor.next() is None

    def test_file_cursor_skips_fragments_linked_after_creation(self):
        lru = LRUList()
        first = make_block("a", 10.0, access=0.0)
        lru.append(first)
        cursor = lru.file_cursor("a")
        lru.append(make_block("a", 20.0, access=1.0))
        assert cursor.next() is first
        lru.remove(first)
        # The second fragment was linked after the snapshot bound.
        assert cursor.next() is None


class TestOccupancy:
    def test_extent_occupancy_reports_structure(self, mm_setup):
        env, mm, disk = mm_setup
        for step in range(10):
            env._now = float(step)
            mm.add_to_cache("stream", 10.0, disk, dirty=False)
        occupancy = ExtentOccupancy.of(mm.lists)
        assert occupancy.runs == 1
        assert occupancy.fragments == 10
        assert occupancy.merges == 9
        assert occupancy.fragments_per_run == pytest.approx(10.0)
        as_dict = occupancy.as_dict()
        assert as_dict["runs"] == 1
        assert as_dict["fragments"] == 10


class TestBalanceAcrossRuns:
    def test_demotion_carves_the_global_lru_front(self):
        lists = PageCacheLists()
        # Fill inactive, promote everything, then let balancing demote
        # exactly the excess from the least recently used end.
        blocks = []
        for step in range(6):
            block = make_block(f"f{step % 2}", 30.0, access=float(step))
            lists.add_to_inactive(block)
            blocks.append(block)
        for step, block in enumerate(blocks):
            if block in lists.inactive:
                lists.promote(block, now=10.0 + step)
        assert lists.active.size <= 2 * lists.inactive.size + 1e-6
        total = lists.inactive.size + lists.active.size
        assert total == pytest.approx(180.0)
        lists.assert_consistent()
