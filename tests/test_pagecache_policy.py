"""Unit and integration tests of the pluggable eviction-policy API.

The byte-identity of the default LRU policy is pinned by the parity suite
(``tests/test_pagecache_parity.py``); these tests cover the policy zoo
itself: registry construction, the per-policy state machines (ARC ghost
lists, 2Q promotion discipline, CLOCK-Pro hand rotation, priority-weighted
ordering under preemption), the victim cursor, the survival forecast, and
the scheduler-to-cache job hooks through a full preemptive simulation.
"""

from __future__ import annotations

import pytest

from repro.des import Environment
from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.pagecache import IOController, MemoryManager, PageCacheConfig
from repro.pagecache.policy import (
    ARCPolicy,
    ClockProPolicy,
    EvictionPolicy,
    LRUPolicy,
    POLICIES,
    PriorityWeightedPolicy,
    TwoQPolicy,
    make_eviction_policy,
    validate_policy_spec,
)
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.units import GB, MB, MBps


def make_cache(policy, *, memory_size=512 * MB, chunk_size=16 * MB):
    """A single-host cache stack with ``policy`` installed."""
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 2000 * MBps, size=memory_size)
    disk = Disk.symmetric(env, "disk", 200 * MBps)
    config = PageCacheConfig(
        chunk_size=chunk_size,
        periodic_flushing=False,
        eviction_policy=policy,
    )
    mm = MemoryManager(env, memory, config, name="policy-mm")
    return env, mm, IOController(env, mm), disk


def read(env, io, disk, filename, size):
    """Run one whole-file read to completion."""
    process = env.process(
        io.read_file(filename, size, disk, use_anonymous_memory=False),
        name=f"read-{filename}",
    )
    env.run(until=process)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", sorted(POLICIES.items()))
    def test_every_registered_name_constructs(self, name, cls):
        policy = make_eviction_policy(name)
        assert isinstance(policy, cls)
        assert policy.name in POLICIES

    def test_default_is_lru(self):
        assert isinstance(make_eviction_policy(None), LRUPolicy)
        assert isinstance(make_eviction_policy("lru"), LRUPolicy)

    def test_instance_passes_through(self):
        policy = ARCPolicy()
        assert make_eviction_policy(policy) is policy

    def test_class_and_factory_specs(self):
        assert isinstance(make_eviction_policy(TwoQPolicy), TwoQPolicy)
        assert isinstance(
            make_eviction_policy(lambda: ClockProPolicy(ghost_capacity=8)),
            ClockProPolicy,
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown eviction policy"):
            make_eviction_policy("mru")
        with pytest.raises(ConfigurationError):
            validate_policy_spec("mru")

    def test_bad_spec_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_eviction_policy(42)

    def test_config_validates_policy_spec(self):
        with pytest.raises(ConfigurationError):
            PageCacheConfig(eviction_policy="not-a-policy")
        assert PageCacheConfig().eviction_policy == "lru"

    def test_double_bind_rejected(self):
        policy = ARCPolicy()
        env, mm, _, _ = make_cache(policy)
        assert mm.policy is policy
        with pytest.raises(ConfigurationError, match="already bound"):
            make_cache(policy)

    def test_rebinding_same_manager_is_idempotent(self):
        policy = ARCPolicy()
        env, mm, _, _ = make_cache(policy)
        policy.bind(mm)  # no-op, not an error


class TestLRUPolicyEquivalence:
    def test_trace_identical_to_implicit_default(self):
        # A seed the goldens don't cover: the explicit LRUPolicy object
        # must replay exactly like the built-in default dispatch.
        from parity_workload import run_parity_workload

        base = run_parity_workload(seed=777, n_ops=60)
        via_policy = run_parity_workload(
            seed=777, n_ops=60, eviction_policy=LRUPolicy()
        )
        assert via_policy == base

    def test_no_hooks_wanted(self):
        assert LRUPolicy.wants_events is False
        assert LRUPolicy.wants_job_events is False


class TestARCGhostLists:
    def test_second_access_promotes_to_frequency_list(self):
        arc = ARCPolicy()
        arc.on_insert("a", 1.0, 0.0)
        assert "a" in arc._t1
        arc.on_access("a", 1.0, 1.0)
        assert "a" not in arc._t1 and "a" in arc._t2
        assert arc.stats.promotions == 1

    def test_chunk_streaming_does_not_promote(self):
        arc = ARCPolicy()
        arc.on_insert("a", 1.0, 0.0)
        arc.on_insert("a", 1.0, 0.1)  # second chunk of the same read
        assert "a" in arc._t1 and "a" not in arc._t2

    def test_full_eviction_moves_to_ghost_and_ghost_hit_adapts(self):
        arc = ARCPolicy()
        arc.on_insert("a", 1.0, 0.0)
        arc.on_evicted("a", 1.0, resident_after=0.0)
        assert "a" in arc._b1 and "a" not in arc._t1
        p_before = arc._p
        arc.on_insert("a", 1.0, 2.0)  # recency ghost hit
        assert "a" in arc._t2 and "a" not in arc._b1
        assert arc._p > p_before
        assert arc.stats.ghost_hits == 1

    def test_frequency_ghost_hit_shrinks_p(self):
        arc = ARCPolicy()
        arc.on_insert("a", 1.0, 0.0)
        arc.on_access("a", 1.0, 1.0)  # -> T2
        arc.on_evicted("a", 1.0, resident_after=0.0)  # -> B2
        assert "a" in arc._b2
        arc._p = 3.0
        arc.on_insert("a", 1.0, 2.0)
        assert arc._p < 3.0 and "a" in arc._t2

    def test_partial_eviction_keeps_tracking(self):
        arc = ARCPolicy()
        arc.on_insert("a", 2.0, 0.0)
        arc.on_evicted("a", 1.0, resident_after=1.0)
        assert "a" in arc._t1 and "a" not in arc._b1

    def test_ghost_capacity_bounded(self):
        arc = ARCPolicy(ghost_capacity=2)
        for i in range(4):
            name = f"f{i}"
            arc.on_insert(name, 1.0, float(i))
            arc.on_evicted(name, 1.0, resident_after=0.0)
        assert len(arc._b1) == 2
        assert "f0" not in arc._b1 and "f3" in arc._b1

    def test_scan_resistance_in_victim_order(self):
        # Hot (re-referenced) files rank after one-shot scans.
        env, mm, io, disk = make_cache(ARCPolicy(), memory_size=1 * GB)
        read(env, io, disk, "hot", 64 * MB)
        read(env, io, disk, "hot", 64 * MB)  # second read -> T2
        read(env, io, disk, "scan", 64 * MB)
        order = mm.policy.victim_order(mm.lists.inactive, frozenset())
        assert order.index("scan") < order.index("hot")


class TestTwoQPromotion:
    def test_probation_hits_do_not_promote(self):
        twoq = TwoQPolicy()
        twoq.on_insert("a", 1.0, 0.0)
        twoq.on_access("a", 1.0, 1.0)
        twoq.on_access("a", 1.0, 2.0)
        assert "a" in twoq._a1in and "a" not in twoq._am

    def test_ghost_hit_earns_main_queue(self):
        twoq = TwoQPolicy()
        twoq.on_insert("a", 1.0, 0.0)
        twoq.on_evicted("a", 1.0, resident_after=0.0)
        assert "a" in twoq._a1out
        twoq.on_insert("a", 1.0, 2.0)
        assert "a" in twoq._am and "a" not in twoq._a1out
        assert twoq.stats.ghost_hits == 1

    def test_a1in_is_fifo_by_first_insert(self):
        twoq = TwoQPolicy()
        twoq.on_insert("first", 1.0, 0.0)
        twoq.on_insert("second", 1.0, 1.0)
        twoq.on_insert("first", 1.0, 2.0)  # later chunk: position fixed
        assert list(twoq._a1in) == ["first", "second"]

    def test_victim_order_drains_probation_before_main(self):
        env, mm, io, disk = make_cache(TwoQPolicy(), memory_size=1 * GB)
        read(env, io, disk, "resident", 64 * MB)
        # Fall out of probation and return: earns Am.
        mm.policy.on_evicted("resident", 64 * MB, resident_after=0.0)
        mm.policy.on_insert("resident", 64 * MB, env.now)
        read(env, io, disk, "probation", 64 * MB)
        order = mm.policy.victim_order(mm.lists.inactive, frozenset())
        assert order.index("probation") < order.index("resident")


class TestClockProRotation:
    def test_insert_is_cold_in_test_without_reference(self):
        cp = ClockProPolicy()
        cp.on_insert("a", 1.0, 0.0)
        hot, ref, test, _ = cp._resident["a"]
        assert (hot, ref, test) == (False, False, True)
        cp.on_insert("a", 1.0, 0.1)  # streaming chunk: still unreferenced
        assert cp._resident["a"][cp._REF] is False

    def test_hand_promotes_referenced_cold_in_test(self):
        cp = ClockProPolicy()
        cp.on_insert("a", 1.0, 0.0)
        cp.on_access("a", 1.0, 1.0)
        cp._rotate_hand()
        entry = cp._resident["a"]
        assert entry[cp._HOT] is True and entry[cp._REF] is False
        assert cp.stats.promotions == 1

    def test_hand_gives_second_chance_past_test_period(self):
        cp = ClockProPolicy()
        cp.on_insert("a", 1.0, 0.0)
        cp._resident["a"][cp._TEST] = False  # test period expired
        cp.on_access("a", 1.0, 1.0)
        seq_before = cp._resident["a"][cp._SEQ]
        cp._rotate_hand()
        entry = cp._resident["a"]
        assert entry[cp._HOT] is False  # not promoted
        assert entry[cp._TEST] is True  # new test period
        assert entry[cp._SEQ] > seq_before  # moved behind the hand

    def test_cold_eviction_in_test_leaves_ghost_and_ghost_returns_hot(self):
        cp = ClockProPolicy()
        cp.on_insert("a", 1.0, 0.0)
        cp.on_evicted("a", 1.0, resident_after=0.0)
        assert "a" in cp._ghost
        cp.on_insert("a", 1.0, 2.0)
        assert cp._resident["a"][cp._HOT] is True
        assert cp.stats.ghost_hits == 1

    def test_victim_order_evicts_cold_before_hot(self):
        env, mm, io, disk = make_cache(ClockProPolicy(), memory_size=1 * GB)
        read(env, io, disk, "hotfile", 64 * MB)
        mm.policy.on_evicted("hotfile", 64 * MB, resident_after=0.0)
        mm.policy.on_insert("hotfile", 64 * MB, env.now)  # ghost -> hot
        read(env, io, disk, "coldfile", 64 * MB)
        order = mm.policy.victim_order(mm.lists.inactive, frozenset())
        assert order.index("coldfile") < order.index("hotfile")


class TestPriorityWeightedOrdering:
    def test_priority_and_preemption_reorder_victims(self):
        env, mm, io, disk = make_cache(PriorityWeightedPolicy(),
                                       memory_size=1 * GB)
        for name in ("urgent", "victim", "plain"):
            read(env, io, disk, name, 64 * MB)
        assert mm.wants_job_events is True
        mm.notify_job_dispatch(["urgent"], priority=5, wait=2.0)
        mm.notify_job_dispatch(["victim"], priority=0)
        mm.notify_job_preempted(["victim"])
        order = mm.policy.victim_order(mm.lists.inactive, frozenset())
        assert order[0] == "victim"  # preempted: loses residency first
        assert order[-1] == "urgent"  # high priority: evicted last
        assert mm.policy.stats.demotions == 1

    def test_redispatch_lifts_preemption_penalty(self):
        policy = PriorityWeightedPolicy()
        policy.on_insert("a", 1.0, 0.0)
        base = policy.score("a", 1.0)
        policy.on_job_preempted(["a"])
        assert policy.score("a", 1.0) == pytest.approx(
            base - policy.preemption_penalty
        )
        policy.on_job_dispatch(["a"], priority=0)
        assert policy.score("a", 1.0) == pytest.approx(base)
        assert policy.stats.promotions == 1

    def test_negative_wait_clamped(self):
        policy = PriorityWeightedPolicy(wait_weight=1.0)
        policy.on_insert("a", 1.0, 0.0)
        policy.on_job_dispatch(["a"], priority=0, wait=-5.0)
        assert policy._owner_wait.get("a", 0.0) == 0.0

    def test_frequency_beats_recency(self):
        policy = PriorityWeightedPolicy()
        now = 10.0
        policy._touches["frequent"] = (5.0, 6)
        policy._touches["recent"] = (10.0, 1)
        assert policy.score("frequent", now) > policy.score("recent", now)


class TestVictimCursor:
    def test_peek_then_pop_agree_and_pop_removes(self):
        env, mm, io, disk = make_cache(ARCPolicy(), memory_size=1 * GB)
        read(env, io, disk, "a", 64 * MB)
        read(env, io, disk, "b", 64 * MB)
        policy = mm.policy
        lru = mm.lists.inactive
        peeked = policy.peek_victim(lru)
        assert peeked is not None
        before = mm.lists.cached_of_file(peeked.filename)
        popped = policy.pop_victim(lru)
        assert popped is peeked
        assert mm.lists.cached_of_file(peeked.filename) < before

    def test_excluded_file_never_surfaces(self):
        env, mm, io, disk = make_cache(TwoQPolicy(), memory_size=1 * GB)
        read(env, io, disk, "a", 64 * MB)
        read(env, io, disk, "b", 64 * MB)
        cursor = mm.policy.clean_cursor(mm.lists.inactive, ["a"])
        seen = set()
        block = cursor.next()
        while block is not None:
            seen.add(block.filename)
            mm.lists.inactive.remove(block)
            block = cursor.next()
        assert seen == {"b"}

    def test_empty_cache_yields_no_victim(self):
        env, mm, _, _ = make_cache(ARCPolicy())
        assert mm.policy.peek_victim(mm.lists.inactive) is None
        assert mm.policy.pop_victim(mm.lists.inactive) is None


class TestPredictedSurvival:
    def test_uncached_file_is_zero(self):
        env, mm, _, _ = make_cache(ARCPolicy())
        assert mm.predicted_survival("ghost", 10.0) == 0.0

    def test_no_pressure_is_one(self):
        env, mm, io, disk = make_cache(ARCPolicy(), memory_size=1 * GB)
        read(env, io, disk, "a", 64 * MB)
        assert mm.predicted_survival("a", 100.0) == 1.0

    def test_zero_horizon_is_one(self):
        env, mm, io, disk = make_cache(ARCPolicy(), memory_size=1 * GB)
        read(env, io, disk, "a", 64 * MB)
        assert mm.predicted_survival("a", 0.0) == 1.0

    def test_under_pressure_monotone_in_horizon(self):
        env, mm, io, disk = make_cache(ARCPolicy(), memory_size=256 * MB)
        # Overflow the cache so the eviction rate is nonzero.
        for i in range(6):
            read(env, io, disk, f"f{i}", 128 * MB)
        read(env, io, disk, "probe", 64 * MB)
        values = [mm.predicted_survival("probe", h) for h in (0.5, 5.0, 50.0)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values, reverse=True)

    def test_works_for_default_lru_policy(self):
        env, mm, io, disk = make_cache("lru", memory_size=256 * MB)
        for i in range(6):
            read(env, io, disk, f"f{i}", 128 * MB)
        read(env, io, disk, "probe", 64 * MB)
        value = mm.predicted_survival("probe", 5.0)
        assert 0.0 <= value <= 1.0


class TestSchedulerJobHooks:
    def _preemptive_simulation(self):
        simulation = Simulation(
            config=SimulationConfig(cache_mode="writeback",
                                    trace_interval=None),
            eviction_policy="priority",
        )
        simulation.create_cluster_platform(1, cores_per_node=4,
                                           with_nfs_server=False)
        simulation.create_cluster_scheduler(policy="preemptive-priority",
                                            placement="round-robin")
        return simulation

    def test_dispatch_and_preemption_reach_the_policy(self):
        simulation = self._preemptive_simulation()
        dataset = File("dataset", 200 * MB)
        simulation.stage_file_replicated(dataset)
        low = Workflow("low")
        low.add_task(Task.from_cpu_time(
            "work", 10.0, inputs=[dataset],
            outputs=[File("low_out", 50 * MB)],
        ))
        simulation.submit_job(low, cores=4, arrival_time=0.0,
                              estimated_runtime=10.0, label="low")
        high = Workflow("high")
        high.add_task(Task("high_t", flops=1e9))
        simulation.submit_job(high, cores=2, arrival_time=2.0,
                              estimated_runtime=1.0, priority=1,
                              label="high")
        result = simulation.run()

        assert result.scheduler.n_preemptions == 1
        policy = simulation.scheduler.nodes[0].host.memory_manager.policy
        assert isinstance(policy, PriorityWeightedPolicy)
        # low dispatched, preempted, re-dispatched; high dispatched.
        assert policy.stats.job_dispatches >= 3
        assert policy.stats.job_preemptions == 1
        assert policy.stats.demotions >= 1
        assert policy.stats.promotions >= 1  # the re-dispatch lifted it

    def test_lru_default_gets_no_job_events(self):
        simulation = Simulation(
            config=SimulationConfig(cache_mode="writeback",
                                    trace_interval=None),
        )
        simulation.create_cluster_platform(1, cores_per_node=4,
                                           with_nfs_server=False)
        simulation.create_cluster_scheduler(policy="preemptive-priority",
                                            placement="round-robin")
        manager = simulation.scheduler.nodes[0].host.memory_manager
        assert manager.wants_job_events is False
        assert isinstance(manager.policy, LRUPolicy)


class TestPolicyStatsPublishing:
    def test_policy_stats_published_per_host(self):
        simulation = Simulation(
            config=SimulationConfig(cache_mode="writeback",
                                    trace_interval=None),
            observe=True,
            eviction_policy="arc",
        )
        simulation.create_cluster_platform(1, cores_per_node=4,
                                           with_nfs_server=False)
        service = simulation.create_storage_service("node1", "/local",
                                                    cache_mode="writeback")
        dataset = File("dataset", 100 * MB)
        simulation.stage_file(dataset, service)
        workflow = Workflow("w")
        workflow.add_task(Task.from_cpu_time("t", 0.5, inputs=[dataset]))
        simulation.submit_workflow(workflow, host="node1", storage=service)
        result = simulation.run()
        exported = result.observer.registry.as_dict()
        policy_series = {
            name: series for name, series in exported.items()
            if name.startswith("cache.policy.")
        }
        assert "cache.policy.inserts" in policy_series, sorted(exported)
        labels = next(iter(policy_series["cache.policy.inserts"]))
        assert "policy=arc" in labels


class TestCustomPolicySubclass:
    def test_minimal_subclass_only_needs_victim_order(self):
        class MRUPolicy(EvictionPolicy):
            name = "mru-test"

            def victim_order(self, lru, excluded):
                files = self._evictable_files(lru, excluded)
                files.sort(reverse=True)
                return files

        env, mm, io, disk = make_cache(MRUPolicy(), memory_size=1 * GB)
        read(env, io, disk, "a", 64 * MB)
        read(env, io, disk, "b", 64 * MB)
        victim = mm.policy.peek_victim(mm.lists.inactive)
        assert victim.filename == "b"
