"""Unit tests for the fair-sharing flow model."""

import pytest

from repro.des import Environment
from repro.errors import ConfigurationError
from repro.platform.flows import FairShareChannel, Flow


class TestBasics:
    def test_bandwidth_must_be_positive(self, env):
        with pytest.raises(ConfigurationError):
            FairShareChannel(env, 0.0)

    def test_single_transfer_time(self, env, runner):
        channel = FairShareChannel(env, bandwidth=100.0)

        def proc(env):
            yield channel.transfer(1000.0)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(10.0)

    def test_zero_transfer_completes_immediately(self, env, runner):
        channel = FairShareChannel(env, bandwidth=100.0)

        def proc(env):
            elapsed = yield channel.transfer(0.0)
            return elapsed, env.now

        assert runner(env, proc(env)) == (0.0, 0.0)

    def test_negative_transfer_rejected(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)
        with pytest.raises(ValueError):
            channel.transfer(-1.0)

    def test_transfer_event_value_is_elapsed_time(self, env, runner):
        channel = FairShareChannel(env, bandwidth=50.0)

        def proc(env):
            elapsed = yield channel.transfer(100.0)
            return elapsed

        assert runner(env, proc(env)) == pytest.approx(2.0)


class TestFairSharing:
    def test_two_concurrent_flows_share_bandwidth(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)
        finish = {}

        def proc(env, label):
            yield channel.transfer(1000.0)
            finish[label] = env.now

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        # Two equal flows on a shared channel take twice the solo time.
        assert finish["a"] == pytest.approx(20.0)
        assert finish["b"] == pytest.approx(20.0)

    def test_late_arrival_slows_down_first_flow(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)
        finish = {}

        def first(env):
            yield channel.transfer(1000.0)
            finish["first"] = env.now

        def second(env):
            yield env.timeout(5.0)
            yield channel.transfer(500.0)
            finish["second"] = env.now

        env.process(first(env))
        env.process(second(env))
        env.run()
        # First flow: 500 bytes alone (5 s), then shares the channel.
        # Remaining 500 vs 500: both at 50 B/s -> 10 more seconds.
        assert finish["first"] == pytest.approx(15.0)
        assert finish["second"] == pytest.approx(15.0)

    def test_short_flow_departure_speeds_up_long_flow(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)
        finish = {}

        def proc(env, label, amount):
            yield channel.transfer(amount)
            finish[label] = env.now

        env.process(proc(env, "short", 200.0))
        env.process(proc(env, "long", 1000.0))
        env.run()
        # Shared until the short one ends at t=4 (200 B at 50 B/s); the long
        # one then has 800 left at full bandwidth: 4 + 8 = 12 s.
        assert finish["short"] == pytest.approx(4.0)
        assert finish["long"] == pytest.approx(12.0)

    def test_work_conservation_many_flows(self, env):
        channel = FairShareChannel(env, bandwidth=250.0)
        completions = []

        def proc(env, amount):
            yield channel.transfer(amount)
            completions.append(env.now)

        amounts = [100.0, 200.0, 300.0, 400.0]
        for amount in amounts:
            env.process(proc(env, amount))
        env.run()
        # The channel is busy the whole time, so the last completion equals
        # the total work divided by the bandwidth.
        assert max(completions) == pytest.approx(sum(amounts) / 250.0)
        assert channel.total_transferred == pytest.approx(sum(amounts))

    def test_rate_per_flow(self, env):
        channel = FairShareChannel(env, bandwidth=90.0)
        assert channel.rate_per_flow == 90.0
        channel.transfer(1000.0)
        channel.transfer(1000.0)
        channel.transfer(1000.0)
        assert channel.rate_per_flow == pytest.approx(30.0)
        assert channel.active_flows == 3

    def test_estimate_time_accounts_for_contention(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)
        assert channel.estimate_time(100.0) == pytest.approx(1.0)
        channel.transfer(1000.0)
        assert channel.estimate_time(100.0) == pytest.approx(2.0)


class TestNoSharingMode:
    def test_flows_do_not_interfere(self, env):
        channel = FairShareChannel(env, bandwidth=100.0, sharing=False)
        finish = {}

        def proc(env, label):
            yield channel.transfer(1000.0)
            finish[label] = env.now

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert finish["a"] == pytest.approx(10.0)
        assert finish["b"] == pytest.approx(10.0)


class TestStatisticsAndEdgeCases:
    def test_utilization(self, env, runner):
        channel = FairShareChannel(env, bandwidth=100.0)

        def proc(env):
            yield channel.transfer(500.0)  # busy for 5 s
            yield env.timeout(5.0)  # idle for 5 s
            return channel.utilization()

        assert runner(env, proc(env)) == pytest.approx(0.5)

    def test_total_flows_counter(self, env):
        channel = FairShareChannel(env, bandwidth=100.0)

        def proc(env):
            yield channel.transfer(10.0)
            yield channel.transfer(10.0)

        env.process(proc(env))
        env.run()
        assert channel.total_flows == 2

    def test_tiny_residual_does_not_hang(self, env):
        """Regression test: float underflow in remaining work must not spin."""
        channel = FairShareChannel(env, bandwidth=4.812e9)
        finish = {}

        def proc(env, label, amount, delay):
            yield env.timeout(delay)
            yield channel.transfer(amount)
            finish[label] = env.now

        # Stagger many large flows so remainders become denormally small
        # relative to the simulated clock.
        for index in range(10):
            env.process(proc(env, index, 3e9, index * 0.001))
        env.run()
        assert len(finish) == 10

    def test_flow_progress_property(self, env):
        flow = Flow(100.0, Environment().event(), 0.0)
        assert flow.progress == 0.0
        flow.remaining = 25.0
        assert flow.progress == pytest.approx(0.75)
