"""Unit tests for the Memory Manager (flushing, eviction, accounting)."""

import pytest

from repro.des import Environment
from repro.errors import ConfigurationError
from repro.pagecache import MemoryManager, PageCacheConfig
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, MBps


GB_F = float(GB)


@pytest.fixture
def setup(env):
    """Environment, 10 GB memory manager and a disk, flusher disabled."""
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    manager = MemoryManager(env, memory, PageCacheConfig(periodic_flushing=False))
    return env, manager, disk


class TestConstruction:
    def test_requires_memory_device(self, env):
        with pytest.raises(ConfigurationError):
            MemoryManager(env, None)

    def test_initial_state(self, setup):
        _, mm, _ = setup
        assert mm.free_mem == 10 * GB
        assert mm.cached == 0
        assert mm.dirty == 0
        assert mm.anonymous == 0
        assert mm.used_memory == 0
        mm.assert_consistent()


class TestAnonymousMemory:
    def test_use_and_release(self, setup):
        _, mm, _ = setup
        mm.use_anonymous_memory(2 * GB, owner="app1")
        assert mm.anonymous == 2 * GB
        assert mm.free_mem == 8 * GB
        assert mm.anonymous_of("app1") == 2 * GB
        released = mm.release_anonymous_memory(owner="app1")
        assert released == 2 * GB
        assert mm.anonymous == 0
        assert mm.free_mem == 10 * GB
        mm.assert_consistent()

    def test_partial_release(self, setup):
        _, mm, _ = setup
        mm.use_anonymous_memory(3 * GB, owner="app")
        mm.release_anonymous_memory(1 * GB, owner="app")
        assert mm.anonymous == 2 * GB
        assert mm.anonymous_of("app") == 2 * GB

    def test_release_without_owner_releases_all(self, setup):
        _, mm, _ = setup
        mm.use_anonymous_memory(1 * GB)
        mm.use_anonymous_memory(2 * GB)
        assert mm.release_anonymous_memory() == 3 * GB
        assert mm.anonymous == 0

    def test_release_is_capped_at_allocated(self, setup):
        _, mm, _ = setup
        mm.use_anonymous_memory(1 * GB)
        assert mm.release_anonymous_memory(5 * GB) == 1 * GB

    def test_negative_allocation_rejected(self, setup):
        _, mm, _ = setup
        with pytest.raises(ValueError):
            mm.use_anonymous_memory(-1)

    def test_zero_allocation_is_noop(self, setup):
        _, mm, _ = setup
        mm.use_anonymous_memory(0)
        assert mm.free_mem == 10 * GB


class TestCacheAccounting:
    def test_add_to_cache_creates_inactive_clean_block(self, setup):
        _, mm, disk = setup
        block = mm.add_to_cache("f", 1 * GB, disk)
        assert block in mm.lists.inactive
        assert not block.dirty
        assert mm.cached == 1 * GB
        assert mm.free_mem == 9 * GB
        assert mm.cached_amount("f") == 1 * GB
        mm.assert_consistent()

    def test_add_to_cache_zero_amount(self, setup):
        _, mm, disk = setup
        assert mm.add_to_cache("f", 0, disk) is None

    def test_write_to_cache_creates_dirty_block(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 2 * GB, disk))
        assert mm.dirty == 2 * GB
        assert mm.cached == 2 * GB
        assert mm.free_mem == 8 * GB
        assert env.now == pytest.approx(2.0)  # 2 GB at 1000 MBps
        mm.assert_consistent()

    def test_cache_content_reports_per_file(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("a", 1 * GB, disk)
        mm.add_to_cache("b", 2 * GB, disk)
        assert mm.cache_content() == {"a": 1 * GB, "b": 2 * GB}

    def test_invalidate_file(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("a", 1 * GB, disk)
        mm.add_to_cache("b", 2 * GB, disk)
        removed = mm.invalidate_file("a")
        assert removed == 1 * GB
        assert mm.cached == 2 * GB
        assert mm.free_mem == 8 * GB
        mm.assert_consistent()

    def test_dirty_capacity_total_base(self, setup):
        _, mm, _ = setup
        assert mm.dirty_capacity == pytest.approx(0.2 * 10 * GB)

    def test_dirty_capacity_available_base(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        mm = MemoryManager(
            env, memory,
            PageCacheConfig(periodic_flushing=False, dirty_threshold_base="available"),
        )
        mm.use_anonymous_memory(5 * GB)
        assert mm.dirty_capacity == pytest.approx(0.2 * 5 * GB)

    def test_snapshot_fields(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("f", 1 * GB, disk)
        mm.use_anonymous_memory(2 * GB)
        snap = mm.snapshot()
        assert snap.total == 10 * GB
        assert snap.cached == 1 * GB
        assert snap.anonymous == 2 * GB
        assert snap.used == 3 * GB
        assert snap.free == 7 * GB
        assert snap.as_dict()["dirty"] == 0


class TestEviction:
    def test_evicts_clean_inactive_blocks_lru_first(self, setup):
        env, mm, disk = setup
        first = mm.add_to_cache("a", 1 * GB, disk)
        env.run(until=1.0)
        mm.add_to_cache("b", 1 * GB, disk)
        evicted = mm.evict(1 * GB)
        assert evicted == 1 * GB
        assert mm.cached_amount("a") == 0  # oldest evicted first
        assert mm.cached_amount("b") == 1 * GB
        assert first not in mm.lists.inactive
        mm.assert_consistent()

    def test_partial_eviction_splits_block(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("a", 2 * GB, disk)
        evicted = mm.evict(0.5 * GB)
        assert evicted == pytest.approx(0.5 * GB)
        assert mm.cached_amount("a") == pytest.approx(1.5 * GB)
        assert mm.free_mem == pytest.approx(8.5 * GB)
        mm.assert_consistent()

    def test_dirty_blocks_are_not_evicted(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("d", 1 * GB, disk))
        assert mm.evict(1 * GB) == 0.0
        assert mm.cached == 1 * GB

    def test_excluded_file_is_skipped(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("keep", 1 * GB, disk)
        mm.add_to_cache("drop", 1 * GB, disk)
        evicted = mm.evict(2 * GB, exclude_file="keep")
        assert evicted == 1 * GB
        assert mm.cached_amount("keep") == 1 * GB

    def test_non_positive_amount_is_noop(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("a", 1 * GB, disk)
        assert mm.evict(0) == 0.0
        assert mm.evict(-5) == 0.0
        assert mm.evict(None) == 0.0

    def test_active_list_not_evicted_by_default(self, setup, runner):
        env, mm, disk = setup
        mm.add_to_cache("a", 1 * GB, disk)
        runner(env, mm.read_from_cache("a", 1 * GB))  # promote to active
        # Balancing demotes exactly one third back to the inactive list;
        # a single eviction pass may only reclaim that demoted part.
        assert mm.lists.active.cached_of_file("a") == pytest.approx(2 * GB / 3)
        assert mm.evict(1 * GB) == pytest.approx(1 * GB / 3)
        # Two thirds of the file survive the eviction (rebalanced between
        # the lists), and the structural invariant still holds.
        assert mm.cached_amount("a") == pytest.approx(2 * GB / 3)
        assert (
            mm.lists.active.size <= 2 * mm.lists.inactive.size + 1e-6
        )

    def test_active_list_evicted_when_enabled(self, env, runner):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        mm = MemoryManager(
            env, memory,
            PageCacheConfig(periodic_flushing=False, evict_from_active=True),
        )
        mm.add_to_cache("a", 1 * GB, disk)
        runner(env, mm.read_from_cache("a", 1 * GB))
        assert mm.evict(1 * GB) == pytest.approx(1 * GB)

    def test_protected_written_files_not_evicted(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        mm = MemoryManager(
            env, memory,
            PageCacheConfig(periodic_flushing=False, protect_written_files=True),
        )
        mm.add_to_cache("hot", 1 * GB, disk)
        mm.mark_file_being_written("hot")
        assert mm.evict(1 * GB) == 0.0
        mm.unmark_file_being_written("hot")
        assert mm.evict(1 * GB) == pytest.approx(1 * GB)

    def test_evicted_bytes_statistic(self, setup):
        _, mm, disk = setup
        mm.add_to_cache("a", 1 * GB, disk)
        mm.evict(0.5 * GB)
        assert mm.stats.evicted_bytes == pytest.approx(0.5 * GB)
        assert mm.stats.evict_ops == 1


class TestFlushing:
    def test_flush_writes_dirty_data_to_disk(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 1 * GB, disk))
        start = env.now
        flushed = runner(env, mm.flush(1 * GB))
        assert flushed == pytest.approx(1 * GB)
        assert mm.dirty == 0
        assert mm.cached == 1 * GB  # data stays cached, now clean
        # 1 GB at 100 MBps disk write.
        assert env.now - start == pytest.approx(10.0)
        assert disk.bytes_written == pytest.approx(1 * GB)
        mm.assert_consistent()

    def test_flush_is_bounded_by_dirty_data(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 1 * GB, disk))
        flushed = runner(env, mm.flush(5 * GB))
        assert flushed == pytest.approx(1 * GB)

    def test_partial_flush_splits_block(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 2 * GB, disk))
        flushed = runner(env, mm.flush(0.5 * GB))
        assert flushed == pytest.approx(0.5 * GB)
        assert mm.dirty == pytest.approx(1.5 * GB)
        assert mm.cached == pytest.approx(2 * GB)
        mm.assert_consistent()

    def test_flush_excludes_file(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("keep", 1 * GB, disk))
        runner(env, mm.write_to_cache("flushme", 1 * GB, disk))
        flushed = runner(env, mm.flush(2 * GB, exclude_file="keep"))
        assert flushed == pytest.approx(1 * GB)
        assert mm.dirty == pytest.approx(1 * GB)

    def test_flush_lru_order(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("old", 1 * GB, disk))
        runner(env, mm.write_to_cache("new", 1 * GB, disk))
        runner(env, mm.flush(1 * GB))
        # The oldest dirty block must have been flushed first.
        assert mm.lists.inactive.dirty_blocks()[0].filename == "new"

    def test_flush_zero_or_negative_amount(self, setup, runner):
        env, mm, _ = setup
        assert runner(env, mm.flush(0)) == 0.0
        assert runner(env, mm.flush(-1 * GB)) == 0.0

    def test_flush_with_no_dirty_data(self, setup, runner):
        env, mm, _ = setup
        assert runner(env, mm.flush(1 * GB)) == 0.0

    def test_flushed_bytes_statistic(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 1 * GB, disk))
        runner(env, mm.flush(1 * GB))
        assert mm.stats.flushed_bytes == pytest.approx(1 * GB)
        assert mm.stats.flush_ops == 1


class TestCacheReads:
    def test_read_promotes_clean_block_to_active(self, setup, runner):
        env, mm, disk = setup
        mm.add_to_cache("f", 1 * GB, disk)
        served = runner(env, mm.read_from_cache("f", 1 * GB))
        assert served == pytest.approx(1 * GB)
        # The whole file stays cached; balancing keeps two thirds active.
        assert mm.cached_amount("f") == pytest.approx(1 * GB)
        assert mm.lists.active.cached_of_file("f") == pytest.approx(2 * GB / 3)
        assert mm.lists.inactive.cached_of_file("f") == pytest.approx(1 * GB / 3)
        assert env.now == pytest.approx(1.0)  # 1 GB at 1000 MBps memory
        assert mm.stats.cache_hit_bytes == pytest.approx(1 * GB)

    def test_read_merges_clean_blocks(self, setup, runner):
        env, mm, disk = setup
        mm.add_to_cache("f", 0.5 * GB, disk)
        mm.add_to_cache("f", 0.5 * GB, disk)
        runner(env, mm.read_from_cache("f", 1 * GB))
        # The two clean blocks are merged into a single re-accessed block
        # (which balancing may split once between the two lists).
        active_blocks = mm.lists.active.blocks_of_file("f")
        inactive_blocks = mm.lists.inactive.blocks_of_file("f")
        assert len(active_blocks) == 1
        assert len(active_blocks) + len(inactive_blocks) <= 2
        assert mm.cached_amount("f") == pytest.approx(1 * GB)

    def test_read_moves_dirty_blocks_individually(self, setup, runner):
        env, mm, disk = setup
        runner(env, mm.write_to_cache("f", 0.5 * GB, disk))
        runner(env, mm.write_to_cache("f", 0.5 * GB, disk))
        runner(env, mm.read_from_cache("f", 1 * GB))
        # Dirty blocks are not merged: they keep their identity (and entry
        # time) when promoted, so the file still spans several dirty blocks.
        all_blocks = (
            mm.lists.active.blocks_of_file("f") + mm.lists.inactive.blocks_of_file("f")
        )
        assert len(all_blocks) >= 2
        assert all(block.dirty for block in all_blocks)
        assert mm.dirty == pytest.approx(1 * GB)

    def test_partial_block_read_splits(self, setup, runner):
        env, mm, disk = setup
        mm.add_to_cache("f", 1 * GB, disk)
        served = runner(env, mm.read_from_cache("f", 0.25 * GB))
        assert served == pytest.approx(0.25 * GB)
        assert mm.lists.active.cached_of_file("f") == pytest.approx(0.25 * GB)
        assert mm.lists.inactive.cached_of_file("f") == pytest.approx(0.75 * GB)
        assert mm.cached == pytest.approx(1 * GB)

    def test_read_bounded_by_cached_amount(self, setup, runner):
        env, mm, disk = setup
        mm.add_to_cache("f", 0.5 * GB, disk)
        served = runner(env, mm.read_from_cache("f", 2 * GB))
        assert served == pytest.approx(0.5 * GB)

    def test_read_of_uncached_file_serves_nothing(self, setup, runner):
        env, mm, _ = setup
        assert runner(env, mm.read_from_cache("missing", 1 * GB)) == 0.0

    def test_zero_read(self, setup, runner):
        env, mm, _ = setup
        assert runner(env, mm.read_from_cache("f", 0)) == 0.0


class TestPeriodicFlushing:
    def test_expired_dirty_blocks_are_flushed_in_background(self, env, runner):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        config = PageCacheConfig(dirty_expire=10.0, writeback_interval=2.0)
        mm = MemoryManager(env, memory, config)

        def scenario(env):
            yield from mm.write_to_cache("f", 1 * GB, disk)
            # Wait past the expiration time plus one flusher period.
            yield env.timeout(20.0)
            return mm.dirty

        process = env.process(scenario(env))
        dirty_after = env.run(until=process)
        mm.stop()
        assert dirty_after == 0.0
        assert mm.stats.background_flushed_bytes == pytest.approx(1 * GB)
        assert disk.bytes_written == pytest.approx(1 * GB)

    def test_unexpired_blocks_stay_dirty(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        config = PageCacheConfig(dirty_expire=1000.0, writeback_interval=2.0)
        mm = MemoryManager(env, memory, config)

        def scenario(env):
            yield from mm.write_to_cache("f", 1 * GB, disk)
            yield env.timeout(20.0)
            return mm.dirty

        process = env.process(scenario(env))
        dirty_after = env.run(until=process)
        mm.stop()
        assert dirty_after == pytest.approx(1 * GB)

    def test_expired_blocks_listing(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        mm = MemoryManager(env, memory, PageCacheConfig(periodic_flushing=False,
                                                        dirty_expire=5.0))
        mm.add_to_cache("clean", 1 * GB, disk)
        dirty_block = mm.add_to_cache("dirty", 1 * GB, disk, dirty=True)
        env.timeout(10.0)
        env.run()
        assert mm.expired_blocks() == [dirty_block]
