"""Property-based tests for the fair-sharing flow model and units."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.platform.flows import FairShareChannel
from repro.units import format_size, parse_size


@settings(max_examples=50, deadline=None)
@given(
    bandwidth=st.floats(min_value=1.0, max_value=1e10),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e10), min_size=1, max_size=8),
)
def test_simultaneous_flows_complete_at_total_work_over_bandwidth(bandwidth, amounts):
    """With all flows starting at t=0, the channel is always busy, so the
    last completion happens exactly at total_work / bandwidth."""
    env = Environment()
    channel = FairShareChannel(env, bandwidth)
    completions = []

    def flow(amount):
        yield channel.transfer(amount)
        completions.append(env.now)

    for amount in amounts:
        env.process(flow(amount))
    env.run()

    assert len(completions) == len(amounts)
    expected_last = sum(amounts) / bandwidth
    assert max(completions) == pytest.approx(expected_last, rel=1e-6)
    assert channel.total_transferred == pytest.approx(sum(amounts), rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    bandwidth=st.floats(min_value=1.0, max_value=1e9),
    amounts=st.lists(st.floats(min_value=1.0, max_value=1e9), min_size=1, max_size=6),
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=6),
)
def test_fair_sharing_bounds(bandwidth, amounts, delays):
    """Every flow takes at least its solo time and at most the time it would
    take if the channel processed all flows one after the other."""
    env = Environment()
    channel = FairShareChannel(env, bandwidth)
    durations = {}
    pairs = list(zip(amounts, delays[: len(amounts)] + [0.0] * len(amounts)))

    def flow(index, amount, delay):
        yield env.timeout(delay)
        elapsed = yield channel.transfer(amount)
        durations[index] = elapsed

    for index, (amount, delay) in enumerate(pairs):
        env.process(flow(index, amount, delay))
    env.run()

    total_work_time = sum(amount for amount, _ in pairs) / bandwidth
    for index, (amount, _) in enumerate(pairs):
        solo_time = amount / bandwidth
        assert durations[index] >= solo_time - 1e-6
        assert durations[index] <= total_work_time + 1e-6


@settings(max_examples=50, deadline=None)
@given(amount=st.floats(min_value=0.0, max_value=1e12))
def test_no_sharing_mode_is_always_solo_time(amount):
    env = Environment()
    channel = FairShareChannel(env, 1e6, sharing=False)

    def flow():
        elapsed = yield channel.transfer(amount)
        return elapsed

    other = env.process(flow())
    process = env.process(flow())
    env.run()
    assert process.value == pytest.approx(amount / 1e6, abs=1e-9)
    assert other.value == pytest.approx(amount / 1e6, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(value=st.floats(min_value=0.0, max_value=1e15))
def test_format_parse_size_roundtrip(value):
    formatted = format_size(value, precision=6)
    parsed = parse_size(formatted)
    assert parsed == pytest.approx(value, rel=1e-3, abs=1.0)
