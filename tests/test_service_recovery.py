"""End-to-end crash recovery of the supervised service.

The acceptance invariant of the service mode: a SIGKILLed worker is
restarted by the supervisor, resumes from its latest verified snapshot,
replays the durable submission log, loses **no acknowledged submission**
— and the drained canonical result is byte-identical to what an
uninterrupted run of the same submissions would have produced
(:func:`repro.service.replay_result` is the reference).  Backpressure is
exercised over real HTTP: beyond the queue bound the server answers 429
with a Retry-After header, never dropping the submission silently.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    ServiceConfig,
    SimulationService,
    SubmissionLog,
    Supervisor,
    canonical_result,
    make_server,
    replay_result,
)
from repro.snapshot import SimRecipe, SnapshotPlan
from repro.units import MB

SMALL_PARAMS = dict(
    n_nodes=2, cores_per_node=2, n_datasets=3,
    input_size=32 * MB, chunk_size=16 * MB,
)
SMALL_RECIPE = SimRecipe("service-cluster", dict(SMALL_PARAMS))


def http_json(method, url, body=None, headers=None, timeout=30.0):
    """One JSON request; returns ``(status, decoded-or-text)``."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    for key, value in (headers or {}).items():
        request.add_header(key, value)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            status, raw = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, raw = exc.code, exc.read()
        payload = json.loads(raw) if raw else {}
        payload["_headers"] = dict(exc.headers)
        return status, payload
    text = raw.decode("utf-8")
    try:
        return status, json.loads(text)
    except ValueError:
        return status, text


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met within the timeout")


# --------------------------------------------------------- kill -9 recovery
class TestSupervisorRecovery:
    def test_sigkill_recovery_is_byte_identical(self, tmp_path):
        data_dir = tmp_path / "svc"
        config = ServiceConfig(
            data_dir=data_dir,
            recipe=SMALL_RECIPE,
            port=0,
            snapshot_plan=SnapshotPlan.fixed(0.5, keep=3),
            queue_capacity=16,
        )
        supervisor = Supervisor(config, max_restarts=3,
                                backoff=0.05).start()
        try:
            port = supervisor.port()
            base = f"http://127.0.0.1:{port}"
            status, health = http_json("GET", f"{base}/healthz")
            assert status == 200 and health["status"] == "ok"

            # Three acknowledged submissions, each with a token.
            acks = {}
            for i in range(3):
                status, ack = http_json("POST", f"{base}/jobs", {
                    "label": f"job{i}", "dataset": i % 3,
                    "runtime": 1.0 + 0.5 * i, "token": f"tok-{i}",
                })
                assert status == 201, ack
                acks[f"tok-{i}"] = ack

            # Let the worker advance into the jobs, then kill -9 it.
            wait_until(lambda: http_json(
                "GET", f"{base}/metrics")[1]["sim"]["now"] > 0.5)
            killed_pid = supervisor.kill_worker()

            # The supervisor restarts the worker; it recovers from the
            # data dir and publishes a fresh port.
            def recovered_port():
                if not supervisor.alive:
                    return None
                try:
                    port = supervisor.port(timeout=0.1)
                except Exception:
                    return None
                if supervisor.pid == killed_pid:
                    return None
                try:
                    status, health = http_json(
                        "GET", f"http://127.0.0.1:{port}/healthz",
                        timeout=2.0)
                except Exception:
                    return None
                return port if status == 200 else None

            port = wait_until(recovered_port)
            base = f"http://127.0.0.1:{port}"
            assert supervisor.restarts >= 1

            # An acknowledged pre-crash token is still known: the retry
            # is answered as a duplicate, not logged twice.
            status, again = http_json("POST", f"{base}/jobs", {
                "label": "job0", "dataset": 0, "runtime": 1.0,
                "token": "tok-0",
            })
            assert status == 200, again
            assert again["duplicate"] is True
            assert again["seq"] == acks["tok-0"]["seq"]

            # The service keeps accepting new work after recovery.
            for i in range(3, 5):
                status, ack = http_json("POST", f"{base}/jobs", {
                    "label": f"job{i}", "dataset": i % 3, "runtime": 1.0,
                })
                assert status == 201, ack

            status, summary = http_json("POST", f"{base}/drain", {})
            assert status == 200, summary
            assert summary["jobs_submitted"] == 5
            assert summary["jobs_completed"] == 5

            # Clean exit ends supervision.
            assert supervisor.wait(timeout=30.0)
            assert not supervisor.gave_up
        finally:
            supervisor.stop(timeout=30.0)

        # No acknowledged submission was lost, and the recovered run is
        # byte-identical to an uninterrupted replay of the log.
        log = SubmissionLog(data_dir / "submissions.log")
        entries = log.entries()
        assert sum(1 for e in entries if e.op == "submit") == 5
        reference = canonical_result(replay_result(SMALL_RECIPE, entries))
        on_disk = (data_dir / "result.json").read_text("utf-8")
        assert on_disk == reference

    def test_graceful_stop_exits_zero(self, tmp_path):
        config = ServiceConfig(
            data_dir=tmp_path / "svc",
            recipe=SMALL_RECIPE,
            port=0,
            snapshot_plan=None,
        )
        supervisor = Supervisor(config, backoff=0.05).start()
        port = supervisor.port()
        status, ack = http_json(
            "POST", f"http://127.0.0.1:{port}/jobs",
            {"dataset": 0, "runtime": 0.5})
        assert status == 201, ack
        assert supervisor.stop(timeout=30.0) == 0
        assert supervisor.restarts == 0


# --------------------------------------------------------- http contract
class TestHTTPContract:
    """The HTTP surface against an in-process server."""

    @pytest.fixture
    def server(self, tmp_path):
        service = SimulationService(tmp_path / "svc", recipe=SMALL_RECIPE,
                                    queue_capacity=2)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield service, f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()

    def test_backpressure_is_429_with_retry_after(self, server):
        service, base = server
        # The worker is deliberately not started: nothing drains the
        # queue, so filling it to capacity forces the bound.
        for i in range(2):
            assert service.queue.offer((None, {"dataset": 0,
                                               "runtime": 1.0}, None))
        status, payload = http_json("POST", f"{base}/jobs",
                                    {"dataset": 0, "runtime": 1.0})
        assert status == 429
        assert payload["retry_after"] >= 1.0
        retry_after = {k.lower(): v for k, v in
                       payload["_headers"].items()}["retry-after"]
        assert float(retry_after) >= 1.0
        # Rejected explicitly, not silently dropped: the queue still
        # holds exactly the accepted submissions.
        assert len(service.queue) == 2
        assert service.queue.n_rejected == 1

    def test_not_ready_and_unknown_routes(self, server):
        _service, base = server
        assert http_json("GET", f"{base}/readyz")[0] == 503
        assert http_json("GET", f"{base}/result")[0] == 404
        assert http_json("GET", f"{base}/summary")[0] == 404
        assert http_json("GET", f"{base}/jobs/nope")[0] == 404
        assert http_json("GET", f"{base}/bogus")[0] == 404
        assert http_json("POST", f"{base}/bogus")[0] == 404

    def test_full_lifecycle_over_http(self, tmp_path):
        service = SimulationService(tmp_path / "svc",
                                    recipe=SMALL_RECIPE).start()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            assert http_json("GET", f"{base}/readyz")[0] == 200
            # Spec validation happens in the worker; the client still
            # gets a crisp 400 for an impossible spec, unlogged.
            status, payload = http_json("POST", f"{base}/jobs",
                                        {"dataset": 99, "runtime": 1.0})
            assert status == 400
            assert "out of range" in payload["error"]

            status, ack = http_json(
                "POST", f"{base}/jobs",
                {"label": "only", "dataset": 1, "runtime": 0.5},
                headers={"Idempotency-Key": "header-token"})
            assert status == 201
            # The Idempotency-Key header works like a body token.
            status, again = http_json(
                "POST", f"{base}/jobs",
                {"label": "only", "dataset": 1, "runtime": 0.5},
                headers={"Idempotency-Key": "header-token"})
            assert status == 200 and again["duplicate"] is True

            status, job = http_json("GET", f"{base}/jobs/only")
            assert status == 200 and job["label"] == "only"

            status, summary = http_json("POST", f"{base}/drain", {})
            assert status == 200 and summary["jobs_completed"] == 1

            # Fetch /result raw: the byte-identity claim is about the
            # exact canonical text, not a decoded equivalent.
            with urllib.request.urlopen(f"{base}/result",
                                        timeout=30.0) as response:
                assert response.status == 200
                text = response.read().decode("utf-8")
            entries = service.log.entries()
            assert text == canonical_result(
                replay_result(SMALL_RECIPE, entries))
            assert http_json("GET", f"{base}/healthz")[1]["status"] == \
                "drained"
        finally:
            server.shutdown()
