"""Unit tests of the SWF trace parser/writer and its scaling knobs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.arrivals import TraceArrivalProcess
from repro.scheduler.swf import (
    SWF_FIELDS,
    SWFRecord,
    SWFTrace,
    dump_swf,
    load_swf,
    parse_swf,
    save_swf,
)

SAMPLE = """\
; Version: 2.2
; Computer: test-cluster
; MaxProcs: 16
; Note: synthetic fixture
1 0 -1 100 4 -1 -1 4 120 -1 1 1 1 2 0 1 -1 -1
2 10 -1 50 8 -1 -1 8 60 -1 1 2 1 3 1 1 -1 -1
3 30 -1 200 16 -1 -1 16 240 -1 1 1 1 2 2 1 -1 -1
"""


class TestParsing:
    def test_parses_directives_and_records(self):
        trace = parse_swf(SAMPLE)
        assert trace.directives["Version"] == "2.2"
        assert trace.directives["Computer"] == "test-cluster"
        assert trace.n_jobs == 3
        assert trace.max_procs == 16
        first = trace.records[0]
        assert first.job_id == 1
        assert first.run_time == 100.0
        assert first.requested_procs == 4
        assert first.queue == 0
        assert first.think_time == -1.0

    def test_all_18_fields_mapped(self):
        tokens = [str(i) for i in range(1, 19)]
        record = SWFRecord.from_tokens(tokens)
        for index, name in enumerate(SWF_FIELDS, start=1):
            assert getattr(record, name) == index

    def test_malformed_lines_are_tolerated_and_counted(self):
        text = SAMPLE + "\n".join(
            [
                "garbage line",                      # non-numeric
                "1 2 3",                             # too few fields
                "1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19",  # too many
                "1 0 -1 1.5x 4 -1 -1 4 1 -1 1 1 1 1 0 1 -1 -1",      # bad number
                "1 0 -1 100 4.5 -1 -1 4 1 -1 1 1 1 1 0 1 -1 -1",     # frac procs
            ]
        )
        trace = parse_swf(text)
        assert trace.n_jobs == 3
        assert len(trace.skipped) == 5
        # Line numbers and reasons are reported for diagnostics.
        assert all(isinstance(line, int) and reason for line, reason in trace.skipped)

    def test_plain_comments_and_blank_lines_ignored(self):
        trace = parse_swf("; just a comment without colon-value\n\n" + SAMPLE)
        assert trace.n_jobs == 3

    def test_max_procs_falls_back_to_records(self):
        trace = parse_swf(
            "1 0 -1 10 4 -1 -1 4 20 -1 1 1 1 1 0 1 -1 -1\n"
            "2 5 -1 10 6 -1 -1 6 20 -1 1 1 1 1 0 1 -1 -1\n"
        )
        assert trace.max_procs == 6


class TestRoundTrip:
    def test_parse_write_parse_is_identity(self):
        trace = parse_swf(SAMPLE)
        again = parse_swf(dump_swf(trace))
        assert again.directives == trace.directives
        assert again.records == trace.records
        assert again.skipped == []

    def test_fractional_times_survive_round_trip(self):
        record = SWFRecord(
            job_id=7, submit_time=1.25, run_time=3.5, used_procs=2,
            requested_procs=2, requested_time=4.75, status=1,
        )
        trace = SWFTrace(directives={"Version": "2.2"}, records=[record])
        again = parse_swf(dump_swf(trace))
        assert again.records == [record]

    def test_repeated_directives_survive_round_trip(self):
        text = (
            "; Queues: 2\n"
            "; Queue: 0 batch\n"
            "; Queue: 1 interactive\n"
            "1 0 -1 10 2 -1 -1 2 20 -1 1 1 1 1 0 1 -1 -1\n"
        )
        trace = parse_swf(text)
        # The lookup dict keeps the first value; the full header keeps all.
        assert trace.directives["Queue"] == "0 batch"
        assert trace.header == [
            ("Queues", "2"), ("Queue", "0 batch"), ("Queue", "1 interactive"),
        ]
        dumped = dump_swf(trace)
        assert "; Queue: 0 batch" in dumped
        assert "; Queue: 1 interactive" in dumped
        assert parse_swf(dumped).header == trace.header
        # Writing is idempotent once parsed.
        assert dump_swf(parse_swf(dumped)) == dumped

    def test_save_and_load(self, tmp_path):
        trace = parse_swf(SAMPLE)
        path = tmp_path / "trace.swf"
        save_swf(trace, path)
        loaded = load_swf(path)
        assert loaded.records == trace.records
        assert loaded.directives == trace.directives

    def test_bundled_sample_trace_round_trips(self):
        from repro.experiments.exp7_trace_replay import default_trace_path

        trace = load_swf(default_trace_path())
        assert trace.n_jobs >= 50
        assert trace.skipped == []
        again = parse_swf(dump_swf(trace))
        assert again.records == trace.records
        assert again.directives == trace.directives
        # The sample uses one Queue directive per queue; all survive.
        assert again.header == trace.header
        assert sum(1 for key, _ in trace.header if key == "Queue") == 3


class TestScaling:
    def test_specs_rebase_arrivals_and_keep_order(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs()
        assert [spec.arrival_time for spec in specs] == [0.0, 10.0, 30.0]
        assert [spec.job_id for spec in specs] == [1, 2, 3]

    def test_load_factor_compresses_interarrivals(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs(load_factor=2.0)
        assert [spec.arrival_time for spec in specs] == [0.0, 5.0, 15.0]

    def test_runtime_scale_applies_to_runtime_and_estimate(self):
        trace = parse_swf(SAMPLE)
        spec = trace.job_specs(runtime_scale=0.1)[0]
        assert spec.runtime == pytest.approx(10.0)
        assert spec.estimated_runtime == pytest.approx(12.0)

    def test_core_rescaling_fits_largest_node(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs(max_cores=4)
        # 4/16 -> 1, 8/16 -> 2, 16/16 -> 4.
        assert [spec.cores for spec in specs] == [1, 2, 4]
        assert max(spec.cores for spec in specs) == 4

    def test_core_rescaling_keeps_at_least_one_core(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs(max_cores=2)
        assert all(spec.cores >= 1 for spec in specs)
        assert max(spec.cores for spec in specs) == 2

    def test_max_jobs_truncates_in_submit_order(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs(max_jobs=2)
        assert [spec.job_id for spec in specs] == [1, 2]

    def test_priority_defaults_to_queue_number(self):
        trace = parse_swf(SAMPLE)
        assert [spec.priority for spec in trace.job_specs()] == [0, 1, 2]

    def test_priority_of_override(self):
        trace = parse_swf(SAMPLE)
        specs = trace.job_specs(priority_of=lambda record: record.user_id)
        assert [spec.priority for spec in specs] == [1, 2, 1]

    def test_zero_runtime_jobs_filtered(self):
        text = SAMPLE + "9 40 -1 0 4 -1 -1 4 1 -1 0 1 1 1 0 1 -1 -1\n"
        trace = parse_swf(text)
        assert trace.n_jobs == 4
        assert len(trace.job_specs()) == 3

    def test_invalid_knobs_rejected(self):
        trace = parse_swf(SAMPLE)
        with pytest.raises(ConfigurationError):
            trace.job_specs(load_factor=0.0)
        with pytest.raises(ConfigurationError):
            trace.job_specs(runtime_scale=-1.0)
        with pytest.raises(ConfigurationError):
            trace.job_specs(max_cores=0)

    def test_feeds_trace_arrival_process(self):
        trace = parse_swf(SAMPLE)
        arrivals = trace.arrival_process(load_factor=2.0)
        assert isinstance(arrivals, TraceArrivalProcess)
        assert arrivals.generate(3) == [0.0, 5.0, 15.0]
