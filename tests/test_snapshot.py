"""Tests of the snapshot subsystem: capture, files, plans, restore parity.

Unit tests pin the canonical encoder, the Young/Daly interval math and
the snapshot file format; integration tests exercise the tentpole
invariant — a run snapshotted at ``t=T`` and restored in a fresh
simulation produces results byte-identical to the uninterrupted run — on
the exp2/exp6/exp7 golden workloads, plus checkpointed execution and
crash-style resume.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import (
    ConfigurationError,
    SnapshotError,
    SnapshotIntegrityError,
)
from repro.experiments.exp2_concurrent import build_exp2, finish_exp2, run_exp2
from repro.experiments.exp6_cluster import build_exp6, finish_exp6, run_exp6
from repro.experiments.exp7_trace_replay import build_exp7, finish_exp7, run_exp7
from repro.faults.plan import FaultPlan, NodeFaultSpec
from repro.snapshot import (
    SimRecipe,
    SnapshotPlan,
    build_from_recipe,
    canonical_json,
    capture_state,
    daly_interval,
    effective_mtbf,
    fingerprint,
    latest_snapshot,
    read_snapshot_doc,
    restore_simulation,
    resume_checkpointed,
    run_checkpointed,
    to_jsonable,
    write_snapshot,
    young_interval,
)
from repro.units import GB


def canon(point) -> str:
    """Canonical encoding of a point dataclass, nondeterminism excluded."""
    return canonical_json(point)


# ------------------------------------------------------------- canonical
class TestCanonical:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable("x") == "x"
        assert to_jsonable(1.5) == 1.5
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_nonfinite_floats_are_marked(self):
        assert to_jsonable(float("inf")) == {"__nonfinite__": "inf"}
        assert to_jsonable(float("nan")) == {"__nonfinite__": "nan"}

    def test_sets_are_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_nondeterministic_fields_dropped_at_depth(self):
        doc = {"a": {"wallclock_time": 1.0, "pid": 2, "keep": 3}}
        assert to_jsonable(doc) == {"a": {"keep": 3}}

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_fingerprint_is_stable(self):
        assert fingerprint({"x": 1}) == fingerprint({"x": 1})
        assert fingerprint({"x": 1}) != fingerprint({"x": 2})


# ------------------------------------------------------------ plan math
class TestIntervals:
    def test_young_formula(self):
        assert young_interval(1.0, 50.0) == pytest.approx(math.sqrt(100.0))

    def test_daly_reduces_to_young_for_small_cost(self):
        # delta/M -> 0: the Daly correction terms vanish.
        young = young_interval(1e-6, 1000.0)
        daly = daly_interval(1e-6, 1000.0)
        assert daly == pytest.approx(young, rel=1e-3)

    def test_daly_caps_at_mtbf_when_cost_dominates(self):
        assert daly_interval(100.0, 10.0) == 10.0

    def test_daly_known_value(self):
        # delta=1, M=60: tau = sqrt(120)*(1 + sqrt(1/120)/3 + (1/120)/9) - 1
        ratio = 1.0 / 120.0
        expected = math.sqrt(120.0) * (
            1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0
        ) - 1.0
        assert daly_interval(1.0, 60.0) == pytest.approx(expected)

    @pytest.mark.parametrize("cost,mtbf", [(0.0, 10.0), (1.0, 0.0),
                                           (-1.0, 10.0), (1.0, -5.0)])
    def test_validation(self, cost, mtbf):
        with pytest.raises(ConfigurationError):
            young_interval(cost, mtbf)

    def test_effective_mtbf_superposes_rates(self):
        plan = FaultPlan(node_faults=[NodeFaultSpec(node="*", mtbf=60.0)])
        nodes = [f"node{i}" for i in range(4)]
        assert effective_mtbf(plan, nodes) == pytest.approx(15.0)

    def test_effective_mtbf_skips_capped_streams(self):
        plan = FaultPlan(node_faults=[
            NodeFaultSpec(node="node1", mtbf=30.0, max_failures=0),
            NodeFaultSpec(node="node2", mtbf=60.0),
        ])
        assert effective_mtbf(plan, ["node1", "node2"]) == pytest.approx(60.0)

    def test_effective_mtbf_infinite_without_crashes(self):
        assert math.isinf(effective_mtbf(FaultPlan(), ["node1"]))


class TestSnapshotPlan:
    def test_fixed(self):
        plan = SnapshotPlan.fixed(5.0, keep=3)
        assert plan.interval == 5.0 and plan.keep == 3 and plan.rule == "fixed"

    def test_daly_from_fault_plan(self):
        fault_plan = FaultPlan(
            seed=7, node_faults=[NodeFaultSpec(node="*", mtbf=60.0)]
        )
        nodes = [f"node{i}" for i in range(4)]
        plan = SnapshotPlan.from_fault_plan(fault_plan, nodes,
                                            checkpoint_cost=1.0)
        assert plan.rule == "daly"
        assert plan.mtbf == pytest.approx(15.0)
        assert plan.interval == pytest.approx(daly_interval(1.0, 15.0))

    def test_from_fault_plan_rejects_crash_free_plans(self):
        with pytest.raises(ConfigurationError):
            SnapshotPlan.from_fault_plan(FaultPlan(), ["node1"])

    def test_boundaries(self):
        plan = SnapshotPlan.fixed(2.0)
        it = plan.boundaries()
        assert [next(it) for _ in range(3)] == [2.0, 4.0, 6.0]

    @pytest.mark.parametrize("kwargs", [dict(interval=0.0),
                                        dict(interval=-1.0),
                                        dict(interval=1.0, keep=0)])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SnapshotPlan(**kwargs)


# ------------------------------------------------------- stepped running
class TestStepUntil:
    def test_stepping_matches_plain_run(self):
        """A run advanced in segments finishes with identical results."""
        plain = run_exp6("cache", n_jobs=30)
        sim = build_exp6("cache", n_jobs=30)
        t = 0.0
        while not sim.completed:
            t += 3.0
            sim.step_until(t)
            if t > 10_000:  # pragma: no cover - runaway guard
                pytest.fail("simulation did not complete")
        stepped = finish_exp6(sim.run(), "cache", n_jobs=30)
        assert canon(stepped) == canon(plain)

    def test_stepped_capture_matches_plain_capture(self):
        """Same events processed => byte-identical capture at time T."""
        a = build_exp6("cache", n_jobs=30)
        a.step_until(4.0)
        a.step_until(8.0)
        b = build_exp6("cache", n_jobs=30)
        b.step_until(8.0)
        assert fingerprint(capture_state(a)) == fingerprint(capture_state(b))

    def test_step_into_the_past_rejected(self):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(5.0)
        with pytest.raises(ConfigurationError):
            sim.step_until(1.0)


# ---------------------------------------------------------- file format
class TestSnapshotFile:
    def test_write_is_byte_deterministic(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(6.0)
        p1 = write_snapshot(sim, tmp_path / "a.json")
        p2 = write_snapshot(sim, tmp_path / "b.json")
        assert p1.read_bytes() == p2.read_bytes()

    def test_header_fields(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(6.0)
        doc = read_snapshot_doc(write_snapshot(sim, tmp_path / "s.json"))
        assert doc["format"] == "repro-snapshot"
        assert doc["version"] == 1
        assert doc["experiment"] == "exp6"
        assert doc["t"] == sim.env.now
        assert doc["fingerprint"] == fingerprint(doc["state"])

    def test_unstarted_simulation_rejected(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        with pytest.raises(SnapshotError):
            write_snapshot(sim, tmp_path / "s.json")

    def test_unbound_simulation_rejected(self, tmp_path):
        from repro.simulator.simulation import Simulation

        sim = Simulation()
        with pytest.raises(SnapshotError):
            write_snapshot(sim, tmp_path / "s.json")

    def test_garbage_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(SnapshotError):
            read_snapshot_doc(bad)
        bad.write_text("not json at all")
        with pytest.raises(SnapshotError):
            read_snapshot_doc(bad)

    def test_wrong_version_rejected(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(6.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        doc = json.loads(path.read_text())
        doc["version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError):
            read_snapshot_doc(path)

    def test_tampered_state_fails_integrity_check(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(6.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        doc = json.loads(path.read_text())
        doc["fingerprint"] = "0" * 64
        path.write_text(json.dumps(doc))
        with pytest.raises(SnapshotIntegrityError):
            restore_simulation(path)

    def test_verify_false_skips_integrity_check(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(6.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        doc = json.loads(path.read_text())
        doc["fingerprint"] = "0" * 64
        path.write_text(json.dumps(doc))
        restored = restore_simulation(path, verify=False)
        assert restored.env.now == sim.env.now
        assert not restored.completed


# ------------------------------------------------------- restore parity
class TestRestoreParity:
    """The tentpole invariant, on the parity suite's golden workloads."""

    def test_exp6_resume_parity(self, tmp_path):
        plain = run_exp6("cache", n_jobs=40)
        sim = build_exp6("cache", n_jobs=40)
        sim.step_until(8.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        restored = restore_simulation(path)
        resumed = finish_exp6(restored.run(), "cache", n_jobs=40)
        assert canon(resumed) == canon(plain)

    def test_exp2_resume_parity(self, tmp_path):
        plain = run_exp2("wrench-cache", 4, input_size=3 * GB)
        sim = build_exp2("wrench-cache", 4, input_size=3 * GB)
        sim.step_until(20.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        resumed = finish_exp2(restore_simulation(path).run(),
                              "wrench-cache", 4, input_size=3 * GB)
        assert canon(resumed) == canon(plain)

    def test_exp7_resume_parity(self, tmp_path):
        kwargs = dict(placement="cache", load_factor=40.0)
        plain = run_exp7("preemptive-priority", **kwargs)
        sim = build_exp7("preemptive-priority", **kwargs)
        sim.step_until(10.0)
        path = write_snapshot(sim, tmp_path / "s.json")
        resumed = finish_exp7(restore_simulation(path).run(),
                              "preemptive-priority", **kwargs)
        assert canon(resumed) == canon(plain)

    def test_restore_is_paused_at_snapshot_time(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        sim.step_until(7.0)
        t = sim.env.now
        path = write_snapshot(sim, tmp_path / "s.json")
        restored = restore_simulation(path)
        assert restored.env.now == t
        assert not restored.completed


# ------------------------------------------------------------- recipes
class TestRecipes:
    def test_build_from_recipe_round_trip(self):
        recipe = SimRecipe("exp6", dict(placement="cache", n_jobs=30))
        sim = build_from_recipe(recipe)
        assert sim.recipe is not None
        assert sim.recipe.experiment == "exp6"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SnapshotError):
            build_from_recipe(SimRecipe("exp99", {}))

    def test_fault_plan_encodes_and_decodes(self):
        plan = FaultPlan(seed=3, node_faults=[NodeFaultSpec(node="*",
                                                            mtbf=60.0)])
        recipe = SimRecipe("exp6", dict(fault_plan=plan, n_jobs=30))
        doc = recipe.encoded()
        assert "__fault_plan__" in doc["params"]["fault_plan"]
        back = SimRecipe.decode(doc)
        assert isinstance(back.params["fault_plan"], FaultPlan)
        assert back.params["fault_plan"].seed == 3
        assert back.params["fault_plan"].node_faults[0].mtbf == 60.0

    def test_in_memory_trace_gets_no_recipe(self):
        from repro.experiments.exp7_trace_replay import default_trace_path
        from repro.scheduler.swf import load_swf

        trace = load_swf(default_trace_path())
        sim = build_exp7("fifo", trace=trace)
        assert sim.recipe is None


# ------------------------------------------------- checkpointed running
class TestCheckpointedRun:
    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        plain = run_exp6("cache", n_jobs=30)
        sim = build_exp6("cache", n_jobs=30)
        result, paths = run_checkpointed(sim, SnapshotPlan.fixed(5.0),
                                         tmp_path)
        point = finish_exp6(result, "cache", n_jobs=30)
        assert canon(point) == canon(plain)
        assert paths, "expected at least one snapshot on disk"
        assert all(p.exists() for p in paths)

    def test_keep_prunes_old_snapshots(self, tmp_path):
        sim = build_exp6("cache", n_jobs=30)
        _, paths = run_checkpointed(sim, SnapshotPlan.fixed(2.0, keep=2),
                                    tmp_path)
        on_disk = sorted(tmp_path.glob("snap-*.json"))
        assert len(on_disk) <= 2
        assert on_disk == sorted(paths)

    def test_resume_after_simulated_crash(self, tmp_path):
        """Kill a checkpointed run mid-flight; resume must match exactly."""
        plain = run_exp6("cache", n_jobs=30)
        plan = SnapshotPlan.fixed(4.0, keep=2)

        # "Crash": advance past two boundaries, snapshotting, then abandon
        # the simulation object entirely (its process state dies with it).
        crashed = build_exp6("cache", n_jobs=30)
        for boundary in (4.0, 8.0):
            crashed.step_until(boundary)
            if crashed.completed:
                break
            write_snapshot(crashed, latest_path := tmp_path /
                           f"snap-{int(boundary):08d}.json")
        assert latest_snapshot(tmp_path) == latest_path
        del crashed

        result, _ = resume_checkpointed(tmp_path, plan)
        resumed = finish_exp6(result, "cache", n_jobs=30)
        assert canon(resumed) == canon(plain)

    def test_resume_from_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            resume_checkpointed(tmp_path, SnapshotPlan.fixed(5.0))
