"""Integration tests of the cluster batch scheduler.

These tests drive the whole stack through the :class:`Simulation` facade:
platform, per-node storage services, page caches, scheduler policies and
placement strategies, and the scheduler metrics exposed on
:class:`SimulationResult`.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.filesystem.file import File
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.units import MB


def make_simulation(n_nodes: int = 2, cores_per_node: int = 4, *,
                    policy: str = "fifo",
                    placement: str = "round-robin") -> Simulation:
    simulation = Simulation(
        config=SimulationConfig(cache_mode="writeback", trace_interval=None)
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(policy=policy, placement=placement)
    return simulation


def io_job_workflow(label: str, dataset: File, *, cpu_time: float = 1.0,
                    output_size: float = 10 * MB) -> Workflow:
    workflow = Workflow(label)
    workflow.add_task(
        Task.from_cpu_time(
            "process", cpu_time, inputs=[dataset],
            outputs=[File(f"{label}_out", output_size)],
        )
    )
    return workflow


def compute_workflow(label: str, cpu_time: float) -> Workflow:
    workflow = Workflow(label)
    workflow.add_task(Task(f"{label}_t", flops=cpu_time * 1e9))
    return workflow


class TestFacadeWiring:
    def test_cluster_platform_positional_node_count(self):
        simulation = Simulation()
        platform = simulation.create_cluster_platform(3, with_nfs_server=False)
        assert sorted(platform.host_names()) == ["node1", "node2", "node3"]

    def test_cluster_platform_rejects_conflicting_counts(self):
        with pytest.raises(ConfigurationError):
            Simulation().create_cluster_platform(3, compute_nodes=2)

    def test_submit_job_requires_a_scheduler(self):
        simulation = Simulation()
        simulation.create_single_node_platform()
        with pytest.raises(ConfigurationError):
            simulation.submit_job(compute_workflow("job", 1.0))

    def test_stage_file_replicated_requires_a_scheduler(self):
        simulation = Simulation()
        simulation.create_single_node_platform()
        with pytest.raises(ConfigurationError):
            simulation.stage_file_replicated(File("f", 1 * MB))

    def test_scheduler_can_only_be_created_once(self):
        simulation = make_simulation()
        with pytest.raises(ConfigurationError):
            simulation.create_cluster_scheduler()

    def test_scheduler_excludes_the_nfs_server(self):
        simulation = Simulation()
        simulation.create_cluster_platform(2, with_nfs_server=True)
        scheduler = simulation.create_cluster_scheduler()
        assert sorted(node.name for node in scheduler.nodes) == ["node1", "node2"]

    def test_too_wide_job_is_rejected_at_submission(self):
        simulation = make_simulation(cores_per_node=4)
        with pytest.raises(SchedulingError):
            simulation.submit_job(compute_workflow("wide", 1.0), cores=8)

    def test_duplicate_job_labels_are_rejected(self):
        simulation = make_simulation()
        simulation.submit_job(compute_workflow("job", 1.0), label="job")
        with pytest.raises(SchedulingError):
            simulation.submit_job(compute_workflow("job", 1.0), label="job")

    def test_job_and_workflow_labels_must_not_collide(self):
        simulation = make_simulation()
        storage = simulation.scheduler.nodes[0].storage
        simulation.submit_workflow(compute_workflow("x", 1.0), host="node1",
                                   storage=storage, label="x")
        with pytest.raises(ConfigurationError):
            simulation.submit_job(compute_workflow("x", 1.0), label="x")

        other = make_simulation()
        other.submit_job(compute_workflow("y", 1.0), label="y")
        with pytest.raises(ConfigurationError):
            other.submit_workflow(compute_workflow("y", 1.0), host="node1",
                                  storage=other.scheduler.nodes[0].storage,
                                  label="y")

    def test_cross_node_access_to_local_storage_is_rejected(self):
        simulation = make_simulation(n_nodes=2)
        dataset = File("solo", 50 * MB)
        # Staged on node1 only: a job placed on node2 must fail loudly
        # instead of getting a silently free cross-node read.
        simulation.stage_file(dataset, simulation.scheduler.node("node1").storage)
        for index, _ in enumerate(simulation.scheduler.nodes):
            simulation.submit_job(
                io_job_workflow(f"job{index}", dataset), label=f"job{index}"
            )
        with pytest.raises(ConfigurationError, match="replicate the file"):
            simulation.run()

    def test_run_requires_some_work(self):
        simulation = make_simulation()
        with pytest.raises(ConfigurationError):
            simulation.run()


class TestClusterExecution:
    def test_all_jobs_complete_and_metrics_are_exposed(self):
        simulation = make_simulation(n_nodes=2, cores_per_node=4)
        datasets = [File(f"ds{d}", 200 * MB) for d in range(2)]
        for dataset in datasets:
            simulation.stage_file_replicated(dataset)
        for index in range(8):
            simulation.submit_job(
                io_job_workflow(f"job{index}", datasets[index % 2]),
                cores=2,
                arrival_time=0.5 * index,
                label=f"job{index}",
            )
        result = simulation.run()

        metrics = result.scheduler
        assert metrics is not None
        assert metrics.n_jobs == 8
        assert metrics.mean_wait_time >= 0.0
        assert metrics.max_wait_time >= metrics.mean_wait_time
        assert 0.0 < metrics.utilization <= 1.0
        assert metrics.throughput > 0.0
        assert metrics.mean_bounded_slowdown() >= 1.0
        assert sum(metrics.jobs_per_node.values()) == 8
        assert 0.0 <= result.read_cache_hit_ratio() <= 1.0
        # Per-job accounting is consistent.
        for record in metrics.records:
            assert record.arrival_time <= record.start_time <= record.end_time
        # The scheduler's executors feed the per-app makespans.
        assert set(result.app_makespans) == {f"job{index}" for index in range(8)}

    def test_core_reservations_are_never_exceeded(self):
        simulation = make_simulation(n_nodes=2, cores_per_node=4,
                                     placement="least-loaded")
        for index in range(10):
            simulation.submit_job(
                compute_workflow(f"job{index}", 2.0),
                cores=3,
                arrival_time=0.0,
                label=f"job{index}",
            )
        result = simulation.run()
        records = result.scheduler.records
        assert len(records) == 10
        # Replay the schedule: at any instant, the cores reserved on one
        # node must not exceed the node's core count (4).
        events = []
        for record in records:
            events.append((record.start_time, record.cores, record.node))
            events.append((record.end_time, -record.cores, record.node))
        usage = {}
        # Process releases before starts at equal times (back-to-back jobs).
        for time, delta, node in sorted(events, key=lambda e: (e[0], e[1])):
            usage[node] = usage.get(node, 0) + delta
            assert usage[node] <= 4, f"node {node} oversubscribed at t={time}"

    def test_jobs_wait_when_the_cluster_is_full(self):
        simulation = make_simulation(n_nodes=1, cores_per_node=4)
        # Two 4-core jobs: the second must wait for the first to finish.
        simulation.submit_job(compute_workflow("first", 5.0), cores=4,
                              arrival_time=0.0, label="first")
        simulation.submit_job(compute_workflow("second", 5.0), cores=4,
                              arrival_time=0.0, label="second")
        result = simulation.run()
        records = {r.label: r for r in result.scheduler.records}
        assert records["first"].start_time == pytest.approx(0.0)
        assert records["second"].start_time == pytest.approx(5.0)
        assert records["second"].wait_time == pytest.approx(5.0)

    def test_reserved_cores_bound_task_concurrency(self):
        def run(cores: int) -> float:
            simulation = make_simulation(n_nodes=1, cores_per_node=4)
            # Four independent 2-second tasks in one job.
            workflow = Workflow("job")
            for index in range(4):
                workflow.add_task(Task(f"t{index}", flops=2e9))
            simulation.submit_job(workflow, cores=cores, label="job")
            return simulation.run().scheduler.records[0].runtime

        # With 1 reserved core the tasks serialise (4 x 2 s); with 4 they
        # run together (2 s): the reservation bounds actual execution.
        assert run(1) == pytest.approx(8.0)
        assert run(4) == pytest.approx(2.0)

    def test_arrivals_gate_job_starts(self):
        simulation = make_simulation(n_nodes=2, cores_per_node=4)
        simulation.submit_job(compute_workflow("late", 1.0), cores=1,
                              arrival_time=7.5, label="late")
        result = simulation.run()
        record = result.scheduler.records[0]
        assert record.start_time == pytest.approx(7.5)
        assert record.wait_time == pytest.approx(0.0)

    def test_easy_backfill_reorders_but_fifo_does_not(self):
        def run(policy: str):
            simulation = make_simulation(n_nodes=1, cores_per_node=4,
                                         policy=policy)
            # A occupies half the node; B (full node) blocks; C is short
            # enough to finish before A releases B's cores.
            simulation.submit_job(compute_workflow("A", 10.0), cores=2,
                                  arrival_time=0.0, label="A")
            simulation.submit_job(compute_workflow("B", 5.0), cores=4,
                                  arrival_time=0.1, label="B")
            simulation.submit_job(compute_workflow("C", 5.0), cores=2,
                                  arrival_time=0.2, label="C")
            result = simulation.run()
            return {r.label: r for r in result.scheduler.records}

        easy = run("easy")
        assert easy["C"].start_time == pytest.approx(0.2)  # backfilled
        assert easy["B"].start_time == pytest.approx(10.0)  # reservation held

        fifo = run("fifo")
        assert fifo["B"].start_time == pytest.approx(10.0)
        assert fifo["C"].start_time >= fifo["B"].end_time - 1e-6

    def test_sjf_runs_short_jobs_first(self):
        simulation = make_simulation(n_nodes=1, cores_per_node=4, policy="sjf")
        # All jobs are queued behind "blocker"; SJF then picks by estimate.
        simulation.submit_job(compute_workflow("blocker", 2.0), cores=4,
                              arrival_time=0.0, label="blocker")
        simulation.submit_job(compute_workflow("long", 8.0), cores=4,
                              arrival_time=0.1, label="long")
        simulation.submit_job(compute_workflow("short", 1.0), cores=4,
                              arrival_time=0.2, label="short")
        result = simulation.run()
        records = {r.label: r for r in result.scheduler.records}
        assert records["short"].start_time < records["long"].start_time

    def test_cache_placement_routes_repeat_jobs_to_the_warm_node(self):
        simulation = make_simulation(n_nodes=4, cores_per_node=4,
                                     placement="cache")
        dataset = File("dataset", 500 * MB)
        simulation.stage_file_replicated(dataset)
        for index in range(6):
            simulation.submit_job(
                io_job_workflow(f"job{index}", dataset),
                cores=1,
                arrival_time=4.0 * index,  # sequential: cache fully warm
                label=f"job{index}",
            )
        result = simulation.run()
        metrics = result.scheduler
        # All jobs share one dataset: they all land on the same node...
        assert len(metrics.jobs_per_node) == 1
        # ...and every read after the first is served from its page cache.
        assert result.read_cache_hit_ratio() == pytest.approx(5.0 / 6.0, abs=0.01)

    def test_round_robin_spreads_and_stays_cold(self):
        simulation = make_simulation(n_nodes=4, cores_per_node=4,
                                     placement="round-robin")
        dataset = File("dataset", 500 * MB)
        simulation.stage_file_replicated(dataset)
        for index in range(4):
            simulation.submit_job(
                io_job_workflow(f"job{index}", dataset),
                cores=1,
                arrival_time=4.0 * index,
                label=f"job{index}",
            )
        result = simulation.run()
        assert len(result.scheduler.jobs_per_node) == 4
        assert result.read_cache_hit_ratio() == pytest.approx(0.0, abs=0.01)

    def test_seeded_runs_are_reproducible(self):
        from repro.experiments.exp6_cluster import run_exp6

        kwargs = dict(n_jobs=20, n_nodes=2, n_datasets=4, seed=7)
        first = run_exp6("cache", **kwargs)
        second = run_exp6("cache", **kwargs)
        assert first.makespan == second.makespan
        assert first.cache_hit_ratio == second.cache_hit_ratio
        assert first.mean_wait_time == second.mean_wait_time


class TestWaitTimeClamp:
    def test_wait_time_never_negative_for_past_arrivals(self):
        from repro.scheduler.metrics import JobRecord

        # A trace-replayed job "submitted in the past": its recorded
        # arrival lies marginally after the dispatch tick (scheduler
        # epsilon).  The wait must clamp to 0, not go negative.
        record = JobRecord(
            job_id=0, label="past", node="node1", cores=1,
            arrival_time=10.0 + 1e-9, start_time=10.0, end_time=20.0,
            estimated_runtime=10.0,
        )
        assert record.wait_time == 0.0
        assert record.bounded_slowdown() >= 1.0

    def test_trace_replay_waits_are_non_negative(self):
        from repro.scheduler.swf import parse_swf

        trace = parse_swf(
            "; MaxProcs: 4\n"
            "1 0 -1 2 4 -1 -1 4 3 -1 1 1 1 1 0 1 -1 -1\n"
            "2 0 -1 1 2 -1 -1 2 2 -1 1 1 1 1 1 1 -1 -1\n"
            "3 1 -1 1 2 -1 -1 2 2 -1 1 1 1 2 0 1 -1 -1\n"
        )
        simulation = make_simulation(1, 4)
        simulation.submit_trace(trace, dataset_size=10 * MB, output_size=MB)
        result = simulation.run()
        assert result.scheduler.n_jobs == 3
        assert all(r.wait_time >= 0.0 for r in result.scheduler.records)


class TestSubmitTrace:
    def trace(self):
        from repro.scheduler.swf import parse_swf

        return parse_swf(
            "; MaxProcs: 8\n"
            "1 0 -1 4 8 -1 -1 8 5 -1 1 1 1 3 0 1 -1 -1\n"
            "2 2 -1 2 4 -1 -1 4 3 -1 1 2 1 5 2 1 -1 -1\n"
            "3 4 -1 2 2 -1 -1 2 3 -1 1 1 1 3 1 1 -1 -1\n"
        )

    def test_requires_scheduler(self):
        simulation = Simulation()
        simulation.create_cluster_platform(1, with_nfs_server=False)
        with pytest.raises(ConfigurationError):
            simulation.submit_trace(self.trace())

    def test_builds_jobs_with_datasets_priorities_and_rescaled_cores(self):
        simulation = make_simulation(2, 4)
        jobs = simulation.submit_trace(
            self.trace(), dataset_size=20 * MB, output_size=MB
        )
        assert [job.label for job in jobs] == ["swf1", "swf2", "swf3"]
        # Cores rescaled from MaxProcs 8 to the largest node (4 cores).
        assert [job.cores for job in jobs] == [4, 2, 1]
        # Priorities come from the SWF queue number.
        assert [job.priority for job in jobs] == [0, 2, 1]
        # One shared dataset per distinct application, on every node.
        dataset_names = {f.name for job in jobs for f in job.input_files()}
        assert dataset_names == {"swf_app3", "swf_app5"}
        for node in simulation.scheduler.nodes:
            assert node.storage.disk.used == pytest.approx(2 * 20 * MB)

    def test_malformed_trace_lines_are_reported(self):
        from repro.scheduler.swf import parse_swf

        trace = parse_swf(
            "1 0 -1 2 2 -1 -1 2 3 -1 1 1 1 1 0 1 -1 -1\n"
            "this line is garbage\n"
        )
        simulation = make_simulation(1, 4)
        with pytest.warns(UserWarning, match="1 malformed line"):
            simulation.submit_trace(trace, dataset_size=MB, output_size=MB)

    def test_trace_replay_runs_to_completion(self):
        simulation = make_simulation(2, 4, policy="preemptive-priority",
                                     placement="cache")
        jobs = simulation.submit_trace(
            self.trace(), dataset_size=10 * MB, output_size=MB,
            runtime_scale=0.5, load_factor=2.0,
        )
        result = simulation.run()
        assert result.scheduler.n_jobs == len(jobs)
        assert result.scheduler.makespan > 0
        classes = result.scheduler.priority_class_metrics()
        assert set(classes) == {0, 1, 2}
