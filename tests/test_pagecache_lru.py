"""Unit tests for the LRU lists and the two-list page cache structure."""

import pytest

from repro.errors import CacheConsistencyError
from repro.pagecache.block import Block
from repro.pagecache.lru import LRUList, PageCacheLists


def make_block(filename="f", size=10.0, entry=0.0, access=None, dirty=False):
    return Block(filename, size, entry_time=entry, last_access=access, dirty=dirty)


class TestLRUList:
    def test_append_accumulates_sizes(self):
        lru = LRUList()
        lru.append(make_block(size=10, dirty=True))
        lru.append(make_block(size=20))
        assert lru.size == 30
        assert lru.dirty_size == 10
        assert lru.clean_size == 20
        assert len(lru) == 2

    def test_append_keeps_access_order(self):
        lru = LRUList()
        first = make_block(access=1.0)
        second = make_block(access=2.0)
        lru.append(first)
        lru.append(second)
        assert lru.blocks == [first, second]

    def test_out_of_order_append_inserts_ordered(self):
        lru = LRUList()
        newer = make_block(access=5.0)
        older = make_block(access=1.0)
        lru.append(newer)
        lru.append(older)  # older access time: must land before `newer`
        assert lru.blocks == [older, newer]

    def test_remove_updates_accounting(self):
        lru = LRUList()
        block = make_block(size=10, dirty=True)
        lru.append(block)
        lru.remove(block)
        assert lru.size == 0
        assert lru.dirty_size == 0
        assert len(lru) == 0

    def test_pop_lru_returns_oldest(self):
        lru = LRUList()
        old = make_block(access=1.0)
        new = make_block(access=2.0)
        lru.append(old)
        lru.append(new)
        assert lru.pop_lru() is old

    def test_pop_lru_on_empty_list_raises(self):
        with pytest.raises(CacheConsistencyError):
            LRUList().pop_lru()

    def test_mark_clean(self):
        lru = LRUList()
        block = make_block(size=10, dirty=True)
        lru.append(block)
        lru.mark_clean(block)
        assert block.dirty is False
        assert lru.dirty_size == 0
        assert lru.size == 10

    def test_mark_clean_of_foreign_block_raises(self):
        lru = LRUList()
        with pytest.raises(CacheConsistencyError):
            lru.mark_clean(make_block())

    def test_per_file_accounting(self):
        lru = LRUList()
        lru.append(make_block("a", size=10))
        lru.append(make_block("b", size=20))
        lru.append(make_block("a", size=5))
        assert lru.cached_of_file("a") == 15
        assert lru.cached_of_file("b") == 20
        assert lru.cached_of_file("missing") == 0
        assert lru.files() == {"a": 15, "b": 20}

    def test_blocks_of_file(self):
        lru = LRUList()
        a1 = make_block("a", access=1.0)
        b = make_block("b", access=2.0)
        a2 = make_block("a", access=3.0)
        for block in (a1, b, a2):
            lru.append(block)
        assert lru.blocks_of_file("a") == [a1, a2]

    def test_dirty_and_clean_block_queries(self):
        lru = LRUList()
        dirty_a = make_block("a", dirty=True)
        clean_b = make_block("b", dirty=False)
        dirty_c = make_block("c", dirty=True)
        for block in (dirty_a, clean_b, dirty_c):
            lru.append(block)
        assert lru.dirty_blocks() == [dirty_a, dirty_c]
        assert lru.dirty_blocks(exclude_file="a") == [dirty_c]
        assert lru.clean_blocks() == [clean_b]
        assert lru.clean_blocks(exclude_files=["b"]) == []

    def test_expired_blocks(self):
        lru = LRUList()
        old_dirty = make_block("a", entry=0.0, dirty=True)
        new_dirty = make_block("b", entry=50.0, dirty=True)
        old_clean = make_block("c", entry=0.0, dirty=False)
        for block in (old_dirty, new_dirty, old_clean):
            lru.append(block)
        assert lru.expired_blocks(now=40.0, expiration=30.0) == [old_dirty]

    def test_clear(self):
        lru = LRUList()
        lru.append(make_block(size=10))
        blocks = lru.clear()
        assert len(blocks) == 1
        assert lru.size == 0
        assert lru.files() == {}

    def test_assert_consistent_detects_drift(self):
        lru = LRUList()
        block = make_block(size=10)
        lru.append(block)
        block.size = 20  # corrupt the block behind the list's back
        with pytest.raises(CacheConsistencyError):
            lru.assert_consistent()


class TestExtentRuns:
    """Consecutive same-file, same-state fragments share one extent run.

    Coalescing is structural and lossless: joining a run moves the
    fragment — its exact size, entry time and access time travel with it
    untouched — so it is always on; there is no knob and no arithmetic.
    """

    def test_sequential_stream_coalesces_into_one_run(self):
        lru = LRUList()
        for step in range(5):
            lru.append(make_block("a", size=10, entry=float(step),
                                  access=float(step)))
        assert len(lru) == 5  # fragments keep their identity...
        assert lru.run_count == 1  # ...but cost a single list node
        assert lru.merges == 4
        assert lru.cached_of_file("a") == 50
        lru.assert_consistent()

    def test_fragment_sizes_survive_coalescing_exactly(self):
        # The sizes of coalesced fragments are never summed or rewritten:
        # popping them back out yields the exact values that went in.
        lru = LRUList()
        sizes = [10.125, 0.375, 7.25]
        for step, size in enumerate(sizes):
            lru.append(make_block("a", size=size, access=float(step)))
        assert lru.run_count == 1
        assert [lru.pop_lru().size for _ in sizes] == sizes

    def test_dirty_and_clean_fragments_never_share_a_run(self):
        lru = LRUList()
        lru.append(make_block("a", size=10, access=1.0, dirty=True))
        lru.append(make_block("a", size=10, access=2.0, dirty=False))
        lru.append(make_block("a", size=10, access=3.0, dirty=True))
        # One dirty run and one clean run: state is a hard boundary, but
        # the dirty fragments straddling the clean one still share a row.
        assert lru.run_count == 2
        assert lru.dirty_size == 20
        assert [block.dirty for block in lru.blocks] == [True, False, True]
        lru.assert_consistent()

    def test_different_files_never_share_a_run(self):
        lru = LRUList()
        lru.append(make_block("a", size=10, access=1.0))
        lru.append(make_block("b", size=10, access=1.0))
        assert lru.run_count == 2
        assert lru.merges == 0

    def test_interleaved_files_keep_one_run_each(self):
        # b's block lands between a's fragments in LRU order; since runs
        # are ordered by position key, not by adjacency links, neither
        # file fragments into extra runs — this is what keeps concurrent
        # chunk streams cheap.
        lru = LRUList()
        lru.append(make_block("a", size=10, access=1.0))
        lru.append(make_block("a", size=10, access=3.0))
        assert lru.run_count == 1
        lru.insert_ordered(make_block("b", size=10, access=2.0))
        assert lru.run_count == 2
        assert [block.filename for block in lru.blocks] == ["a", "b", "a"]
        # Consumption still interleaves by exact LRU position.
        assert [lru.pop_lru().filename for _ in range(3)] == ["a", "b", "a"]
        lru.assert_consistent()

    def test_mark_clean_joins_the_clean_neighbour(self):
        # A flush split leaves a clean and a dirty fragment side by side;
        # cleaning the dirty one re-joins the clean run structurally.
        lru = LRUList()
        original = make_block("a", size=30, entry=2.0, access=4.0, dirty=True)
        lru.append(original)
        flushed, rest = original.split(10.0)
        flushed.dirty = False
        lru.remove(original)
        lru.insert_ordered(flushed)
        lru.insert_ordered(rest)
        assert lru.run_count == 2
        lru.mark_clean(rest)
        assert lru.run_count == 1
        assert len(lru) == 2  # both fragments survive, sizes untouched
        assert lru.size == 30
        assert lru.dirty_size == 0
        lru.assert_consistent()

    def test_totals_are_exactly_the_sum_of_run_lengths(self):
        # With exact fragment sizes the accounting needs no slack on
        # integer-byte workloads: the incrementally maintained totals
        # equal the left-to-right sum over the runs, exactly.
        lru = LRUList()
        for step in range(8):
            lru.append(make_block(f"f{step % 2}", size=float(3 * step + 1),
                                  access=float(step), dirty=step % 3 == 0))
        total = 0.0
        dirty = 0.0
        for run in lru.runs():
            length = run.length()
            total += length
            if run.dirty:
                dirty += length
        assert lru.size == total
        assert lru.dirty_size == dirty


class TestPageCacheLists:
    def test_new_blocks_enter_inactive(self):
        lists = PageCacheLists()
        lists.add_to_inactive(make_block(size=10))
        assert lists.inactive.size == 10
        assert lists.active.size == 0
        assert lists.size == 10

    def test_promote_moves_to_active_and_touches(self):
        lists = PageCacheLists(balance=False)
        block = make_block(size=10, access=1.0)
        lists.add_to_inactive(block)
        lists.promote(block, now=9.0)
        assert block in lists.active
        assert block not in lists.inactive
        assert block.last_access == 9.0

    def test_promote_with_balancing_keeps_ratio(self):
        lists = PageCacheLists()
        block = make_block(size=12, access=1.0)
        lists.add_to_inactive(block)
        lists.promote(block, now=9.0)
        # Exactly the excess is demoted back: 8 bytes stay active, 4 inactive.
        assert lists.active.size == pytest.approx(8.0)
        assert lists.inactive.size == pytest.approx(4.0)
        assert lists.size == pytest.approx(12.0)

    def test_cached_of_file_spans_both_lists(self):
        lists = PageCacheLists()
        a1 = make_block("a", size=10, access=1.0)
        a2 = make_block("a", size=5, access=2.0)
        lists.add_to_inactive(a1)
        lists.add_to_inactive(a2)
        lists.promote(a2, now=3.0)
        assert lists.cached_of_file("a") == 15
        assert lists.files() == {"a": 15}

    def test_balance_keeps_active_at_most_twice_inactive(self):
        lists = PageCacheLists()
        # Start with a small inactive list and a large active list.
        inactive_block = make_block("i", size=10, access=0.0)
        lists.add_to_inactive(inactive_block)
        for index in range(6):
            block = make_block(f"a{index}", size=50, access=float(index + 1))
            lists.add_to_inactive(block)
            lists.promote(block, now=float(index + 10))
        assert lists.active.size <= 2 * lists.inactive.size + 1e-6
        assert lists.size == pytest.approx(10 + 6 * 50)

    def test_balance_moves_least_recently_used_first(self):
        lists = PageCacheLists(balance=False)
        lists.add_to_inactive(make_block("i", size=10, access=0.0))
        oldest = make_block("old", size=100, access=1.0)
        newest = make_block("new", size=100, access=2.0)
        for block in (oldest, newest):
            lists.add_to_inactive(block)
            lists.promote(block, now=block.last_access + 10)
        lists.balance_enabled = True
        lists.balance()
        # The demoted data must come from the least recently used block.
        assert lists.inactive.cached_of_file("old") > 0
        assert lists.inactive.cached_of_file("new") == 0
        assert lists.active.size <= 2 * lists.inactive.size + 1e-6

    def test_balance_disabled(self):
        lists = PageCacheLists(balance=False)
        lists.add_to_inactive(make_block("i", size=1))
        big = make_block("big", size=1000)
        lists.add_to_inactive(big)
        lists.promote(big, now=5.0)
        assert lists.active.size == 1000  # no demotion

    def test_remove_from_either_list(self):
        lists = PageCacheLists()
        block = make_block(size=10)
        lists.add_to_inactive(block)
        lists.remove(block)
        assert lists.size == 0
        with pytest.raises(CacheConsistencyError):
            lists.remove(block)

    def test_dirty_size_aggregation(self):
        lists = PageCacheLists()
        lists.add_to_inactive(make_block("a", size=10, dirty=True))
        promoted = make_block("b", size=5, dirty=True)
        lists.add_to_inactive(promoted)
        lists.promote(promoted, now=1.0)
        assert lists.dirty_size == 15
        assert lists.clean_size == 0

    def test_all_blocks_inactive_first(self):
        lists = PageCacheLists()
        inactive_block = make_block("i", size=10)
        active_block = make_block("a", size=10)
        lists.add_to_inactive(inactive_block)
        lists.add_to_inactive(active_block)
        lists.promote(active_block, now=3.0)
        assert lists.all_blocks() == [inactive_block, active_block]
