"""Unit tests for cache statistics counters."""

import pytest

from repro.pagecache.stats import (
    CacheStatistics,
    EvictionPolicyStats,
    ExtentOccupancy,
    StatsSource,
)


class TestCacheStatistics:
    def test_initial_state(self):
        stats = CacheStatistics()
        assert stats.total_read_bytes == 0
        assert stats.total_write_bytes == 0
        assert stats.hit_ratio == 0.0

    def test_record_hit_and_miss(self):
        stats = CacheStatistics()
        stats.record_hit("a", 100.0)
        stats.record_miss("a", 300.0)
        stats.record_hit("b", 100.0)
        assert stats.cache_hit_bytes == 200.0
        assert stats.cache_miss_bytes == 300.0
        assert stats.total_read_bytes == 500.0
        assert stats.hit_ratio == pytest.approx(0.4)
        assert stats.per_file_hits == {"a": 100.0, "b": 100.0}
        assert stats.per_file_misses == {"a": 300.0}

    def test_total_write_bytes(self):
        stats = CacheStatistics()
        stats.cache_write_bytes = 10.0
        stats.direct_write_bytes = 5.0
        assert stats.total_write_bytes == 15.0

    def test_as_dict_contains_all_counters(self):
        stats = CacheStatistics()
        stats.record_hit("a", 1.0)
        data = stats.as_dict()
        for key in (
            "cache_hit_bytes",
            "cache_miss_bytes",
            "cache_write_bytes",
            "direct_write_bytes",
            "flushed_bytes",
            "background_flushed_bytes",
            "evicted_bytes",
            "read_ops",
            "write_ops",
            "flush_ops",
            "evict_ops",
            "hit_ratio",
        ):
            assert key in data
        assert data["cache_hit_bytes"] == 1.0


class TestStatsSourceConformance:
    """Everything the telemetry layer publishes speaks the same protocol.

    ``repro.obs.registry.publish`` consumes any object with a numeric
    ``as_dict``; :class:`StatsSource` names that contract.  This test pins
    every stats surface across the codebase to it, so a new stats class
    that forgets ``as_dict`` (or sneaks a non-scalar into it) fails here
    rather than silently exporting nothing.
    """

    def _instances(self):
        from repro.pagecache.memory_manager import MemorySnapshot
        from repro.scheduler.metrics import (
            PriorityClassMetrics,
            SchedulerMetrics,
        )

        return [
            CacheStatistics(),
            EvictionPolicyStats(),
            ExtentOccupancy(runs=2, fragments=4, merges=2),
            MemorySnapshot(time=0.0, total=8.0, free=4.0, used=4.0,
                           cached=2.0, dirty=1.0, anonymous=2.0,
                           dirty_threshold=1.6),
            SchedulerMetrics(),
            PriorityClassMetrics(priority=1, n_jobs=2, mean_wait_time=0.5,
                                 max_wait_time=1.0, mean_turnaround=2.0,
                                 mean_bounded_slowdown=1.5,
                                 max_bounded_slowdown=2.0, preemptions=1),
        ]

    def test_all_stats_surfaces_are_stats_sources(self):
        for stats in self._instances():
            assert isinstance(stats, StatsSource), type(stats).__name__

    def test_as_dict_values_are_numeric_scalars(self):
        for stats in self._instances():
            data = stats.as_dict()
            assert data, type(stats).__name__
            for key, value in data.items():
                assert isinstance(key, str)
                assert isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ), f"{type(stats).__name__}.{key}"

    def test_eviction_policy_stats_counts_everything_published(self):
        stats = EvictionPolicyStats(inserts=3, ghost_hits=1, promotions=2)
        data = stats.as_dict()
        assert data["inserts"] == 3.0
        assert data["ghost_hits"] == 1.0
        assert data["promotions"] == 2.0
        assert set(data) == {
            "tracked_files", "ghost_files", "inserts", "accesses",
            "full_evictions", "invalidations", "ghost_hits", "promotions",
            "demotions", "job_dispatches", "job_preemptions",
        }
