"""Unit tests for cache statistics counters."""

import pytest

from repro.pagecache.stats import CacheStatistics


class TestCacheStatistics:
    def test_initial_state(self):
        stats = CacheStatistics()
        assert stats.total_read_bytes == 0
        assert stats.total_write_bytes == 0
        assert stats.hit_ratio == 0.0

    def test_record_hit_and_miss(self):
        stats = CacheStatistics()
        stats.record_hit("a", 100.0)
        stats.record_miss("a", 300.0)
        stats.record_hit("b", 100.0)
        assert stats.cache_hit_bytes == 200.0
        assert stats.cache_miss_bytes == 300.0
        assert stats.total_read_bytes == 500.0
        assert stats.hit_ratio == pytest.approx(0.4)
        assert stats.per_file_hits == {"a": 100.0, "b": 100.0}
        assert stats.per_file_misses == {"a": 300.0}

    def test_total_write_bytes(self):
        stats = CacheStatistics()
        stats.cache_write_bytes = 10.0
        stats.direct_write_bytes = 5.0
        assert stats.total_write_bytes == 15.0

    def test_as_dict_contains_all_counters(self):
        stats = CacheStatistics()
        stats.record_hit("a", 1.0)
        data = stats.as_dict()
        for key in (
            "cache_hit_bytes",
            "cache_miss_bytes",
            "cache_write_bytes",
            "direct_write_bytes",
            "flushed_bytes",
            "background_flushed_bytes",
            "evicted_bytes",
            "read_ops",
            "write_ops",
            "flush_ops",
            "evict_ops",
            "hit_ratio",
        ):
            assert key in data
        assert data["cache_hit_bytes"] == 1.0
