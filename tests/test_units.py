"""Unit tests for unit constants and formatting helpers."""

import pytest

from repro import units


class TestConstants:
    def test_decimal_units(self):
        assert units.KB == 1_000
        assert units.MB == 1_000_000
        assert units.GB == 1_000_000_000
        assert units.TB == 1_000_000_000_000

    def test_binary_units(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_bandwidth_aliases(self):
        assert units.MBps == units.MB
        assert units.GBps == units.GB


class TestFormatSize:
    @pytest.mark.parametrize("value,expected", [
        (0, "0 B"),
        (999, "999 B"),
        (1_500, "1.50 KB"),
        (20 * units.GB, "20.00 GB"),
        (2.5 * units.TB, "2.50 TB"),
    ])
    def test_decimal_formatting(self, value, expected):
        assert units.format_size(value) == expected

    def test_binary_formatting(self):
        assert units.format_size(250 * units.GiB, binary=True) == "250.00 GiB"

    def test_negative_size(self):
        assert units.format_size(-1500) == "-1.50 KB"

    def test_precision(self):
        assert units.format_size(1_234_567, precision=1) == "1.2 MB"


class TestFormatBandwidthAndTime:
    def test_format_bandwidth(self):
        assert units.format_bandwidth(465 * units.MBps) == "465.0 MB/s"

    @pytest.mark.parametrize("value,expected", [
        (5e-7, "0.50 us"),
        (0.005, "5.00 ms"),
        (42.0, "42.00 s"),
        (90.0, "1 min 30.00 s"),
        (7200.0, "2 h 0.0 min"),
    ])
    def test_format_time(self, value, expected):
        assert units.format_time(value) == expected

    def test_format_negative_time(self):
        assert units.format_time(-3.0) == "-3.00 s"


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("20GB", 20 * units.GB),
        ("512 MiB", 512 * units.MiB),
        ("1.5 kb", 1.5 * units.KB),
        ("42", 42.0),
        ("100 b", 100.0),
    ])
    def test_valid_inputs(self, text, expected):
        assert units.parse_size(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "GB", "12 parsecs"])
    def test_invalid_inputs(self, text):
        with pytest.raises(ValueError):
            units.parse_size(text)

    def test_roundtrip_with_format(self):
        assert units.parse_size(units.format_size(20 * units.GB)) == pytest.approx(
            20 * units.GB
        )
