"""Unit tests for the application models (synthetic, Nighres, concurrent)."""

import pytest

from repro.apps.concurrent import make_instances, stage_and_submit_instances
from repro.apps.nighres import (
    NIGHRES_STEPS,
    nighres_files,
    nighres_input_files,
    nighres_workflow,
)
from repro.apps.synthetic import (
    SYNTHETIC_CPU_TIMES,
    synthetic_cpu_time,
    synthetic_files,
    synthetic_workflow,
)
from repro.units import GB, MB


class TestSyntheticCpuTimes:
    def test_table1_values(self):
        assert SYNTHETIC_CPU_TIMES == {
            3.0: 4.4,
            20.0: 28.0,
            50.0: 75.0,
            75.0: 110.0,
            100.0: 155.0,
        }

    @pytest.mark.parametrize("size_gb,expected", [
        (3, 4.4), (20, 28.0), (50, 75.0), (75, 110.0), (100, 155.0),
    ])
    def test_measured_sizes_return_table_values(self, size_gb, expected):
        assert synthetic_cpu_time(size_gb * GB) == pytest.approx(expected)

    def test_interpolation_between_points(self):
        value = synthetic_cpu_time(35 * GB)
        assert 28.0 < value < 75.0
        # Linear between (20, 28) and (50, 75).
        assert value == pytest.approx(28.0 + (75.0 - 28.0) * 15 / 30)

    def test_extrapolation_above_range(self):
        assert synthetic_cpu_time(120 * GB) > 155.0

    def test_extrapolation_below_range_is_non_negative(self):
        assert synthetic_cpu_time(0.1 * GB) >= 0.0


class TestSyntheticWorkflow:
    def test_files_helper(self):
        files = synthetic_files(20 * GB, prefix="x_")
        assert [f.name for f in files] == ["x_file1", "x_file2", "x_file3", "x_file4"]
        assert all(f.size == 20 * GB for f in files)

    def test_three_task_pipeline_structure(self):
        workflow = synthetic_workflow(20 * GB)
        assert len(workflow) == 3
        order = [task.name for task in workflow.topological_order()]
        assert order == ["task1", "task2", "task3"]
        assert [f.name for f in workflow.input_files()] == ["file1"]
        task2 = workflow.task("task2")
        assert [f.name for f in task2.inputs] == ["file2"]
        assert [f.name for f in task2.outputs] == ["file3"]
        assert task2.cpu_time() == pytest.approx(28.0)
        assert task2.release_memory is True

    def test_named_instances_use_prefixed_files(self):
        workflow = synthetic_workflow(3 * GB, name="app7")
        assert workflow.input_files()[0].name == "app7_file1"

    def test_explicit_cpu_time_override(self):
        workflow = synthetic_workflow(20 * GB, cpu_time=1.0)
        assert workflow.task("task1").cpu_time() == pytest.approx(1.0)

    def test_explicit_files_must_be_four(self):
        with pytest.raises(ValueError):
            synthetic_workflow(1 * GB, files=synthetic_files(1 * GB)[:3])


class TestNighresWorkflow:
    def test_table2_values(self):
        names = [step.name for step in NIGHRES_STEPS]
        assert names == [
            "skull_stripping",
            "tissue_classification",
            "region_extraction",
            "cortical_reconstruction",
        ]
        assert NIGHRES_STEPS[0].input_size == 295 * MB
        assert NIGHRES_STEPS[1].output_size == 1376 * MB
        assert NIGHRES_STEPS[3].cpu_time == 272.0

    def test_workflow_is_sequential(self):
        workflow = nighres_workflow()
        order = [task.name for task in workflow.topological_order()]
        assert order == [step.name for step in NIGHRES_STEPS]

    def test_cache_reuse_pattern(self):
        """Region extraction re-reads the tissue output; cortical re-reads skull output."""
        workflow = nighres_workflow()
        files = nighres_files()
        region = workflow.task("region_extraction")
        cortical = workflow.task("cortical_reconstruction")
        assert region.inputs[0].name == files["tissue_classified"].name
        assert cortical.inputs[0].name == files["skull_stripped"].name

    def test_input_files_must_be_staged(self):
        staged = {f.name for f in nighres_input_files()}
        assert staged == {"t1_weighted", "t1_map"}

    def test_prefix_isolates_instances(self):
        workflow = nighres_workflow(file_prefix="i1_")
        assert workflow.input_files()[0].name.startswith("i1_")


class TestConcurrentInstances:
    def test_make_instances_unique_files(self):
        instances = make_instances(4, 3 * GB)
        assert len(instances) == 4
        names = {input_file.name for _, input_file in instances}
        assert len(names) == 4
        labels = {workflow.name for workflow, _ in instances}
        assert labels == {"app1", "app2", "app3", "app4"}

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            make_instances(0, 3 * GB)

    def test_stage_and_submit(self):
        from repro import Simulation, SimulationConfig
        from repro.pagecache.config import PageCacheConfig

        sim = Simulation(config=SimulationConfig(
            cache_mode="writeback",
            page_cache=PageCacheConfig(periodic_flushing=False),
            trace_interval=None,
        ))
        sim.create_single_node_platform()
        svc = sim.create_storage_service("node1", "/local")
        instances = make_instances(3, 1 * GB)
        stage_and_submit_instances(sim, instances, host="node1", storage=svc)
        result = sim.run()
        assert len(result.app_makespans) == 3
