"""Unit tests for regression and table formatting utilities."""

import math

import pytest

from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.tables import format_series, format_table


class TestLinearFit:
    def test_perfect_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])  # y = 2x + 1
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.p_value < 1e-6
        assert fit.n == 4

    def test_noisy_line_recovers_slope(self):
        xs = list(range(1, 33))
        ys = [0.05 * x - 0.19 + ((-1) ** x) * 0.01 for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(0.05, abs=0.005)
        assert fit.intercept == pytest.approx(-0.19, abs=0.05)
        assert fit.r_squared > 0.95

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)

    def test_equation_format(self):
        fit = LinearFit(slope=0.05, intercept=-0.19, r_squared=1.0, p_value=0.0, n=5)
        assert fit.equation() == "y=0.05x-0.19"
        positive = LinearFit(slope=0.01, intercept=0.02, r_squared=1.0, p_value=0.0, n=5)
        assert positive.equation() == "y=0.01x+0.02"

    def test_errors(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])

    def test_flat_line_p_value(self):
        fit = linear_fit([1, 2, 3, 4], [5, 5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert not math.isnan(fit.p_value)


class TestFormatTable:
    def test_alignment_and_rounding(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 10.0]],
                            precision=2)
        lines = text.splitlines()
        assert lines[0].endswith("value")
        assert "1.23" in text
        assert "10.00" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("curve", [[1, 2.0]], headers=["x", "y"])
        assert text.splitlines()[0] == "curve"
        assert "2.00" in text
