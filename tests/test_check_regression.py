"""Unit tests of the benchmark-regression gate (benchmarks/check_regression.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def results_json(medians: dict) -> dict:
    """A minimal pytest-benchmark JSON document."""
    return {
        "benchmarks": [
            {"name": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }


def write_results(tmp_path: Path, medians: dict) -> Path:
    path = tmp_path / "results.json"
    path.write_text(json.dumps(results_json(medians)))
    return path


REFERENCE = check_regression.REFERENCE_NAME


class TestGate:
    def baseline(self, tmp_path: Path, medians: dict) -> Path:
        results = write_results(tmp_path, medians)
        baseline = tmp_path / "baseline.json"
        assert check_regression.main(
            [str(results), "--baseline", str(baseline), "--update"]
        ) == 0
        return baseline

    def test_update_then_identical_results_pass(self, tmp_path):
        medians = {REFERENCE: 0.5, "test_a": 1.0, "test_b": 0.1}
        baseline = self.baseline(tmp_path, medians)
        results = write_results(tmp_path, medians)
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 0

    def test_machine_speed_scales_out(self, tmp_path):
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_a": 1.0}
        )
        # A machine 3x slower across the board: same normalized medians.
        results = write_results(tmp_path, {REFERENCE: 1.5, "test_a": 3.0})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 0

    def test_regression_beyond_budget_fails(self, tmp_path):
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_a": 1.0}
        )
        results = write_results(tmp_path, {REFERENCE: 0.5, "test_a": 1.4})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 1

    def test_missing_baseline_benchmark_fails(self, tmp_path):
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_a": 1.0, "test_gone": 1.0}
        )
        results = write_results(tmp_path, {REFERENCE: 0.5, "test_a": 1.0})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 1

    def test_subset_mode_skips_uncollected_benchmarks(self, tmp_path):
        # A marker-restricted run (e.g. `pytest -m perf`) only collects a
        # slice of the baseline: absent benchmarks are not failures.
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_perf_a": 1.0, "test_other": 2.0}
        )
        results = write_results(tmp_path, {REFERENCE: 0.5, "test_perf_a": 1.0})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline), "--subset"]
        ) == 0

    def test_subset_mode_still_fails_on_regressions(self, tmp_path):
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_perf_a": 1.0, "test_other": 2.0}
        )
        results = write_results(tmp_path, {REFERENCE: 0.5, "test_perf_a": 5.0})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline), "--subset"]
        ) == 1

    def test_new_benchmark_without_baseline_entry_fails(self, tmp_path, capsys):
        baseline = self.baseline(tmp_path, {REFERENCE: 0.5, "test_a": 1.0})
        results = write_results(
            tmp_path, {REFERENCE: 0.5, "test_a": 1.0, "test_new": 5.0}
        )
        # An ungated benchmark would stay ungated forever: the gate
        # demands the baseline entry land with the benchmark itself.
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 1
        assert "NEW" in capsys.readouterr().out

    def test_noise_floor_damps_micro_benchmarks(self, tmp_path):
        baseline = self.baseline(
            tmp_path, {REFERENCE: 0.5, "test_tiny": 0.0001}
        )
        # 3x slower in absolute terms but far below the noise floor.
        results = write_results(tmp_path, {REFERENCE: 0.5, "test_tiny": 0.0003})
        assert check_regression.main(
            [str(results), "--baseline", str(baseline)]
        ) == 0

    def test_missing_reference_is_fatal(self, tmp_path):
        baseline = self.baseline(tmp_path, {REFERENCE: 0.5, "test_a": 1.0})
        results = write_results(tmp_path, {"test_a": 1.0})
        with pytest.raises(SystemExit):
            check_regression.main([str(results), "--baseline", str(baseline)])

    @pytest.mark.parametrize("baseline_file",
                             ["baseline.json", "baseline-perf.json"])
    def test_committed_baseline_matches_current_benchmarks(self, baseline_file):
        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        baseline = json.loads((bench_dir / baseline_file).read_text())
        sources = "\n".join(
            path.read_text() for path in bench_dir.glob("test_bench_*.py")
        )
        # Every gated benchmark still exists (renames go through --update).
        for name in baseline["normalized_medians"]:
            assert name.split("[")[0] in sources, name
        # The perf micro-benchmarks live in their own (non-gating)
        # baseline; the gating file must not shadow them.
        for name in baseline["normalized_medians"]:
            assert name.startswith("test_perf_") == (
                baseline_file == "baseline-perf.json"
            ), name
