"""Snapshot × fault-injection edge cases, and leave-vs-repair precedence.

The tentpole invariant (restore ≡ uninterrupted run) is easiest to break
when the snapshot lands in an awkward moment: mid-preemption, mid
flow-transfer, or with a node crashed and awaiting repair.  These tests
steer simulations into exactly those states before snapshotting.

The precedence tests pin the crash-vs-elastic-leave race: a node that
leaves the cluster (elastic drain-then-leave) stays gone — a repair from
its crash/repair stream arriving afterwards is discarded, never
resurrecting the departed node.
"""

from __future__ import annotations

from repro.experiments.exp2_concurrent import build_exp2, finish_exp2, run_exp2
from repro.experiments.exp6_cluster import build_exp6, finish_exp6, run_exp6
from repro.experiments.exp7_trace_replay import build_exp7, finish_exp7, run_exp7
from repro.faults.plan import (
    ElasticNodeSpec,
    FaultPlan,
    NodeFaultSpec,
)
from repro.filesystem.file import File
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.snapshot import (
    canonical_json,
    capture_state,
    restore_simulation,
    write_snapshot,
)
from repro.units import MB


def canon(point) -> str:
    return canonical_json(point)


def step_into_state(sim, predicate, *, dt=0.25, limit=500.0) -> bool:
    """Advance ``sim`` in small steps until ``predicate(sim)`` holds."""
    t = sim.env.now
    while t < limit and not sim.completed:
        t += dt
        sim.step_until(t)
        if sim.completed:
            break
        if predicate(sim):
            return True
    return False


# --------------------------------------------------- awkward-moment snapshots
class TestSnapshotMidFaults:
    def test_snapshot_mid_preemption(self, tmp_path):
        """Snapshot while a preemption is suspending a running job."""
        kwargs = dict(placement="cache", load_factor=40.0)
        reference = run_exp7("preemptive-priority", **kwargs)

        sim = build_exp7("preemptive-priority", **kwargs)
        hit = step_into_state(
            sim,
            lambda s: bool(s.scheduler._suspending) or any(
                executor.suspended for executor in s.scheduler.executors
            ),
            dt=0.1,
        )
        assert hit, "replay never entered a preemption window"
        path = write_snapshot(sim, tmp_path / "mid-preempt.json")
        resumed = finish_exp7(restore_simulation(path).run(),
                              "preemptive-priority", **kwargs)
        assert canon(resumed) == canon(reference)

    def test_snapshot_mid_flow_transfer(self, tmp_path):
        """Snapshot while bytes are mid-flight on a shared channel."""
        reference = run_exp2("wrench-cache", 4)

        sim = build_exp2("wrench-cache", 4)

        def flows_in_flight(s):
            return any(
                channel._flows
                for host in s.platform.hosts.values()
                for channel in host.channels()
            )

        hit = step_into_state(sim, flows_in_flight, dt=0.5)
        assert hit, "no transfer was in flight at any boundary"
        # The capture must actually record the in-flight flows.
        state = capture_state(sim)
        assert any(
            channel["flows"]
            for host in state["hosts"].values()
            for channel in host["channels"]
        )
        path = write_snapshot(sim, tmp_path / "mid-flow.json")
        resumed = finish_exp2(restore_simulation(path).run(),
                              "wrench-cache", 4)
        assert canon(resumed) == canon(reference)

    def test_snapshot_with_node_down(self, tmp_path):
        """Snapshot while a crashed node awaits repair."""
        plan = FaultPlan(
            seed=11,
            node_faults=[NodeFaultSpec(node="*", mtbf=30.0, mttr=5.0)],
        )
        kwargs = dict(n_jobs=60, fault_plan=plan)
        reference = run_exp6("cache", **kwargs)
        assert reference.n_node_failures > 0

        sim = build_exp6("cache", **kwargs)
        hit = step_into_state(
            sim,
            lambda s: any(not node.up for node in s.scheduler.nodes),
            dt=0.25,
        )
        assert hit, "no node was down at any boundary"
        state = capture_state(sim)
        assert any(not node["up"] for node in state["scheduler"]["nodes"])
        # The fault streams' RNG positions travel in the capture.
        assert state["faults"]["rngs"], "expected live fault RNG streams"
        assert all(len(entry) == 4 for entry in state["faults"]["rngs"])

        path = write_snapshot(sim, tmp_path / "node-down.json")
        resumed = finish_exp6(restore_simulation(path).run(),
                              "cache", **kwargs)
        assert canon(resumed) == canon(reference)
        assert resumed.n_node_failures == reference.n_node_failures
        assert resumed.n_job_restarts == reference.n_job_restarts


# ---------------------------------------------------------- leave-wins race
def two_node_simulation(fault_plan=None) -> Simulation:
    simulation = Simulation(
        config=SimulationConfig(cache_mode="writeback", trace_interval=None),
        fault_plan=fault_plan,
    )
    simulation.create_cluster_platform(
        2, cores_per_node=4, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(
        policy="preemptive-priority", placement="round-robin"
    )
    return simulation


def submit_job(simulation, label, cpu_time, dataset, *, cores=4):
    workflow = Workflow(label)
    workflow.add_task(Task.from_cpu_time(
        "work", cpu_time, inputs=[dataset],
        outputs=[File(f"{label}_out", 10 * MB)],
    ))
    return simulation.submit_job(workflow, cores=cores, arrival_time=0.0,
                                 estimated_runtime=cpu_time, label=label)


class TestLeaveWinsPrecedence:
    def _started(self, fault_plan=None) -> Simulation:
        simulation = two_node_simulation(fault_plan)
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        submit_job(simulation, "j1", 3.0, dataset)
        submit_job(simulation, "j2", 3.0, dataset)
        return simulation

    def test_leave_marks_node_unavailable(self):
        simulation = self._started()
        scheduler = simulation.scheduler
        scheduler.leave_node("node2")
        node = scheduler.node("node2")
        assert node.left and node.draining and not node.available
        # Idempotent.
        scheduler.leave_node("node2")
        assert node.left

    def test_repair_after_leave_is_discarded(self):
        simulation = self._started()
        scheduler = simulation.scheduler
        scheduler.fault_mode = True
        env = simulation.env

        def race():
            yield env.timeout(1.0)
            scheduler.drain_node("node2")
            # Crash lands while the node is draining...
            yield env.timeout(0.5)
            scheduler.fail_node("node2")
            yield env.timeout(0.5)
            # ...the drain completes (nothing runs on a crashed node)
            # and the node leaves...
            scheduler.leave_node("node2")
            yield env.timeout(2.0)
            # ...and the late repair from the crash stream is discarded.
            scheduler.restore_node("node2")

        env.process(race(), name="race")
        simulation.run()
        node = scheduler.node("node2")
        assert node.left
        assert not node.up, "repair resurrected a departed node"
        assert not node.available

    def test_crash_on_left_node_is_discarded(self):
        simulation = self._started()
        scheduler = simulation.scheduler
        scheduler.fault_mode = True
        env = simulation.env

        def race():
            yield env.timeout(1.0)
            scheduler.leave_node("node2")
            yield env.timeout(0.5)
            assert scheduler.fail_node("node2") == []

        env.process(race(), name="race")
        simulation.run()
        node = scheduler.node("node2")
        assert node.left
        assert node.n_failures == 0
        assert scheduler.n_node_failures == 0

    def test_undrain_after_leave_is_discarded(self):
        simulation = self._started()
        scheduler = simulation.scheduler
        scheduler.leave_node("node2")
        scheduler.undrain_node("node2")
        assert scheduler.node("node2").draining
        assert not scheduler.node("node2").available

    def test_injector_crash_during_drain_leaves_node_gone(self):
        """Full stack: the crash stream's repair never undoes the leave."""
        plan = FaultPlan(
            seed=5,
            node_faults=[NodeFaultSpec(node="node2", mtbf=1.0, mttr=500.0,
                                       first_failure_after=2.0,
                                       max_failures=1)],
            elastic=[ElasticNodeSpec(node="node2", join_time=0.0,
                                     leave_time=1.0, drain_poll=0.25)],
        )
        simulation = self._started(plan)
        # Long job keeps node2 draining (not left) when the crash lands.
        dataset = File("dataset2", 10 * MB)
        simulation.stage_file_replicated(dataset)
        result = simulation.run()
        node = simulation.scheduler.node("node2")
        assert node.left
        assert not node.up, "repair resurrected a departed node"
        # Every job still completed (restarted on the surviving node).
        assert result.scheduler.n_jobs == 2

    def test_leave_wins_run_is_deterministic(self):
        plan = FaultPlan(
            seed=5,
            node_faults=[NodeFaultSpec(node="node2", mtbf=1.0, mttr=500.0,
                                       first_failure_after=2.0,
                                       max_failures=1)],
            elastic=[ElasticNodeSpec(node="node2", join_time=0.0,
                                     leave_time=1.0, drain_poll=0.25)],
        )

        def run_once():
            simulation = self._started(plan)
            result = simulation.run()
            return canonical_json(result.scheduler.as_dict())

        assert run_once() == run_once()
