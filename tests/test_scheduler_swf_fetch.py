"""Offline tests for the Parallel Workloads Archive fetch-and-cache helper.

No test touches the network: downloads are exercised through ``file://``
URLs pointing at the bundled ``benchmarks/data/sample.swf``, and the
cache-hit path is proven by monkeypatching ``urllib.request.urlopen`` to
explode if called.
"""

from __future__ import annotations

import gzip
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro.scheduler.swf as swf_module
from repro.errors import ConfigurationError
from repro.scheduler.swf import (
    KNOWN_TRACES,
    default_cache_dir,
    fetch_trace,
    load_trace,
)

SAMPLE = Path(__file__).resolve().parents[1] / "benchmarks" / "data" / "sample.swf"


def _forbid_network(monkeypatch):
    def no_network(*args, **kwargs):
        raise AssertionError("network access attempted")

    monkeypatch.setattr(urllib.request, "urlopen", no_network)


class TestFetchTrace:
    def test_local_path_passes_through(self, monkeypatch):
        _forbid_network(monkeypatch)
        assert fetch_trace(SAMPLE) == SAMPLE
        assert fetch_trace(str(SAMPLE)) == SAMPLE

    def test_missing_local_path_is_an_error(self, monkeypatch):
        _forbid_network(monkeypatch)
        with pytest.raises(ConfigurationError):
            fetch_trace("/no/such/trace.swf")

    def test_url_download_lands_in_cache(self, tmp_path):
        url = SAMPLE.resolve().as_uri()
        target = fetch_trace(url, cache_dir=tmp_path)
        assert target == tmp_path / "sample.swf"
        assert target.read_text() == SAMPLE.read_text()
        # No stray partial file remains.
        assert list(tmp_path.iterdir()) == [target]

    def test_gzipped_url_is_decompressed(self, tmp_path):
        gz = tmp_path / "src" / "sample.swf.gz"
        gz.parent.mkdir()
        gz.write_bytes(gzip.compress(SAMPLE.read_bytes()))
        cache = tmp_path / "cache"
        target = fetch_trace(gz.resolve().as_uri(), cache_dir=cache)
        assert target == cache / "sample.swf"
        assert target.read_text() == SAMPLE.read_text()

    def test_cached_copy_short_circuits_the_network(self, tmp_path, monkeypatch):
        url = SAMPLE.resolve().as_uri()
        first = fetch_trace(url, cache_dir=tmp_path)
        _forbid_network(monkeypatch)
        assert fetch_trace(url, cache_dir=tmp_path) == first

    def test_known_trace_name_resolves_to_its_cached_file(self, tmp_path,
                                                          monkeypatch):
        # Pre-seed the cache under the archive file name; the short name
        # must then resolve without any download.
        cached = tmp_path / "KTH-SP2-1996-2.1-cln.swf"
        cached.write_text(SAMPLE.read_text())
        _forbid_network(monkeypatch)
        assert fetch_trace("KTH-SP2", cache_dir=tmp_path) == cached

    def test_refresh_redownloads(self, tmp_path):
        url = SAMPLE.resolve().as_uri()
        target = fetch_trace(url, cache_dir=tmp_path)
        target.write_text("stale")
        assert fetch_trace(url, cache_dir=tmp_path).read_text() == "stale"
        refreshed = fetch_trace(url, cache_dir=tmp_path, refresh=True)
        assert refreshed.read_text() == SAMPLE.read_text()

    def test_load_trace_parses_the_fetched_file(self, tmp_path):
        trace = load_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path)
        assert trace.n_jobs == 84
        assert not trace.skipped

    def test_known_traces_point_at_gzipped_swf(self):
        for name, url in KNOWN_TRACES.items():
            assert url.startswith("https://"), name
            assert url.endswith(".swf.gz"), name

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"


def _flaky_urlopen(monkeypatch, failures: int, exc_factory=None):
    """Make ``urlopen`` fail ``failures`` times, then pass through.

    Returns the list of sleeps the retry loop performed (the backoff
    schedule) — the sleep hook is patched so no test actually waits.
    """
    sleeps = []
    monkeypatch.setattr(swf_module, "_sleep", sleeps.append)
    real = urllib.request.urlopen
    state = {"left": failures}

    def sometimes(url, *args, **kwargs):
        if state["left"] > 0:
            state["left"] -= 1
            raise (exc_factory() if exc_factory
                   else urllib.error.URLError("connection reset"))
        return real(url, *args, **kwargs)

    monkeypatch.setattr(urllib.request, "urlopen", sometimes)
    return sleeps


class TestFetchRetry:
    """Transient download failures are retried with exponential backoff."""

    def test_first_attempt_failure_is_retried(self, tmp_path, monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=1)
        target = fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path)
        assert target.read_text() == SAMPLE.read_text()
        assert sleeps == [1.0]  # one backoff before the winning attempt

    def test_backoff_schedule_is_exponential(self, tmp_path, monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=2)
        fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path,
                    retries=3, backoff=0.5)
        assert sleeps == [0.5, 1.0]

    def test_exhausted_retries_raise_with_attempt_count(self, tmp_path,
                                                        monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=99)
        with pytest.raises(ConfigurationError, match="after 3 attempts"):
            fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path,
                        retries=3)
        # No sleep after the final failure.
        assert sleeps == [1.0, 2.0]
        # No partial file polluted the cache either.
        assert list(tmp_path.iterdir()) == []

    def test_timeout_oserror_is_retried(self, tmp_path, monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=1,
                                exc_factory=lambda: TimeoutError("timed out"))
        target = fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path)
        assert target.read_text() == SAMPLE.read_text()
        assert sleeps == [1.0]

    def test_non_network_errors_are_not_retried(self, tmp_path, monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=99,
                                exc_factory=lambda: ValueError("bug"))
        with pytest.raises(ValueError):
            fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path)
        assert sleeps == []

    def test_invalid_retry_count_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            fetch_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path,
                        retries=0)

    def test_load_trace_forwards_retry_knobs(self, tmp_path, monkeypatch):
        sleeps = _flaky_urlopen(monkeypatch, failures=1)
        trace = load_trace(SAMPLE.resolve().as_uri(), cache_dir=tmp_path,
                           retries=2, backoff=0.25)
        assert trace.n_jobs == 84
        assert sleeps == [0.25]
