"""Property-based tests (hypothesis) for the page cache data structures.

These tests drive the LRU lists and the Memory Manager with randomly
generated operation sequences and check the structural invariants that the
simulation results rely on:

* list accounting always matches the blocks actually stored;
* the two-list balance invariant (active <= 2 x inactive) holds;
* memory accounting is conservative: free + cached + anonymous == total;
* flushing and eviction never create or destroy cached bytes out of thin
  air (other than the intended removal).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Environment
from repro.pagecache.block import Block
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.lru import PageCacheLists
from repro.pagecache.memory_manager import MemoryManager
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, MB, MBps

# ---------------------------------------------------------------------------
# LRU list properties
# ---------------------------------------------------------------------------

lru_operation = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 4), st.floats(1.0, 500.0),
              st.booleans()),
    st.tuples(st.just("promote"), st.integers(0, 50)),
    st.tuples(st.just("remove"), st.integers(0, 50)),
    st.tuples(st.just("balance"), st.just(0)),
)


@settings(max_examples=60, deadline=None)
@given(operations=st.lists(lru_operation, min_size=1, max_size=40))
def test_lru_lists_invariants_under_random_operations(operations):
    lists = PageCacheLists()
    clock = [0.0]

    for operation in operations:
        clock[0] += 1.0
        kind = operation[0]
        if kind == "add":
            _, file_index, size, dirty = operation
            lists.add_to_inactive(
                Block(f"file{file_index}", size, entry_time=clock[0], dirty=dirty)
            )
        elif kind == "promote":
            _, index = operation
            if len(lists.inactive) > 0:
                block = lists.inactive.blocks[index % len(lists.inactive)]
                lists.promote(block, now=clock[0])
        elif kind == "remove":
            _, index = operation
            blocks = lists.all_blocks()
            if blocks:
                lists.remove(blocks[index % len(blocks)])
        elif kind == "balance":
            lists.balance()

        # Accounting matches the actual block contents.
        lists.assert_consistent()
        # Dirty data never exceeds the total cached data.
        assert lists.dirty_size <= lists.size + 1e-6
        # Per-file accounting sums to the total.
        assert sum(lists.files().values()) == pytest.approx(lists.size)

    # The two-list balance invariant holds after the final balance call.
    lists.balance()
    assert lists.active.size <= 2 * lists.inactive.size + 1e-6


# ---------------------------------------------------------------------------
# Memory manager properties
# ---------------------------------------------------------------------------

mm_operation = st.one_of(
    st.tuples(st.just("read"), st.integers(0, 3), st.floats(10.0, 2000.0)),
    st.tuples(st.just("write"), st.integers(0, 3), st.floats(10.0, 2000.0)),
    st.tuples(st.just("anon"), st.floats(1.0, 500.0)),
    st.tuples(st.just("release"), st.just(0)),
    st.tuples(st.just("evict"), st.floats(1.0, 2000.0)),
    st.tuples(st.just("flush"), st.floats(1.0, 2000.0)),
)


@settings(max_examples=40, deadline=None)
@given(operations=st.lists(mm_operation, min_size=1, max_size=30))
def test_memory_manager_accounting_invariants(operations):
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=10 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    mm = MemoryManager(env, memory, PageCacheConfig(periodic_flushing=False))

    def driver():
        for operation in operations:
            kind = operation[0]
            if kind == "read":
                _, file_index, size_mb = operation
                filename = f"file{file_index}"
                amount = size_mb * MB
                # Model an application read: cache what is not cached yet,
                # then read the cached part.
                uncached = max(0.0, amount - mm.cached_amount(filename))
                if uncached > 0 and mm.free_mem >= uncached:
                    mm.add_to_cache(filename, uncached, disk)
                yield from mm.read_from_cache(filename, amount)
            elif kind == "write":
                _, file_index, size_mb = operation
                amount = size_mb * MB
                if mm.free_mem >= amount:
                    yield from mm.write_to_cache(f"file{file_index}", amount, disk)
            elif kind == "anon":
                _, size_mb = operation
                amount = size_mb * MB
                if mm.free_mem >= amount:
                    mm.use_anonymous_memory(amount, owner="app")
            elif kind == "release":
                mm.release_anonymous_memory(owner="app")
            elif kind == "evict":
                _, size_mb = operation
                mm.evict(size_mb * MB)
            elif kind == "flush":
                _, size_mb = operation
                yield from mm.flush(size_mb * MB)

            # Invariants after every operation.
            mm.assert_consistent()
            assert mm.dirty <= mm.cached + 1e-6
            assert mm.cached <= mm.total_memory + 1e-6
            assert mm.anonymous >= 0
            assert (
                mm.lists.active.size
                <= 2 * mm.lists.inactive.size + 1e-6
            )

    process = env.process(driver())
    env.run(until=process)


@settings(max_examples=40, deadline=None)
@given(
    write_amounts=st.lists(st.floats(10.0, 1000.0), min_size=1, max_size=10),
    flush_request=st.floats(1.0, 20000.0),
)
def test_flush_conserves_cached_bytes_and_clears_dirty(write_amounts, flush_request):
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=50 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    mm = MemoryManager(env, memory, PageCacheConfig(periodic_flushing=False))

    def driver():
        total_written = 0.0
        for index, amount_mb in enumerate(write_amounts):
            amount = amount_mb * MB
            yield from mm.write_to_cache(f"file{index}", amount, disk)
            total_written += amount
        cached_before = mm.cached
        dirty_before = mm.dirty
        flushed = yield from mm.flush(flush_request * MB)
        # Flushing changes dirtiness, never the amount of cached data.
        assert mm.cached == pytest.approx(cached_before)
        assert flushed == pytest.approx(dirty_before - mm.dirty)
        assert flushed <= dirty_before + 1e-6
        # The disk received exactly the flushed amount.
        assert disk.bytes_written == pytest.approx(flushed)

    process = env.process(driver())
    env.run(until=process)


@settings(max_examples=40, deadline=None)
@given(
    cached_files=st.lists(st.floats(10.0, 1000.0), min_size=1, max_size=8),
    evict_request=st.floats(1.0, 10000.0),
)
def test_evict_frees_exactly_what_it_reports(cached_files, evict_request):
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=50 * GB)
    disk = Disk.symmetric(env, "ssd", 100 * MBps)
    mm = MemoryManager(env, memory, PageCacheConfig(periodic_flushing=False))

    for index, amount_mb in enumerate(cached_files):
        mm.add_to_cache(f"file{index}", amount_mb * MB, disk)

    cached_before = mm.cached
    free_before = mm.free_mem
    evicted = mm.evict(evict_request * MB)
    assert evicted <= evict_request * MB + 1e-6
    assert mm.cached == pytest.approx(cached_before - evicted, abs=1e-3)
    assert mm.free_mem == pytest.approx(free_before + evicted, abs=1e-3)
    mm.assert_consistent()


# ---------------------------------------------------------------------------
# Block splitting properties
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    size=st.floats(min_value=1.0, max_value=1e12),
    fraction=st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
)
def test_block_split_conserves_size_and_metadata(size, fraction):
    block = Block("f", size, entry_time=3.0, last_access=7.0, dirty=True)
    first_size = size * fraction
    if not (0 < first_size < size):
        return  # degenerate floating point corner, nothing to check
    first, second = block.split(first_size)
    assert first.size + second.size == pytest.approx(size)
    for part in (first, second):
        assert part.entry_time == block.entry_time
        assert part.last_access == block.last_access
        assert part.dirty == block.dirty
        assert part.filename == block.filename
