"""Regenerate the experiment-output golden (``tests/data/experiment_golden.json``).

Captures the headline numbers (makespans, hit ratios, slowdowns) of cheap
experiment configurations.  The committed file was recorded from the
pre-refactor tree, so the parity suite certifies that the hot-path rewrite
left every experiment output bit-identical (within float tolerance)::

    PYTHONPATH=src:tests python tests/record_experiment_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.exp2_concurrent import run_exp2
from repro.experiments.exp6_cluster import run_exp6
from repro.experiments.exp7_trace_replay import run_exp7
from repro.units import GB, MB


def collect() -> dict:
    golden: dict = {}

    exp2 = run_exp2("wrench-cache", 8, input_size=3 * GB, chunk_size=100 * MB,
                    nfs=False)
    golden["exp2_cache_local_8"] = {
        "makespan": exp2.makespan,
        "read_time": exp2.read_time,
        "write_time": exp2.write_time,
    }
    exp2_nfs = run_exp2("wrench-cache", 4, input_size=3 * GB,
                        chunk_size=100 * MB, nfs=True)
    golden["exp2_cache_nfs_4"] = {
        "makespan": exp2_nfs.makespan,
        "read_time": exp2_nfs.read_time,
        "write_time": exp2_nfs.write_time,
    }

    for placement in ("round-robin", "cache"):
        point = run_exp6(placement)
        golden[f"exp6_{placement}"] = {
            "makespan": point.makespan,
            "cache_hit_ratio": point.cache_hit_ratio,
            "mean_wait_time": point.mean_wait_time,
            "mean_bounded_slowdown": point.mean_bounded_slowdown,
            "utilization": point.utilization,
        }

    for policy in ("fifo", "preemptive-priority"):
        point = run_exp7(policy, load_factor=40.0)
        golden[f"exp7_{policy}"] = {
            "makespan": point.makespan,
            "cache_hit_ratio": point.cache_hit_ratio,
            "mean_bounded_slowdown": point.mean_bounded_slowdown,
            "high_prio_slowdown": point.high_priority.mean_bounded_slowdown,
            "high_prio_wait": point.high_priority.mean_wait_time,
            "n_preemptions": point.n_preemptions,
        }
    return golden


def main() -> None:
    golden = collect()
    out = Path(__file__).parent / "data" / "experiment_golden.json"
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"recorded {len(golden)} experiment points -> {out}")


if __name__ == "__main__":
    main()
