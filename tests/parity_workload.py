"""Deterministic randomized page-cache workload for the parity suite.

The LRU rewrite (intrusive linked list, per-file/state indexes, extent
coalescing) must keep the *observable* simulation semantics bit-identical.
This module drives a seeded random mix of chunked reads, writeback writes,
explicit evictions, foreground flushes and file invalidations through a
:class:`~repro.pagecache.memory_manager.MemoryManager` +
:class:`~repro.pagecache.io_controller.IOController` pair and records, after
every operation, the byte-level state an experiment could observe:

* simulated time (flush/eviction order changes I/O time, so any ordering
  divergence shows up here);
* free / cached / dirty / clean bytes and the per-list split;
* per-file cached bytes across both lists (evicting block A before block B
  changes which *file* loses bytes — this pins the eviction order without
  depending on the block structure, which coalescing legitimately changes);
* the cumulative cache statistics (hit/miss/flushed/evicted bytes).

The golden trace (``tests/data/pagecache_golden.json``) was recorded from
the pre-refactor list-of-Blocks implementation; the parity test replays the
same workload on the current implementation and compares states.
"""

from __future__ import annotations

from typing import Dict, List

from repro.des import Environment
from repro.pagecache import IOController, MemoryManager, PageCacheConfig
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.rng import DeterministicRNG
from repro.units import GB, MB, MBps

#: Bump when the workload script changes (golden traces must be
#: regenerated with ``python -m tests.record_parity_golden``).
WORKLOAD_VERSION = 1

#: Operation mix (weights are relative).
_OPS = (
    ("read", 5),
    ("write", 4),
    ("evict", 1),
    ("flush", 1),
    ("invalidate", 1),
)


def _snapshot(env: Environment, mm: MemoryManager) -> Dict[str, object]:
    """Byte-level observable state (independent of block structure)."""
    lists = mm.lists
    per_file = {
        name: round(size, 3) for name, size in sorted(lists.files().items())
    }
    stats = mm.stats
    return {
        "now": round(env.now, 9),
        "free": round(mm.free_mem, 3),
        "cached": round(mm.cached, 3),
        "dirty": round(mm.dirty, 3),
        "inactive_size": round(lists.inactive.size, 3),
        "inactive_dirty": round(lists.inactive.dirty_size, 3),
        "active_size": round(lists.active.size, 3),
        "active_dirty": round(lists.active.dirty_size, 3),
        "per_file": per_file,
        "hit_bytes": round(stats.cache_hit_bytes, 3),
        "miss_bytes": round(stats.cache_miss_bytes, 3),
        "flushed_bytes": round(stats.flushed_bytes, 3),
        "bg_flushed_bytes": round(stats.background_flushed_bytes, 3),
        "evicted_bytes": round(stats.evicted_bytes, 3),
        "hit_ratio": round(stats.hit_ratio, 9),
    }


def run_parity_workload(seed: int = 2021, n_ops: int = 120, *,
                        memory_size: float = 4 * GB,
                        periodic_flushing: bool = True,
                        evict_from_active: bool = False,
                        coalesce_extents=None,
                        eviction_policy=None,
                        ) -> List[Dict[str, object]]:
    """Run the seeded workload and return the per-operation state trace.

    The memory is deliberately small relative to the working set so that
    reads and writes constantly trigger flushing and eviction (the code
    paths whose ordering the parity suite pins down).

    ``coalesce_extents`` is forwarded to :class:`PageCacheConfig` when
    given, exercising the deprecation shim: the extent cache coalesces
    losslessly and unconditionally, so the flag must not change a single
    byte of the trace.

    ``eviction_policy`` is forwarded when given (the default ``None``
    keeps the config construction identical to the pre-policy-API code):
    passing an explicit ``LRUPolicy`` instance must reproduce the golden
    byte for byte, pinning the policy interface's default dispatch.
    """
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 2000 * MBps, size=memory_size)
    disk = Disk.symmetric(env, "disk", 200 * MBps)
    config_kwargs = {}
    if coalesce_extents is not None:
        config_kwargs["coalesce_extents"] = coalesce_extents
    if eviction_policy is not None:
        config_kwargs["eviction_policy"] = eviction_policy
    config = PageCacheConfig(
        chunk_size=64 * MB,
        periodic_flushing=periodic_flushing,
        evict_from_active=evict_from_active,
        # Short expiration/interval so the background flusher interleaves
        # with foreground I/O inside the workload's time horizon.
        dirty_expire=3.0,
        writeback_interval=1.0,
        **config_kwargs,
    )
    mm = MemoryManager(env, memory, config, name="parity-mm")
    io = IOController(env, mm)

    rng = DeterministicRNG(seed)
    op_rng = rng.spawn("ops")
    file_rng = rng.spawn("files")
    size_rng = rng.spawn("sizes")
    amount_rng = rng.spawn("amounts")

    files = [f"file{i}" for i in range(8)]
    # File sizes between 256 MB and 1.5 GB: several files exceed what the
    # cache can hold together, forcing evictions.
    file_sizes = {
        name: size_rng.uniform(256 * MB, 1.5 * GB) for name in files
    }

    weights = []
    for op, weight in _OPS:
        weights.extend([op] * weight)

    trace: List[Dict[str, object]] = []

    def driver():
        for _ in range(n_ops):
            op = op_rng.choice(weights)
            filename = file_rng.choice(files)
            size = file_sizes[filename]
            if op == "read":
                yield from io.read_file(
                    filename, size, disk, use_anonymous_memory=False
                )
            elif op == "write":
                yield from io.write_file(filename, size, disk)
            elif op == "evict":
                mm.evict(amount_rng.uniform(64 * MB, 1 * GB))
            elif op == "flush":
                yield from mm.flush(amount_rng.uniform(64 * MB, 1 * GB))
            elif op == "invalidate":
                mm.invalidate_file(filename)
            mm.lists.assert_consistent()
            trace.append(_snapshot(env, mm))
        mm.stop()

    process = env.process(driver(), name="parity-driver")
    env.run(until=process)
    return trace
