"""Tests of the Exp 9 failure/elasticity experiment.

Small cells only: the contract under test is the fault-tolerance
invariant (every submitted job completes), per-seed determinism across
worker counts, the zero-fault baseline matching the plain run, and the
report rendering — not the headline numbers, which live in ROADMAP.md.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exp9_failures import (
    EXP9_MTBFS,
    EXP9_WORKLOADS,
    build_fault_plan,
    exp9_report,
    exp9_series,
    run_exp9,
)
from repro.experiments.runner import EXPERIMENTS

#: Small exp6 cell reused by most tests (seconds, not minutes).
SMALL = dict(n_jobs=20, n_nodes=3, n_datasets=6)


def _sim_fields(point) -> dict:
    """All simulated (deterministic) fields — wallclock excluded."""
    fields = dataclasses.asdict(point)
    fields.pop("wallclock_time")
    return fields


class TestBuildFaultPlan:
    def test_none_mtbf_without_extras_is_the_zero_plan(self):
        assert build_fault_plan(None).is_zero

    def test_mtbf_yields_wildcard_node_faults(self):
        plan = build_fault_plan(60.0, mttr=5.0)
        assert not plan.is_zero
        (spec,) = plan.node_faults
        assert spec.node == "*"
        assert spec.mtbf == 60.0
        assert spec.mttr == 5.0

    def test_stragglers_and_elastic_ride_along(self):
        plan = build_fault_plan(None, stragglers=True,
                                elastic_nodes=("node4",), elastic_join=3.0)
        assert not plan.is_zero
        assert plan.stragglers and plan.elastic
        assert plan.elastic[0].node == "node4"


class TestRunExp9:
    def test_registered_in_runner(self):
        assert "exp9" in EXPERIMENTS

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown exp9 workload"):
            run_exp9("exp99")
        assert set(EXP9_WORKLOADS) == {"exp6", "exp7"}

    def test_all_jobs_complete_under_crashes(self):
        point = run_exp9("exp6", mtbf=15.0, mttr=3.0, **SMALL)
        assert point.all_jobs_completed
        assert point.n_node_failures > 0
        assert point.n_job_restarts > 0
        assert point.lost_work_seconds > 0.0

    def test_faulty_run_is_deterministic(self):
        first = run_exp9("exp6", mtbf=15.0, mttr=3.0, **SMALL)
        second = run_exp9("exp6", mtbf=15.0, mttr=3.0, **SMALL)
        assert _sim_fields(first) == _sim_fields(second)

    def test_zero_fault_baseline_matches_plain_exp6(self):
        from repro.experiments.exp6_cluster import run_exp6

        baseline = run_exp9("exp6", mtbf=None, **SMALL)
        plain = run_exp6("cache", **SMALL)
        assert baseline.makespan == plain.makespan
        assert baseline.cache_hit_ratio == plain.cache_hit_ratio
        assert baseline.n_node_failures == 0
        assert baseline.n_job_restarts == 0

    def test_crashes_degrade_makespan(self):
        baseline = run_exp9("exp6", mtbf=None, **SMALL)
        faulty = run_exp9("exp6", mtbf=10.0, mttr=5.0, **SMALL)
        assert faulty.n_node_failures > 0
        assert faulty.makespan > baseline.makespan

    def test_exp7_workload_completes_under_crashes(self):
        point = run_exp9("exp7", mtbf=60.0, max_jobs=30, n_nodes=4)
        assert point.workload == "exp7"
        assert point.all_jobs_completed

    def test_straggler_and_elastic_flags(self):
        point = run_exp9("exp6", mtbf=30.0, stragglers=True, elastic=True,
                         elastic_join=2.0, elastic_leave=30.0, **SMALL)
        assert point.stragglers and point.elastic
        assert point.all_jobs_completed


class TestSeriesAndReport:
    def test_series_is_worker_count_independent(self):
        mtbfs = (None, 20.0)
        serial = exp9_series(mtbfs, workers=1, **SMALL)
        pooled = exp9_series(mtbfs, workers=2, **SMALL)
        assert list(serial) == list(pooled) == list(mtbfs)
        for key in serial:
            assert _sim_fields(serial[key]) == _sim_fields(pooled[key])

    def test_report_renders_with_baseline_ratio(self):
        points = exp9_series((None, 20.0), workers=1, **SMALL)
        table = exp9_report(points)
        assert "Exp 9" in table
        assert "MTBF" in table
        assert "vs baseline" in table
        assert "inf" in table  # the fault-free row

    def test_default_mtbf_grid_contains_the_baseline(self):
        assert EXP9_MTBFS[0] is None
