"""Parity suite: the LRU rewrite must be observationally identical.

The golden traces in ``tests/data/`` were recorded from the pre-refactor
list-of-Blocks implementation (see ``tests/record_parity_golden.py`` /
``tests/record_experiment_golden.py``).  These tests replay the same
seeded workloads and experiment configurations on the current
implementation and require byte-identical behaviour (within the float
tolerances the accounting itself guarantees): hit ratios, dirty sizes,
per-file cache content — which pins the eviction order — and simulated
time after every operation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from parity_workload import WORKLOAD_VERSION, run_parity_workload
from record_parity_golden import SCENARIOS

DATA_DIR = Path(__file__).parent / "data"

#: Relative tolerance for golden comparisons.  The golden values are
#: rounded to 1e-3 bytes / 1e-9 ratios at recording time; the structures
#: may legally differ by accumulated float drift below that.
REL = 1e-6
ABS = 2e-3


def _load(name: str) -> dict:
    return json.loads((DATA_DIR / name).read_text())


@pytest.fixture(scope="module")
def golden() -> dict:
    return _load("pagecache_golden.json")


class TestWorkloadParity:
    def test_golden_matches_workload_version(self, golden):
        assert golden["workload_version"] == WORKLOAD_VERSION, (
            "the parity workload changed; regenerate the golden with "
            "`PYTHONPATH=src:tests python tests/record_parity_golden.py` "
            "run on a known-good implementation"
        )

    @pytest.mark.parametrize(
        "variant", ["default", "deprecated-knob", "lru-policy-object"]
    )
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_trace_parity(self, golden, scenario, variant):
        """Replays match the pre-extent golden byte for byte.

        The extent-run cache coalesces losslessly and unconditionally, so
        the replay must be bit-identical to the golden recorded from the
        one-block-per-node implementation.  The ``deprecated-knob``
        variant passes the retired ``coalesce_extents`` flag through the
        deprecation shim; the ``lru-policy-object`` variant routes victim
        selection through an explicit
        :class:`~repro.pagecache.policy.LRUPolicy` instance — both must
        reproduce the exact same trace.
        """
        expected = golden["scenarios"][scenario]
        if variant == "default":
            actual = run_parity_workload(**SCENARIOS[scenario])
        elif variant == "lru-policy-object":
            from repro.pagecache.policy import LRUPolicy

            actual = run_parity_workload(eviction_policy=LRUPolicy(),
                                         **SCENARIOS[scenario])
        else:
            with pytest.warns(DeprecationWarning, match="coalesce_extents"):
                actual = run_parity_workload(coalesce_extents=True,
                                             **SCENARIOS[scenario])
        assert len(actual) == len(expected)
        for step, (got, want) in enumerate(zip(actual, expected)):
            assert set(got) == set(want), f"step {step}"
            for key, want_value in want.items():
                got_value = got[key]
                if key == "per_file":
                    assert sorted(got_value) == sorted(want_value), (
                        f"step {step}: cached file set diverged"
                    )
                    for name, size in want_value.items():
                        assert got_value[name] == pytest.approx(
                            size, rel=REL, abs=ABS
                        ), f"step {step}: per-file bytes of {name!r}"
                else:
                    assert got_value == pytest.approx(
                        want_value, rel=REL, abs=ABS
                    ), f"step {step}: {key}"


class TestExperimentParity:
    """Headline experiment outputs are unchanged by the rewrite."""

    @pytest.fixture(scope="class")
    def experiment_golden(self) -> dict:
        return _load("experiment_golden.json")

    def test_exp2_local(self, experiment_golden):
        from repro.experiments.exp2_concurrent import run_exp2
        from repro.units import GB, MB

        point = run_exp2("wrench-cache", 8, input_size=3 * GB,
                         chunk_size=100 * MB, nfs=False)
        want = experiment_golden["exp2_cache_local_8"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.read_time == pytest.approx(want["read_time"], rel=REL)
        assert point.write_time == pytest.approx(want["write_time"], rel=REL)

    def test_exp2_nfs(self, experiment_golden):
        from repro.experiments.exp2_concurrent import run_exp2
        from repro.units import GB, MB

        point = run_exp2("wrench-cache", 4, input_size=3 * GB,
                         chunk_size=100 * MB, nfs=True)
        want = experiment_golden["exp2_cache_nfs_4"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.read_time == pytest.approx(want["read_time"], rel=REL)
        assert point.write_time == pytest.approx(want["write_time"], rel=REL)

    @pytest.mark.parametrize("placement", ["round-robin", "cache"])
    def test_exp6(self, experiment_golden, placement):
        from repro.experiments.exp6_cluster import run_exp6

        point = run_exp6(placement)
        want = experiment_golden[f"exp6_{placement}"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.cache_hit_ratio == pytest.approx(
            want["cache_hit_ratio"], rel=REL
        )
        assert point.mean_wait_time == pytest.approx(
            want["mean_wait_time"], rel=REL, abs=1e-9
        )
        assert point.mean_bounded_slowdown == pytest.approx(
            want["mean_bounded_slowdown"], rel=REL
        )
        assert point.utilization == pytest.approx(want["utilization"], rel=REL)

    @pytest.mark.parametrize("policy", ["fifo", "preemptive-priority"])
    def test_exp7(self, experiment_golden, policy):
        from repro.experiments.exp7_trace_replay import run_exp7

        point = run_exp7(policy, load_factor=40.0)
        want = experiment_golden[f"exp7_{policy}"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.cache_hit_ratio == pytest.approx(
            want["cache_hit_ratio"], rel=REL
        )
        assert point.mean_bounded_slowdown == pytest.approx(
            want["mean_bounded_slowdown"], rel=REL
        )
        assert point.high_priority.mean_bounded_slowdown == pytest.approx(
            want["high_prio_slowdown"], rel=REL
        )
        assert point.high_priority.mean_wait_time == pytest.approx(
            want["high_prio_wait"], rel=REL, abs=1e-9
        )
        assert point.n_preemptions == want["n_preemptions"]

    def test_exp6_zero_fault_plan_replays_golden(self, experiment_golden):
        # The fault-injection layer's parity contract: a zero FaultPlan
        # enables no fault machinery, so the run replays the golden
        # numbers exactly as if no plan had been passed at all.
        from repro.experiments.exp6_cluster import run_exp6
        from repro.faults import FaultPlan

        point = run_exp6("cache", fault_plan=FaultPlan())
        want = experiment_golden["exp6_cache"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.cache_hit_ratio == pytest.approx(
            want["cache_hit_ratio"], rel=REL
        )
        assert point.mean_wait_time == pytest.approx(
            want["mean_wait_time"], rel=REL, abs=1e-9
        )
        assert point.mean_bounded_slowdown == pytest.approx(
            want["mean_bounded_slowdown"], rel=REL
        )
        assert point.utilization == pytest.approx(want["utilization"], rel=REL)
        assert point.n_node_failures == 0
        assert point.n_job_restarts == 0

    def test_exp7_zero_fault_plan_replays_golden(self, experiment_golden):
        from repro.experiments.exp7_trace_replay import run_exp7
        from repro.faults import FaultPlan

        point = run_exp7("preemptive-priority", load_factor=40.0,
                         fault_plan=FaultPlan())
        want = experiment_golden["exp7_preemptive-priority"]
        assert point.makespan == pytest.approx(want["makespan"], rel=REL)
        assert point.cache_hit_ratio == pytest.approx(
            want["cache_hit_ratio"], rel=REL
        )
        assert point.mean_bounded_slowdown == pytest.approx(
            want["mean_bounded_slowdown"], rel=REL
        )
        assert point.n_preemptions == want["n_preemptions"]
        assert point.n_node_failures == 0
