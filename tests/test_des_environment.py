"""Unit tests for the simulation environment and run loop."""

import pytest

from repro.des import Environment, EmptySchedule


class TestClockAndQueue:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=10.0).now == 10.0

    def test_peek_empty_queue(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(4.0)
        env.timeout(2.0)
        assert env.peek() == 2.0

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_queue_size(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.queue_size == 2

    def test_events_processed_in_time_order(self, env):
        order = []

        def proc(env, delay, label):
            yield env.timeout(delay)
            order.append(label)

        env.process(proc(env, 3.0, "c"))
        env.process(proc(env, 1.0, "a"))
        env.process(proc(env, 2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, env):
        order = []

        def proc(env, label):
            yield env.timeout(1.0)
            order.append(label)

        for label in "abc":
            env.process(proc(env, label))
        env.run()
        assert order == ["a", "b", "c"]


class TestRun:
    def test_run_until_time(self, env):
        ticks = []

        def clock(env):
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(clock(env))
        env.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2.0)
            return "result"

        process = env.process(proc(env))
        assert env.run(until=process) == "result"
        assert env.now == 2.0

    def test_run_until_past_time_rejected(self, env):
        env.timeout(1.0)
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_run_without_until_drains_queue(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        env.run()
        assert env.now == 2.0
        assert env.queue_size == 0

    def test_run_until_never_triggered_event_raises(self, env):
        pending = env.event()
        env.timeout(1.0)
        with pytest.raises(RuntimeError, match="before the awaited event"):
            env.run(until=pending)

    def test_run_until_already_processed_event(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return 13

        process = env.process(proc(env))
        env.run()
        # The process already finished; running until it must return at once.
        assert env.run(until=process) == 13

    def test_active_process_outside_run_is_none(self, env):
        assert env.active_process is None

    def test_active_process_inside_process(self, env, runner):
        def proc(env):
            yield env.timeout(0.0)
            return env.active_process

        process = env.process(proc(env))
        result = env.run(until=process)
        assert result is process
