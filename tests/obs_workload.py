"""Shared workload for the telemetry tests (golden export + parity).

A small Exp 6-style cluster run: a few seeded batch jobs over two cached
nodes, with both the memory-profile tracer and the DES sampler active.
Small enough to run in well under a second, rich enough to exercise every
span category the exporter pins (jobs, operations, file I/O, flows, DES
processes) plus the sampled counter tracks.

Bump ``WORKLOAD_VERSION`` whenever the workload itself changes, and
regenerate the golden with ``tests/record_obs_golden.py``.
"""

from __future__ import annotations

from repro.experiments.exp6_cluster import build_cluster_workload
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.units import MB

WORKLOAD_VERSION = 1


def build_small_exp6(observe=False) -> Simulation:
    """A 6-job / 2-node cluster simulation (not yet run)."""
    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback",
            chunk_size=4 * MB,
            trace_interval=1.0,
        ),
        observe=observe,
    )
    simulation.create_cluster_platform(
        2, cores_per_node=4, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(policy="fifo", placement="cache")
    build_cluster_workload(
        simulation,
        n_jobs=6,
        n_datasets=3,
        input_size=64 * MB,
        output_size=16 * MB,
        arrival_rate=1.0,
        seed=7,
    )
    return simulation


def run_observed_exp6():
    """Run the small workload with telemetry on; returns (result, observer)."""
    simulation = build_small_exp6(observe=True)
    result = simulation.run()
    return result, result.observer


def result_fingerprint(result) -> dict:
    """Everything simulated (no wall-clock) as a canonical structure.

    Used by the parity test: two runs are considered identical when this
    structure serializes to the same JSON bytes.  ``wallclock_time`` and
    the observer are deliberately excluded — they are the only fields a
    telemetry toggle is allowed to change.
    """
    return {
        "makespan": result.makespan,
        "operations": [record.as_dict() for record in result.operations],
        "memory_trace": [snap.as_dict() for snap in result.memory_trace],
        "cache_stats": {
            host: stats.as_dict() for host, stats in result.cache_stats.items()
        },
        "app_makespans": result.app_makespans,
        "scheduler": (
            result.scheduler.as_dict() if result.scheduler is not None else None
        ),
    }
