"""Unit tests for error metrics and calibration tables."""

import pytest

from repro.experiments.calibration import (
    TABLE1_SYNTHETIC,
    TABLE2_NIGHRES,
    TABLE3_BANDWIDTHS,
    real_bandwidths,
    simulator_bandwidths,
    table1_rows,
    table2_rows,
)
from repro.experiments.metrics import (
    absolute_relative_error,
    error_reduction_factor,
    mean_absolute_relative_error,
    mean_error_percent,
    per_operation_errors,
    relative_error_percent,
)
from repro.units import MBps


class TestMetrics:
    def test_absolute_relative_error(self):
        assert absolute_relative_error(150.0, 100.0) == pytest.approx(0.5)
        assert absolute_relative_error(50.0, 100.0) == pytest.approx(0.5)
        assert absolute_relative_error(0.0, 0.0) == 0.0
        assert absolute_relative_error(1.0, 0.0) == float("inf")

    def test_relative_error_percent(self):
        assert relative_error_percent(200.0, 100.0) == pytest.approx(100.0)

    def test_mean_absolute_relative_error(self):
        assert mean_absolute_relative_error([110, 90], [100, 100]) == pytest.approx(0.1)

    def test_mean_skips_zero_references(self):
        assert mean_absolute_relative_error([110, 5], [100, 0]) == pytest.approx(0.1)

    def test_mean_errors_on_bad_input(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([1], [1, 2])
        with pytest.raises(ValueError):
            mean_absolute_relative_error([1], [0])

    def test_per_operation_errors(self):
        errors = per_operation_errors(
            {"Read 1": 10.0, "Write 1": 30.0},
            {"Read 1": 20.0, "Write 1": 20.0, "Read 2": 5.0},
        )
        assert errors == {
            "Read 1": pytest.approx(50.0),
            "Write 1": pytest.approx(50.0),
        }

    def test_mean_error_percent_ignores_inf(self):
        assert mean_error_percent([10.0, float("inf"), 30.0]) == pytest.approx(20.0)
        assert mean_error_percent([]) == 0.0

    def test_error_reduction_factor(self):
        assert error_reduction_factor([300.0], [30.0]) == pytest.approx(10.0)
        assert error_reduction_factor([300.0], [0.0]) == float("inf")


class TestCalibrationTables:
    def test_table1_matches_paper(self):
        assert TABLE1_SYNTHETIC[20.0] == 28.0
        assert table1_rows()[0] == (3.0, 4.4)
        assert len(table1_rows()) == 5

    def test_table2_matches_paper(self):
        assert len(TABLE2_NIGHRES) == 4
        rows = table2_rows()
        assert rows[1][0] == "tissue_classification"
        assert rows[1][1] == pytest.approx(197.0)
        assert rows[1][2] == pytest.approx(1376.0)
        assert rows[1][3] == pytest.approx(614.0)

    def test_table3_simulator_values_are_means(self):
        table = TABLE3_BANDWIDTHS
        assert table.memory.symmetric_mean == pytest.approx(4812 * MBps)
        assert table.local_disk.symmetric_mean == pytest.approx(465 * MBps)
        assert table.remote_disk.symmetric_mean == pytest.approx(445 * MBps)
        # The simulator configuration column equals the symmetric means.
        for device in table.devices():
            assert device.simulated == pytest.approx(device.symmetric_mean)

    def test_table3_rows_in_mbps(self):
        rows = TABLE3_BANDWIDTHS.rows()
        assert rows[0] == ("Memory", pytest.approx(6860), pytest.approx(2764),
                           pytest.approx(4812))
        assert len(rows) == 4

    def test_bandwidth_accessors(self):
        sim_bw = simulator_bandwidths()
        assert sim_bw["local_disk"] == pytest.approx(465 * MBps)
        real_bw = real_bandwidths()
        assert real_bw["memory"] == (pytest.approx(6860 * MBps), pytest.approx(2764 * MBps))
