"""Unit tests of the scheduling policies (FIFO, SJF, EASY backfilling)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.platform.host import Host
from repro.scheduler.cluster import NodeState
from repro.scheduler.job import Job
from repro.scheduler.policies import (
    EasyBackfillPolicy,
    FIFOPolicy,
    ShortestJobFirstPolicy,
    make_policy,
)
from repro.simulator.workflow import Task, Workflow


def compute_job(name: str, cpu_time: float, *, cores: int = 1,
                arrival: float = 0.0, job_id: int = 0) -> Job:
    """A compute-only job (no files) with a known runtime estimate."""
    workflow = Workflow(name)
    workflow.add_task(Task(f"{name}_t", flops=cpu_time * 1e9))
    job = Job(workflow, cores=cores, arrival_time=arrival,
              estimated_runtime=cpu_time, label=name)
    job.id = job_id
    return job


def make_node(env, name: str = "n1", cores: int = 4) -> NodeState:
    return NodeState(Host(env, name, cores=cores), storage=None)


class TestJobValidation:
    def test_rejects_bad_cores(self):
        workflow = Workflow("w")
        workflow.add_task(Task("t", flops=1e9))
        with pytest.raises(ConfigurationError):
            Job(workflow, cores=0)
        with pytest.raises(ConfigurationError):
            Job(workflow, arrival_time=-1.0)
        with pytest.raises(ConfigurationError):
            Job(workflow, estimated_runtime=0.0)

    def test_estimate_defaults_to_workflow_cpu_time(self):
        workflow = Workflow("w")
        workflow.add_task(Task("t1", flops=3e9))
        workflow.add_task(Task("t2", flops=2e9))
        assert Job(workflow).estimated_runtime == pytest.approx(5.0)


class TestFIFO:
    def test_orders_by_arrival(self):
        jobs = [
            compute_job("b", 1.0, arrival=2.0, job_id=1),
            compute_job("a", 1.0, arrival=1.0, job_id=0),
            compute_job("c", 1.0, arrival=3.0, job_id=2),
        ]
        ordered = FIFOPolicy().order(jobs)
        assert [job.label for job in ordered] == ["a", "b", "c"]

    def test_head_of_line_blocks(self, env):
        node = make_node(env, cores=4)
        wide = compute_job("wide", 1.0, cores=4, arrival=0.0, job_id=0)
        narrow = compute_job("narrow", 1.0, cores=1, arrival=1.0, job_id=1)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        node.allocate(running)
        # Head needs 4 cores, only 2 free: FIFO must not skip to "narrow".
        assert FIFOPolicy().select([wide, narrow], [node], now=0.0) is None

    def test_selects_fitting_head(self, env):
        node = make_node(env, cores=4)
        job = compute_job("a", 1.0, cores=2, job_id=0)
        decision = FIFOPolicy().select([job], [node], now=0.0)
        assert decision is not None
        assert decision.job is job
        assert decision.allowed_nodes is None


class TestSJF:
    def test_orders_by_estimate_then_arrival(self):
        jobs = [
            compute_job("slow", 9.0, arrival=0.0, job_id=0),
            compute_job("fast", 1.0, arrival=5.0, job_id=1),
            compute_job("fast_early", 1.0, arrival=2.0, job_id=2),
        ]
        ordered = ShortestJobFirstPolicy().order(jobs)
        assert [job.label for job in ordered] == ["fast_early", "fast", "slow"]


class TestEasyBackfill:
    def test_backfills_short_job_under_reservation(self, env):
        node = make_node(env, cores=4)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        node.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        short = compute_job("short", 5.0, cores=2, arrival=1.0, job_id=1)
        long = compute_job("long", 20.0, cores=2, arrival=2.0, job_id=2)

        policy = EasyBackfillPolicy()
        # Head does not fit (2 free), shadow time is 10 (running releases 2).
        # "short" finishes by then and backfills; "long" would overrun the
        # reservation and there is no off-shadow node.
        decision = policy.select([head, short, long], [node], now=0.0)
        assert decision is not None
        assert decision.job is short

        node.allocate(short)
        short.start_time = 0.0
        assert policy.select([head, long], [node], now=0.0) is None

    def test_long_job_may_run_off_the_shadow_node(self, env):
        shadow = make_node(env, "n1", cores=4)
        other = make_node(env, "n2", cores=2)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        shadow.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        long = compute_job("long", 50.0, cores=2, arrival=1.0, job_id=1)

        decision = EasyBackfillPolicy().select([head, long], [shadow, other], now=0.0)
        assert decision is not None
        assert decision.job is long
        assert decision.allowed_nodes == [other]

    def test_earliest_fit_time_accumulates_releases(self, env):
        node = make_node(env, cores=4)
        first = compute_job("first", 5.0, cores=2, job_id=0)
        second = compute_job("second", 8.0, cores=2, job_id=1)
        for job in (first, second):
            job.start_time = 0.0
            node.allocate(job)
        assert node.earliest_fit_time(1, now=2.0) == pytest.approx(5.0)
        assert node.earliest_fit_time(4, now=2.0) == pytest.approx(8.0)
        assert node.earliest_fit_time(8, now=2.0) == float("inf")
        node.release(first)
        node.release(second)
        assert node.earliest_fit_time(3, now=2.0) == pytest.approx(2.0)


class TestRegistry:
    def test_make_policy_by_name(self):
        assert isinstance(make_policy("fifo"), FIFOPolicy)
        assert isinstance(make_policy("sjf"), ShortestJobFirstPolicy)
        assert isinstance(make_policy("easy"), EasyBackfillPolicy)
        assert isinstance(make_policy("easy-backfill"), EasyBackfillPolicy)

    def test_make_policy_passthrough_and_unknown(self):
        policy = FIFOPolicy()
        assert make_policy(policy) is policy
        with pytest.raises(ConfigurationError):
            make_policy("no-such-policy")


class TestEasyBackfillEdgeCases:
    def test_candidate_finishing_exactly_at_reservation_backfills(self, env):
        node = make_node(env, cores=4)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        node.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        # Estimated completion lands exactly on the shadow time (t=10):
        # the reservation is delayed by zero, which EASY must allow.
        exact = compute_job("exact", 10.0, cores=2, arrival=1.0, job_id=1)
        decision = EasyBackfillPolicy().select([head, exact], [node], now=0.0)
        assert decision is not None
        assert decision.job is exact

    def test_candidate_barely_past_reservation_is_rejected(self, env):
        node = make_node(env, cores=4)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        node.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        over = compute_job("over", 10.001, cores=2, arrival=1.0, job_id=1)
        # Past the shadow time and no off-shadow node exists: no backfill.
        assert EasyBackfillPolicy().select([head, over], [node], now=0.0) is None

    def test_off_shadow_backfill_delays_reservation_by_zero(self, env):
        shadow = make_node(env, "n1", cores=4)
        other = make_node(env, "n2", cores=1)
        running = compute_job("running", 10.0, cores=2, job_id=9)
        running.start_time = 0.0
        shadow.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        long = compute_job("long", 1000.0, cores=1, arrival=1.0, job_id=1)
        # The candidate overruns the reservation by far, but it cannot
        # touch the reserved cores at all: the delay it causes is zero.
        decision = EasyBackfillPolicy().select([head, long], [shadow, other], now=0.0)
        assert decision is not None
        assert decision.job is long
        assert decision.allowed_nodes == [other]

    def test_empty_queue_yields_no_decision(self, env):
        node = make_node(env, cores=4)
        assert EasyBackfillPolicy().select([], [node], now=0.0) is None

    def test_reservation_leaves_no_stale_state_once_head_fits(self, env):
        node = make_node(env, cores=4)
        running = compute_job("running", 10.0, cores=4, job_id=9)
        running.start_time = 0.0
        node.allocate(running)

        head = compute_job("head", 5.0, cores=4, job_id=0)
        policy = EasyBackfillPolicy()
        # Blocked: the head holds a reservation behind the running job.
        assert policy.select([head], [node], now=0.0) is None
        # The running job drains; the same policy object must dispatch the
        # head unrestricted (the reservation is recomputed, never cached).
        node.release(running)
        decision = policy.select([head], [node], now=10.0)
        assert decision is not None
        assert decision.job is head
        assert decision.allowed_nodes is None
