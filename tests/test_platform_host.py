"""Unit tests for CPU, Host and the platform builder."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.cpu import CPU
from repro.platform.host import Host
from repro.platform.memory import MemoryDevice
from repro.platform.platform import Platform, PlatformBuilder, concordia_cluster
from repro.platform.storage import Disk
from repro.units import GB, GiB, MBps


class TestCPU:
    def test_invalid_parameters(self, env):
        with pytest.raises(ConfigurationError):
            CPU(env, cores=0)
        with pytest.raises(ConfigurationError):
            CPU(env, speed=0)

    def test_execute_duration(self, env, runner):
        cpu = CPU(env, cores=1, speed=1e9)

        def proc(env):
            yield cpu.execute(4.4e9)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(4.4)

    def test_compute_seconds_helper(self, env, runner):
        cpu = CPU(env, cores=1, speed=1e9)

        def proc(env):
            yield cpu.compute_seconds(2.0)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(2.0)

    def test_tasks_queue_when_cores_busy(self, env):
        cpu = CPU(env, cores=2, speed=1e9)
        finish = []

        def proc(env):
            yield cpu.execute(1e9)
            finish.append(env.now)

        for _ in range(4):
            env.process(proc(env))
        env.run()
        # Two run immediately, the two others wait for a free core.
        assert sorted(finish) == [1.0, 1.0, 2.0, 2.0]

    def test_parallel_tasks_on_enough_cores(self, env):
        cpu = CPU(env, cores=4, speed=1e9)
        finish = []

        def proc(env):
            yield cpu.execute(3e9)
            finish.append(env.now)

        for _ in range(4):
            env.process(proc(env))
        env.run()
        assert finish == [3.0] * 4

    def test_negative_flops_rejected(self, env):
        cpu = CPU(env)
        with pytest.raises(ValueError):
            cpu.execute(-1)

    def test_statistics(self, env, runner):
        cpu = CPU(env, cores=1, speed=1e9)

        def proc(env):
            yield cpu.execute(5e8)
            yield cpu.execute(5e8)

        runner(env, proc(env))
        assert cpu.total_flops == 1e9
        assert cpu.tasks_executed == 2

    def test_duration_of(self, env):
        cpu = CPU(env, speed=2e9)
        assert cpu.duration_of(4e9) == pytest.approx(2.0)


class TestHost:
    def test_disk_registration_and_lookup(self, env):
        host = Host(env, "node1", cores=4)
        disk = Disk.symmetric(env, "ssd", 465 * MBps)
        host.add_disk(disk, mount_point="/local")
        assert host.disk("/local") is disk
        with pytest.raises(ConfigurationError):
            host.disk("/missing")
        with pytest.raises(ConfigurationError):
            host.add_disk(disk, mount_point="/local")

    def test_memory_size_without_memory(self, env):
        host = Host(env, "node1")
        assert host.memory_size == 0.0
        host.set_memory(MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=GiB))
        assert host.memory_size == GiB

    def test_core_and_speed_properties(self, env):
        host = Host(env, "node1", cores=16, speed=2e9)
        assert host.cores == 16
        assert host.speed == 2e9


class TestPlatformBuilder:
    def test_duplicate_host_rejected(self, env):
        builder = PlatformBuilder(env).host("node1")
        with pytest.raises(ConfigurationError):
            builder.host("node1")

    def test_memory_requires_bandwidth(self, env):
        with pytest.raises(ConfigurationError):
            PlatformBuilder(env).host("node1", memory_size=GiB)

    def test_disk_requires_bandwidth(self, env):
        builder = PlatformBuilder(env).host("node1")
        with pytest.raises(ConfigurationError):
            builder.disk("node1", "ssd")

    def test_route_requires_known_link(self, env):
        builder = PlatformBuilder(env).host("a").host("b")
        with pytest.raises(ConfigurationError):
            builder.route("a", "b", ["missing"])

    def test_full_platform(self, env):
        platform = (
            PlatformBuilder(env)
            .host("node1", cores=32, memory_size=250 * GiB,
                  memory_bandwidth=4812 * MBps)
            .disk("node1", "ssd", bandwidth=465 * MBps, capacity=450 * GB,
                  mount_point="/local")
            .host("storage1", memory_size=250 * GiB, memory_bandwidth=4812 * MBps)
            .disk("storage1", "nfs", bandwidth=445 * MBps, mount_point="/export")
            .link("lan", 3000 * MBps)
            .route("node1", "storage1", ["lan"])
            .build()
        )
        assert isinstance(platform, Platform)
        assert len(platform) == 2
        assert platform.host("node1").disk("/local").read_bandwidth == 465 * MBps
        assert platform.network.has_route("storage1", "node1")

    def test_unknown_host_lookup(self, env):
        platform = PlatformBuilder(env).host("node1").build()
        with pytest.raises(ConfigurationError):
            platform.host("node2")


class TestConcordiaCluster:
    def test_default_cluster_shape(self, env):
        platform = concordia_cluster(env)
        assert set(platform.host_names()) == {"node1", "storage1"}
        node = platform.host("node1")
        assert node.cores == 32
        assert node.memory_size == pytest.approx(250 * GiB)
        assert node.disk("/local").read_bandwidth == pytest.approx(465 * MBps)
        storage = platform.host("storage1")
        assert storage.disk("/export").read_bandwidth == pytest.approx(445 * MBps)
        assert platform.network.has_route("node1", "storage1")

    def test_cluster_without_nfs(self, env):
        platform = concordia_cluster(env, with_nfs_server=False)
        assert set(platform.host_names()) == {"node1"}

    def test_multiple_compute_nodes(self, env):
        platform = concordia_cluster(env, compute_nodes=3)
        assert {"node1", "node2", "node3", "storage1"} == set(platform.host_names())
        assert platform.network.has_route("node3", "storage1")

    def test_asymmetric_bandwidths(self, env):
        platform = concordia_cluster(
            env,
            with_nfs_server=False,
            local_disk_read_bandwidth=510 * MBps,
            local_disk_write_bandwidth=420 * MBps,
        )
        disk = platform.host("node1").disk("/local")
        assert disk.read_bandwidth == pytest.approx(510 * MBps)
        assert disk.write_bandwidth == pytest.approx(420 * MBps)
        assert disk.read_channel is not disk.write_channel

    def test_sharing_flag_propagates(self, env):
        platform = concordia_cluster(env, with_nfs_server=False, sharing=False)
        disk = platform.host("node1").disk("/local")
        assert disk.read_channel.sharing is False
