"""Smoke tests of the Exp 10 warm-start sweep cell."""

from __future__ import annotations

import tempfile

from repro.experiments import exp10_report, run_exp10
from repro.experiments.runner import EXPERIMENTS

#: Small enough to run in well under a second; at this scale the warm
#: path has no wall-clock advantage, so the tests assert correctness
#: (warm == cold per variant, enforced by ``check=True``), not speed.
SMALL = dict(n_jobs=16, t_branch=4.0,
             policies=("fifo", "sjf"), placements=("cache",))


class TestRunExp10:
    def test_registered_in_runner(self):
        assert "exp10" in EXPERIMENTS

    def test_small_cell_checks_and_reports(self):
        with tempfile.TemporaryDirectory() as snapshot_dir:
            result = run_exp10(snapshot_dir, **SMALL)
        # check=True already asserted warm == cold per variant inside
        # run_exp10; here we pin the cell's shape and bookkeeping.
        assert set(result.points) == {
            (policy, placement)
            for policy in SMALL["policies"]
            for placement in SMALL["placements"]
        }
        assert result.t_branch == SMALL["t_branch"]
        assert result.cold_seconds > 0.0
        assert result.warm_seconds > 0.0
        for (policy, placement), point in result.points.items():
            assert point.policy == policy
            assert point.placement == placement
            assert point.n_jobs == SMALL["n_jobs"]
            assert point.makespan > SMALL["t_branch"]
        report = exp10_report(result)
        assert "warm-start sweep" in report
        for policy in SMALL["policies"]:
            assert policy in report
