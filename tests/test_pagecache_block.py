"""Unit tests for the data-block abstraction."""

import pytest

from repro.pagecache.block import Block
from repro.units import MB


class TestBlockConstruction:
    def test_fields(self):
        block = Block("file1", 100 * MB, entry_time=5.0, dirty=True)
        assert block.filename == "file1"
        assert block.size == 100 * MB
        assert block.entry_time == 5.0
        assert block.last_access == 5.0
        assert block.dirty is True

    def test_last_access_defaults_to_entry_time(self):
        block = Block("f", 1.0, entry_time=3.0)
        assert block.last_access == 3.0

    def test_explicit_last_access(self):
        block = Block("f", 1.0, entry_time=3.0, last_access=7.0)
        assert block.last_access == 7.0

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            Block("f", 0, entry_time=0.0)
        with pytest.raises(ValueError):
            Block("f", -5, entry_time=0.0)

    def test_ids_are_unique(self):
        a = Block("f", 1.0, entry_time=0.0)
        b = Block("f", 1.0, entry_time=0.0)
        assert a.id != b.id


class TestBlockBehaviour:
    def test_touch_updates_last_access_only(self):
        block = Block("f", 10.0, entry_time=1.0)
        block.touch(9.0)
        assert block.last_access == 9.0
        assert block.entry_time == 1.0

    def test_expiration_requires_dirty(self):
        clean = Block("f", 10.0, entry_time=0.0, dirty=False)
        dirty = Block("f", 10.0, entry_time=0.0, dirty=True)
        assert not clean.is_expired(now=100.0, expiration=30.0)
        assert dirty.is_expired(now=100.0, expiration=30.0)
        assert not dirty.is_expired(now=10.0, expiration=30.0)

    def test_expiration_boundary(self):
        block = Block("f", 10.0, entry_time=0.0, dirty=True)
        assert block.is_expired(now=30.0, expiration=30.0)

    def test_split_sizes_and_metadata(self):
        block = Block("f", 100.0, entry_time=2.0, last_access=5.0, dirty=True,
                      storage="disk0")
        first, second = block.split(30.0)
        assert first.size == 30.0
        assert second.size == 70.0
        for part in (first, second):
            assert part.filename == "f"
            assert part.entry_time == 2.0
            assert part.last_access == 5.0
            assert part.dirty is True
            assert part.storage == "disk0"

    def test_split_conserves_size(self):
        block = Block("f", 123.456, entry_time=0.0)
        first, second = block.split(23.456)
        assert first.size + second.size == pytest.approx(block.size)

    def test_invalid_split_points(self):
        block = Block("f", 100.0, entry_time=0.0)
        for point in (0.0, -1.0, 100.0, 150.0):
            with pytest.raises(ValueError):
                block.split(point)

    def test_clone_copies_metadata_with_new_id(self):
        block = Block("f", 10.0, entry_time=1.0, last_access=2.0, dirty=True)
        clone = block.clone()
        assert clone.id != block.id
        assert clone.filename == block.filename
        assert clone.size == block.size
        assert clone.entry_time == block.entry_time
        assert clone.last_access == block.last_access
        assert clone.dirty == block.dirty

    def test_repr_mentions_dirty_state(self):
        assert "dirty" in repr(Block("f", 1.0, entry_time=0.0, dirty=True))
        assert "clean" in repr(Block("f", 1.0, entry_time=0.0, dirty=False))
