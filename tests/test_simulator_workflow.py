"""Unit tests for tasks, workflows and the chain-workflow helper."""

import pytest

from repro.errors import SchedulingError
from repro.filesystem import File
from repro.simulator.workflow import Task, Workflow, chain_workflow
from repro.units import GB


class TestTask:
    def test_from_cpu_time_converts_to_flops(self):
        task = Task.from_cpu_time("t", 28.0)
        assert task.flops == pytest.approx(28.0 * 1e9)
        assert task.cpu_time() == pytest.approx(28.0)

    def test_from_cpu_time_with_custom_core_speed(self):
        task = Task.from_cpu_time("t", 10.0, core_speed=2e9)
        assert task.flops == pytest.approx(2e10)
        assert task.cpu_time(core_speed=2e9) == pytest.approx(10.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Task("t", flops=-1)

    def test_input_output_sizes(self):
        task = Task("t", inputs=[File("a", 1 * GB), File("b", 2 * GB)],
                    outputs=[File("c", 3 * GB)])
        assert task.input_size == 3 * GB
        assert task.output_size == 3 * GB


class TestWorkflow:
    def _diamond(self):
        """A diamond-shaped workflow: src -> (left, right) -> sink."""
        f_in = File("in", GB)
        f_l = File("left_out", GB)
        f_r = File("right_out", GB)
        f_out = File("out", GB)
        workflow = Workflow("diamond")
        src = workflow.add_task(Task("src", inputs=[f_in], outputs=[f_l, f_r]))
        left = workflow.add_task(Task("left", inputs=[f_l], outputs=[File("l2", GB)]))
        right = workflow.add_task(Task("right", inputs=[f_r], outputs=[File("r2", GB)]))
        sink = workflow.add_task(
            Task("sink", inputs=[File("l2", GB), File("r2", GB)], outputs=[f_out])
        )
        return workflow, (src, left, right, sink)

    def test_duplicate_task_name_rejected(self):
        workflow = Workflow()
        workflow.add_task(Task("t"))
        with pytest.raises(SchedulingError):
            workflow.add_task(Task("t"))

    def test_task_lookup(self):
        workflow = Workflow()
        task = workflow.add_task(Task("t"))
        assert workflow.task("t") is task
        with pytest.raises(SchedulingError):
            workflow.task("missing")

    def test_dependencies_follow_data_flow(self):
        workflow, (src, left, right, sink) = self._diamond()
        assert workflow.dependencies(src) == []
        assert workflow.dependencies(left) == [src]
        assert set(t.name for t in workflow.dependencies(sink)) == {"left", "right"}

    def test_explicit_dependency(self):
        workflow = Workflow()
        a = workflow.add_task(Task("a"))
        b = workflow.add_task(Task("b"))
        workflow.add_dependency(a, b)
        assert workflow.dependencies(b) == [a]

    def test_explicit_dependency_requires_registered_tasks(self):
        workflow = Workflow()
        a = workflow.add_task(Task("a"))
        with pytest.raises(SchedulingError):
            workflow.add_dependency(a, Task("ghost"))

    def test_topological_order_respects_dependencies(self):
        workflow, _ = self._diamond()
        order = [task.name for task in workflow.topological_order()]
        assert order.index("src") < order.index("left")
        assert order.index("src") < order.index("right")
        assert order.index("left") < order.index("sink")
        assert order.index("right") < order.index("sink")

    def test_cycle_detection(self):
        workflow = Workflow()
        a = workflow.add_task(Task("a", inputs=[File("fb", 1)], outputs=[File("fa", 1)]))
        b = workflow.add_task(Task("b", inputs=[File("fa", 1)], outputs=[File("fb", 1)]))
        with pytest.raises(SchedulingError):
            workflow.topological_order()
        with pytest.raises(SchedulingError):
            workflow.validate()

    def test_input_and_output_files(self):
        workflow, _ = self._diamond()
        assert [f.name for f in workflow.input_files()] == ["in"]
        produced = {f.name for f in workflow.output_files()}
        assert {"left_out", "right_out", "l2", "r2", "out"} == produced
        assert len(workflow.all_files()) == 6

    def test_len(self):
        workflow, _ = self._diamond()
        assert len(workflow) == 4


class TestChainWorkflow:
    def test_builds_linear_pipeline(self):
        files = [File(f"f{i}", GB) for i in range(4)]
        workflow = chain_workflow("chain", files, [1.0, 2.0, 3.0])
        assert len(workflow) == 3
        order = [task.name for task in workflow.topological_order()]
        assert order == ["chain_task1", "chain_task2", "chain_task3"]
        assert workflow.input_files() == [files[0]]
        task2 = workflow.task("chain_task2")
        assert task2.inputs == [files[1]]
        assert task2.outputs == [files[2]]
        assert task2.cpu_time() == pytest.approx(2.0)

    def test_file_count_must_match(self):
        files = [File(f"f{i}", GB) for i in range(3)]
        with pytest.raises(SchedulingError):
            chain_workflow("chain", files, [1.0, 2.0, 3.0])
