"""Tests for the trace exporters, pinned by a golden Chrome-trace file."""

from __future__ import annotations

import csv
import json
from pathlib import Path

import pytest

from obs_workload import run_observed_exp6
from repro.obs import (
    Observer,
    dumps_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_csv,
    write_spans_jsonl,
)

GOLDEN = Path(__file__).parent / "data" / "obs_exp6_trace.json"


@pytest.fixture(scope="module")
def observed():
    """One observed small-Exp 6 run shared by the export tests."""
    return run_observed_exp6()


class TestChromeTraceStructure:
    def test_exp6_trace_contains_all_signal_kinds(self, observed):
        _result, observer = observed
        doc = to_chrome_trace(observer)
        events = doc["traceEvents"]
        categories = {
            event.get("cat") for event in events if event["ph"] == "X"
        }
        # The acceptance criterion: job, operation and flow spans, plus
        # sampled DES queue-depth counters, all in one valid trace.
        assert {"job", "operation", "flow", "io", "process"} <= categories
        counter_names = {
            event["name"] for event in events if event["ph"] == "C"
        }
        assert "des.queue_depth" in counter_names
        assert "scheduler.jobs" in counter_names
        assert "memory" in counter_names
        # Metadata names every track.
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert "scheduler" in thread_names
        assert "des" in thread_names
        assert any(name.startswith("node:") for name in thread_names)

    def test_timestamps_are_microseconds(self, observed):
        result, observer = observed
        doc = to_chrome_trace(observer)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert max(e["ts"] + e["dur"] for e in spans) <= result.makespan * 1e6

    def test_no_wall_clock_content(self, observed):
        _result, observer = observed
        # Wall-clock rates live in the registry only; the exported trace
        # must stay byte-deterministic.
        assert "events_per_wall_second" not in dumps_chrome_trace(observer)
        registry = observer.registry.as_dict()
        assert "des.events_per_wall_second" in registry

    def test_open_spans_closed_at_export(self):
        observer = Observer()
        observer.begin("dangling", "job", "t", 1.0)
        observer.complete("done", "io", "t", 2.0, 6.0)
        events = to_chrome_trace(observer)["traceEvents"]
        dangling = [e for e in events if e["name"] == "dangling"]
        assert len(dangling) == 1
        assert dangling[0]["dur"] == pytest.approx((6.0 - 1.0) * 1e6)
        assert dangling[0]["args"]["open"] is True


class TestGoldenExport:
    def test_trace_matches_golden_byte_for_byte(self, observed):
        _result, observer = observed
        assert GOLDEN.exists(), (
            "golden missing; record it with "
            "`PYTHONPATH=src:tests python tests/record_obs_golden.py`"
        )
        expected = GOLDEN.read_text().rstrip("\n")
        actual = dumps_chrome_trace(observer)
        assert actual == expected, (
            "telemetry export changed; if intentional, regenerate with "
            "`PYTHONPATH=src:tests python tests/record_obs_golden.py`"
        )

    def test_golden_is_valid_chrome_trace(self):
        doc = json.loads(GOLDEN.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["dropped_spans"] == 0
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"M", "X", "C", "i"} or phases == {"M", "X", "C"}
        for event in doc["traceEvents"]:
            assert event["name"]
            if event["ph"] in ("X", "C"):
                assert event["ts"] >= 0


class TestFileWriters:
    def test_write_chrome_trace(self, observed, tmp_path):
        _result, observer = observed
        path = tmp_path / "trace.json"
        write_chrome_trace(observer, path)
        assert json.loads(path.read_text())["traceEvents"]

    def test_write_jsonl_and_csv_agree(self, observed, tmp_path):
        _result, observer = observed
        jsonl = tmp_path / "spans.jsonl"
        csv_path = tmp_path / "spans.csv"
        n_jsonl = write_spans_jsonl(observer, jsonl)
        n_csv = write_spans_csv(observer, csv_path)
        assert n_jsonl == n_csv == len(observer.spans) + len(observer.open_spans)

        jsonl_rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert len(jsonl_rows) == n_jsonl
        with open(csv_path, newline="") as handle:
            csv_rows = list(csv.DictReader(handle))
        assert len(csv_rows) == n_csv
        assert [row["name"] for row in csv_rows] == [
            row["name"] for row in jsonl_rows
        ]
