"""Tests of the simulation service: streaming scheduler, submission
queue and log, job specs, the in-process service lifecycle, warm-start
restores, and the off-main-thread sweep timeout.

The governing invariant (shared with ``test_service_recovery.py``): the
durable submission log fully determines the results — a recovered or
replayed run is byte-identical to the uninterrupted one.
"""

from __future__ import annotations

import json
import shutil
import threading
import time

import pytest

from repro.errors import (
    ConfigurationError,
    SchedulingError,
    ServiceBackpressure,
    ServiceDraining,
    SnapshotError,
)
from repro.scheduler.arrivals import SubmissionQueue
from repro.service import (
    JobSpec,
    LogEntry,
    SimulationService,
    SubmissionLog,
    build_service_cluster,
    canonical_result,
    replay_result,
)
from repro.service.log import OP_CLOSE, OP_SUBMIT, SubmissionLogError
from repro.snapshot import (
    SimRecipe,
    SnapshotPlan,
    apply_live_overrides,
    restore_simulation,
    warm_start_values,
    write_snapshot,
)
from repro.units import MB

#: A tiny service cluster every test here can afford to replay.
SMALL_PARAMS = dict(
    n_nodes=2, cores_per_node=2, n_datasets=3,
    input_size=32 * MB, chunk_size=16 * MB,
)
SMALL_RECIPE = SimRecipe("service-cluster", dict(SMALL_PARAMS))


def small_service(tmp_path, **kwargs):
    kwargs.setdefault("recipe", SMALL_RECIPE)
    return SimulationService(tmp_path / "svc", **kwargs)


def spec_dict(label, dataset=0, runtime=1.0, **extra):
    return {"label": label, "dataset": dataset, "runtime": runtime, **extra}


# ------------------------------------------------------------ streaming
class TestStreamingScheduler:
    def build(self):
        return build_service_cluster(**SMALL_PARAMS)

    def test_feed_requires_streaming(self):
        from repro.scheduler.job import Job
        from repro.simulator.simulation import Simulation, SimulationConfig
        from repro.simulator.workflow import Workflow

        sim = Simulation(config=SimulationConfig(chunk_size=16 * MB))
        sim.create_cluster_platform(2, cores_per_node=2,
                                    with_nfs_server=False)
        scheduler = sim.create_cluster_scheduler()
        with pytest.raises(SchedulingError, match="streaming"):
            scheduler.feed(Job(Workflow("j0")))
        with pytest.raises(SchedulingError, match="streaming"):
            scheduler.close_stream()

    def test_submit_delegates_to_feed_and_close_ends_run(self):
        sim = self.build()
        sim.submit_job(
            JobSpec.from_dict(spec_dict("j0")).build_workflow(
                sim.service_datasets),
            label="j0",
        )
        sim.scheduler.close_stream()
        result = sim.run()
        assert result.scheduler.n_jobs == 1

    def test_mid_run_feed_and_past_arrival_clamped(self):
        sim = self.build()
        sim.step_until(5.0)
        job = sim.submit_job(
            JobSpec.from_dict(spec_dict("late")).build_workflow(
                sim.service_datasets),
            arrival_time=1.0, label="late",
        )
        # A job cannot arrive in the simulated past.
        assert job.arrival_time == sim.env.now
        sim.scheduler.close_stream()
        result = sim.run()
        record = result.scheduler.records[0]
        assert record.arrival_time >= 5.0

    def test_feed_after_close_raises(self):
        sim = self.build()
        sim.scheduler.close_stream()
        sim.scheduler.close_stream()  # idempotent
        with pytest.raises(SchedulingError, match="closed"):
            sim.submit_job(
                JobSpec.from_dict(spec_dict("j1")).build_workflow(
                    sim.service_datasets),
                label="j1",
            )

    def test_empty_closed_stream_completes(self):
        sim = self.build()
        sim.scheduler.close_stream()
        result = sim.run()
        assert result.scheduler.n_jobs == 0

    def test_duplicate_label_rejected(self):
        sim = self.build()
        workflow = JobSpec.from_dict(spec_dict("dup")).build_workflow(
            sim.service_datasets)
        sim.submit_job(workflow, label="dup")
        with pytest.raises(SchedulingError, match="unique label"):
            sim.submit_job(workflow, label="dup")


# ------------------------------------------------------- submission queue
class TestSubmissionQueue:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SubmissionQueue(0)

    def test_offer_and_drain_preserve_order(self):
        queue = SubmissionQueue(4)
        for item in ("a", "b", "c"):
            assert queue.offer(item)
        assert len(queue) == 3
        assert queue.drain(timeout=0) == ["a", "b", "c"]
        assert len(queue) == 0

    def test_offer_beyond_bound_is_rejected_not_dropped(self):
        queue = SubmissionQueue(2)
        assert queue.offer(1) and queue.offer(2)
        assert not queue.offer(3)
        assert queue.n_rejected == 1
        assert queue.n_accepted == 2
        # The rejected item never entered the queue.
        assert queue.drain(timeout=0) == [1, 2]

    def test_drain_times_out_empty(self):
        queue = SubmissionQueue(2)
        start = time.perf_counter()
        assert queue.drain(timeout=0.05) == []
        assert time.perf_counter() - start < 1.0

    def test_drain_wakes_on_offer(self):
        queue = SubmissionQueue(2)
        got = []

        def consumer():
            got.extend(queue.drain(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.offer("x")
        thread.join(5.0)
        assert got == ["x"]


# ------------------------------------------------------------- job specs
class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(spec_dict("j", dataset=2, runtime=3.5,
                                           cores=2, priority=1))
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job spec"):
            JobSpec.from_dict(spec_dict("j", nodes=4))

    def test_dataset_and_runtime_required(self):
        with pytest.raises(ConfigurationError, match="dataset"):
            JobSpec.from_dict({"label": "j"})

    def test_default_label(self):
        spec = JobSpec.from_dict({"dataset": 0, "runtime": 1.0},
                                 default_label="job7")
        assert spec.label == "job7"

    @pytest.mark.parametrize("patch,match", [
        (dict(dataset=9), "out of range"),
        (dict(dataset=True), "integer index"),
        (dict(runtime=0.0), "runtime"),
        (dict(cores=0), "cores"),
        (dict(cores=64), "largest node"),
        (dict(arrival_time=-1.0), "arrival_time"),
        (dict(output_size=-1.0), "output_size"),
    ])
    def test_validation(self, patch, match):
        spec = JobSpec.from_dict(spec_dict("j", **patch))
        with pytest.raises(ConfigurationError, match=match):
            spec.validate(n_datasets=3, max_cores=8)

    def test_build_workflow_reads_one_dataset(self):
        sim = build_service_cluster(**SMALL_PARAMS)
        workflow = JobSpec.from_dict(
            spec_dict("j", dataset=1)).build_workflow(sim.service_datasets)
        task = workflow.tasks[0]
        assert [f.name for f in task.inputs] == ["dataset1"]
        assert [f.name for f in task.outputs] == ["j_out"]


# --------------------------------------------------------- submission log
class TestSubmissionLog:
    def entry(self, seq, t=0.0, op=OP_SUBMIT, **kw):
        spec = spec_dict(f"j{seq}") if op == OP_SUBMIT else None
        return LogEntry(seq=seq, op=op, t=t, spec=spec, **kw)

    def test_append_then_read_round_trips(self, tmp_path):
        log = SubmissionLog(tmp_path / "s.log")
        log.append(self.entry(0, t=0.0, token="tok"))
        log.append(self.entry(1, t=2.5))
        log.append(self.entry(2, t=3.0, op=OP_CLOSE))
        log.close()
        entries = SubmissionLog(tmp_path / "s.log").entries()
        assert [(e.seq, e.op, e.t) for e in entries] == [
            (0, OP_SUBMIT, 0.0), (1, OP_SUBMIT, 2.5), (2, OP_CLOSE, 3.0)]
        assert entries[0].token == "tok"

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "s.log"
        log = SubmissionLog(path)
        log.append(self.entry(0))
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "op": "subm')  # crash mid-append
        assert len(SubmissionLog(path).entries()) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "s.log"
        lines = [json.dumps(self.entry(0).as_dict()), "garbage",
                 json.dumps(self.entry(2, t=1.0).as_dict())]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(SubmissionLogError, match="corrupt at line 2"):
            SubmissionLog(path).entries()

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "s.log"
        for entry in (self.entry(0), self.entry(2, t=1.0)):
            SubmissionLog(path).append(entry)
        with pytest.raises(SubmissionLogError, match="out of sequence"):
            SubmissionLog(path).entries()

    def test_time_going_backwards_raises(self, tmp_path):
        path = tmp_path / "s.log"
        log = SubmissionLog(path)
        log.append(self.entry(0, t=5.0))
        log.append(self.entry(1, t=1.0))
        with pytest.raises(SubmissionLogError, match="backwards"):
            SubmissionLog(path).entries()

    def test_close_must_be_final(self, tmp_path):
        path = tmp_path / "s.log"
        log = SubmissionLog(path)
        log.append(self.entry(0, op=OP_CLOSE))
        log.append(self.entry(1, t=1.0))
        with pytest.raises(SubmissionLogError, match="not the final"):
            SubmissionLog(path).entries()


# ---------------------------------------------------------------- service
class TestSimulationService:
    def test_submit_drain_and_replay_identical(self, tmp_path):
        service = small_service(
            tmp_path, snapshot_plan=SnapshotPlan.fixed(2.0, keep=3)
        ).start()
        acks = [
            service.submit(spec_dict(f"job{i}", dataset=i % 3,
                                     runtime=0.5 + 0.25 * i))
            for i in range(4)
        ]
        assert [ack["seq"] for ack in acks] == [0, 1, 2, 3]
        assert all(ack["t"] >= 0.0 for ack in acks)
        summary = service.drain(timeout=60.0)
        assert summary["jobs_submitted"] == 4
        assert summary["jobs_completed"] == 4

        # The log + recipe fully determine the results.
        entries = service.log.entries()
        assert entries[-1].op == OP_CLOSE
        reference = canonical_result(replay_result(service.recipe, entries))
        assert service.canonical_result() == reference
        # ... and the canonical result was durably written.
        on_disk = (service.data_dir / "result.json").read_text("utf-8")
        assert on_disk == reference

    def test_idempotent_token(self, tmp_path):
        service = small_service(tmp_path).start()
        first = service.submit(spec_dict("one"), token="tok-1")
        again = service.submit(spec_dict("one"), token="tok-1")
        assert again == {**first, "duplicate": True}
        # Only one durable entry, only one job.
        assert len(service.log.entries()) == 1
        service.drain(timeout=60.0)
        assert service.summary()["jobs_completed"] == 1

    def test_duplicate_label_rejected_before_logging(self, tmp_path):
        service = small_service(tmp_path).start()
        service.submit(spec_dict("same"))
        with pytest.raises(ConfigurationError, match="unique"):
            service.submit(spec_dict("same"))
        assert len(service.log.entries()) == 1
        service.drain(timeout=60.0)

    def test_invalid_spec_rejected_unlogged(self, tmp_path):
        service = small_service(tmp_path).start()
        with pytest.raises(ConfigurationError, match="out of range"):
            service.submit(spec_dict("bad", dataset=99))
        assert service.log.entries() == []
        service.drain(timeout=60.0)

    def test_backpressure_when_queue_full(self, tmp_path):
        # Unstarted service: nothing drains the queue, so the bound hits.
        service = small_service(tmp_path, queue_capacity=2)
        for i in range(2):
            assert service.queue.offer(("t", spec_dict(f"j{i}"), None))
        with pytest.raises(ServiceBackpressure) as excinfo:
            service.submit(spec_dict("over"))
        assert excinfo.value.retry_after >= 1.0
        assert service.queue.n_rejected == 1

    def test_draining_rejects_submissions(self, tmp_path):
        service = small_service(tmp_path).start()
        service.submit(spec_dict("j0"))
        service.request_drain()
        with pytest.raises(ServiceDraining):
            service.submit(spec_dict("j1"))
        service.drain(timeout=60.0)

    def test_job_status_and_metrics(self, tmp_path):
        service = small_service(tmp_path).start()
        service.submit(spec_dict("watched"))
        with pytest.raises(KeyError):
            service.job_status("nope")
        status = service.job_status("watched")
        assert status["state"] in ("accepted", "scheduled", "queued",
                                   "running", "completed")
        metrics = service.metrics()
        assert metrics["queue"]["capacity"] == 64
        assert metrics["sim"]["submitted"] == 1
        service.drain(timeout=60.0)
        assert service.job_status("watched")["state"] == "completed"
        assert service.health()["status"] == "drained"
        assert not service.ready

    def test_snapshot_now(self, tmp_path):
        service = small_service(tmp_path).start()
        service.submit(spec_dict("j0"))
        meta = service.snapshot_now()
        assert meta["applied_seq"] == 1
        assert (service.data_dir / "snapshots").glob("svc-*.json")
        service.drain(timeout=60.0)

    def test_recipe_mismatch_rejected(self, tmp_path):
        small_service(tmp_path)
        other = SimRecipe("service-cluster", dict(SMALL_PARAMS, n_nodes=3))
        with pytest.raises(ConfigurationError, match="different"):
            small_service(tmp_path, recipe=other)

    def test_recipe_required_on_first_open(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no recipe"):
            SimulationService(tmp_path / "fresh")


class TestServiceRecovery:
    """In-process recovery: re-open a data directory and converge."""

    def run_and_abandon(self, tmp_path, n_jobs=4):
        """Run a service to completion, return its data dir + reference.

        The drained dir stands in for a crash *after* the close op; the
        mid-run crash (copy-while-running) is covered below and the real
        SIGKILL in ``test_service_recovery.py``.
        """
        service = small_service(
            tmp_path, snapshot_plan=SnapshotPlan.fixed(1.0, keep=3)
        ).start()
        for i in range(n_jobs):
            service.submit(spec_dict(f"job{i}", dataset=i % 3,
                                     runtime=0.5 + 0.5 * i))
        service.drain(timeout=60.0)
        return service.data_dir, service.canonical_result()

    def test_reopen_closed_log_reproduces_result(self, tmp_path):
        data_dir, reference = self.run_and_abandon(tmp_path)
        (data_dir / "result.json").unlink()
        recovered = SimulationService(data_dir).start()
        recovered.join(timeout=60.0)
        assert recovered._drained.wait(60.0)
        assert recovered.canonical_result() == reference
        assert (data_dir / "result.json").read_text("utf-8") == reference

    def test_midrun_copy_recovers_byte_identical(self, tmp_path):
        service = small_service(
            tmp_path, snapshot_plan=SnapshotPlan.fixed(1.0, keep=5)
        ).start()
        for i in range(4):
            service.submit(spec_dict(f"job{i}", dataset=i % 3,
                                     runtime=1.0))
        # Wait until the worker has advanced into the work (some
        # snapshot exists), then copy the dir — a crash at an arbitrary
        # moment, with jobs still in flight.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if list((service.data_dir / "snapshots").glob("svc-*.json")):
                break
            time.sleep(0.01)
        crashed_dir = tmp_path / "crashed-copy"
        shutil.copytree(service.data_dir, crashed_dir)
        service.drain(timeout=60.0)

        log = SubmissionLog(crashed_dir / "submissions.log")
        entries = log.entries()
        assert entries, "the copy should hold acknowledged submissions"
        reference = canonical_result(
            replay_result(SMALL_RECIPE, entries)
        )
        recovered = SimulationService(crashed_dir).start()
        assert recovered._recovered_from is not None
        summary = recovered.drain(timeout=60.0)
        assert summary["jobs_completed"] == sum(
            1 for e in entries if e.op == OP_SUBMIT
        )
        assert recovered.canonical_result() == reference

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        service = small_service(
            tmp_path, snapshot_plan=SnapshotPlan.fixed(1.0, keep=5)
        ).start()
        for i in range(3):
            service.submit(spec_dict(f"job{i}", runtime=1.0))
        service.drain(timeout=60.0)
        reference = service.canonical_result()
        (service.data_dir / "result.json").unlink()
        snapshots = sorted(
            (service.data_dir / "snapshots").glob("svc-*.json"))
        assert snapshots
        snapshots[-1].write_text("{ not json", encoding="utf-8")

        recovered = SimulationService(service.data_dir).start()
        recovered.join(timeout=60.0)
        assert recovered.canonical_result() == reference
        # New snapshots must not collide with surviving file names.
        assert recovered._snap_index >= len(snapshots)

    def test_all_snapshots_corrupt_replays_full_log(self, tmp_path):
        data_dir, reference = self.run_and_abandon(tmp_path, n_jobs=3)
        (data_dir / "result.json").unlink()
        for path in (data_dir / "snapshots").glob("svc-*.json"):
            path.write_text("garbage", encoding="utf-8")
        recovered = SimulationService(data_dir).start()
        recovered.join(timeout=60.0)
        assert recovered._recovered_from is None
        assert recovered.canonical_result() == reference


# ------------------------------------------------------------ warm starts
class TestWarmStart:
    """Branching variants off one snapshot (the exp10 machinery).

    Warm starts need a recipe-complete workload — the snapshot's recipe
    must rebuild the *whole* submission history — so they use exp6, just
    like ``run_exp10`` (service snapshots carry their history in the
    submission log instead and recover through the service protocol).
    """

    EXP6 = dict(n_jobs=12, n_nodes=2, n_datasets=3, cores_per_node=8)

    def snapshot(self, tmp_path):
        from repro.experiments.exp6_cluster import build_exp6

        sim = build_exp6(**self.EXP6)
        sim.step_until(3.0)
        return write_snapshot(sim, tmp_path / "branch.json")

    def test_restore_with_recipe_overrides(self, tmp_path):
        path = self.snapshot(tmp_path)
        sim = restore_simulation(path, overrides={"placement":
                                                  "round-robin"})
        assert type(sim.scheduler.placement).__name__.startswith("RoundRobin")
        result = sim.run()
        assert result.scheduler.n_jobs == self.EXP6["n_jobs"]

    def test_live_override_unknown_key_raises(self, tmp_path):
        path = self.snapshot(tmp_path)
        sim = restore_simulation(path, verify=False)
        with pytest.raises(SnapshotError, match="cannot be applied"):
            apply_live_overrides(sim, {"n_nodes": 5})

    def test_warm_equals_cold_per_variant(self, tmp_path):
        path = self.snapshot(tmp_path)
        variants = [{"policy": "fifo", "placement": "cache"},
                    {"policy": "sjf", "placement": "round-robin"}]

        def finish(_recipe, result):
            metrics = result.scheduler
            return (metrics.n_jobs, metrics.makespan,
                    metrics.mean_wait_time)

        warm = warm_start_values(path, variants, finish=finish,
                                 verify=False)
        cold = []
        for overrides in variants:
            sim = restore_simulation(path, verify=False)
            apply_live_overrides(sim, overrides)
            cold.append(finish(None, sim.run()))
        assert warm == cold

    def test_warm_start_propagates_variant_failure(self, tmp_path):
        path = self.snapshot(tmp_path)
        with pytest.raises(SnapshotError, match="failed"):
            warm_start_values(path, [{"policy": "no-such-policy"}],
                              verify=False)


# ---------------------------------------------- off-main-thread timeouts
class TestWatchdogTimeout:
    """The sweep timeout must arm off the main thread (service workers)."""

    def run_in_thread(self, target):
        box = {}

        def wrapper():
            try:
                box["value"] = target()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc

        thread = threading.Thread(target=wrapper)
        thread.start()
        thread.join(30.0)
        assert not thread.is_alive(), "worker thread hung"
        if "error" in box:
            raise box["error"]
        return box["value"]

    def test_timeout_fires_off_main_thread(self):
        from repro.experiments.runner import (
            SweepPointError, make_spec, register_experiment, run_sweep,
        )

        def spin(**kwargs):
            while True:
                time.sleep(0.005)

        register_experiment("svc-spin", spin)
        with pytest.raises(SweepPointError) as excinfo:
            self.run_in_thread(
                lambda: run_sweep([make_spec("svc-spin")], timeout=0.2,
                                  workers=1)
            )
        assert "PointTimeoutError" in str(excinfo.value)

    def test_fast_point_off_main_thread_unaffected(self):
        from repro.experiments.runner import (
            make_spec, register_experiment, run_sweep,
        )

        register_experiment("svc-fast", lambda **kw: "done")
        results = self.run_in_thread(
            lambda: run_sweep([make_spec("svc-fast")], timeout=30.0,
                              workers=1)
        )
        assert results[0].value == "done"
