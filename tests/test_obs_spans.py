"""Tests for span tracing and DES introspection (``repro.obs``)."""

from __future__ import annotations

import pytest

from repro.des import Environment
from repro.obs import DESSampler, Observer


class TestSpanPairing:
    def test_begin_end_pairs(self):
        observer = Observer()
        span = observer.begin("job1", "job", "node:node1", 1.0,
                              attrs={"cores": 2})
        assert observer.open_spans == [span]
        assert observer.spans == []

        observer.end(span, 4.0, attrs={"preempted": False})
        assert observer.open_spans == []
        assert observer.spans == [span]
        assert span.duration == 3.0
        assert span.attrs == {"cores": 2, "preempted": False}
        # Ending again must not resurrect the open entry.
        observer.end(span, 5.0)
        assert observer.open_spans == []

    def test_interleaved_opens_close_independently(self):
        observer = Observer()
        first = observer.begin("a", "job", "t", 0.0)
        second = observer.begin("b", "job", "t", 1.0)
        observer.end(second, 2.0)
        assert observer.open_spans == [first]
        observer.end(first, 3.0)
        assert [span.name for span in observer.spans] == ["b", "a"]

    def test_complete_and_instant(self):
        observer = Observer()
        observer.complete("op", "operation", "app:a", 1.0, 2.0)
        observer.instant("preempt", "preemption", "scheduler", 5.0)
        phases = [span.phase for span in observer.spans]
        assert phases == ["X", "i"]
        assert observer.last_time == 5.0

    def test_last_time_tracks_all_records(self):
        observer = Observer()
        observer.begin("open", "job", "t", 7.0)
        assert observer.last_time == 7.0
        observer.counter_sample("depth", "des", 9.0, {"depth": 1})
        assert observer.last_time == 9.0


class TestRingTruncation:
    def test_span_ring_drops_oldest(self):
        observer = Observer(max_spans=3)
        for index in range(5):
            observer.complete(f"s{index}", "io", "t", index, index + 1)
        assert [span.name for span in observer.spans] == ["s2", "s3", "s4"]
        assert observer.spans_emitted == 5
        assert observer.dropped_spans == 2

    def test_sample_ring_drops_oldest(self):
        observer = Observer(max_samples=2)
        for index in range(4):
            observer.counter_sample("depth", "des", float(index), {"d": index})
        assert [sample[2] for sample in observer.counter_samples] == [2.0, 3.0]
        assert observer.dropped_samples == 2

    def test_capacities_validated(self):
        with pytest.raises(ValueError):
            Observer(max_spans=0)


class TestProcessLifecycle:
    def test_process_spans_recorded(self):
        env = Environment()
        observer = Observer()
        env.observer = observer

        def worker():
            yield env.timeout(2.0)

        env.process(worker(), name="app:worker")
        env.run()

        spans = [span for span in observer.spans if span.category == "process"]
        assert [span.name for span in spans] == ["app:worker"]
        assert spans[0].track == "des"
        assert spans[0].start == 0.0
        assert spans[0].end == 2.0
        counters = observer.registry.as_dict()
        assert counters["des.process_started"]["cls=app"] == 1.0
        assert counters["des.process_ended"]["cls=app"] == 1.0

    def test_failed_process_flagged(self):
        env = Environment()
        observer = Observer()
        env.observer = observer

        def boom():
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(boom(), name="boom")
        with pytest.raises(RuntimeError):
            env.run()
        span = [s for s in observer.spans if s.category == "process"][0]
        assert span.attrs == {"failed": True}


class TestDESIntrospection:
    def test_event_counts_and_tombstones(self):
        env = Environment()
        observer = Observer()
        env.observer = observer

        def worker():
            yield env.timeout(1.0)
            cancelled = env.timeout(10.0)
            env.cancel(cancelled)
            yield env.timeout(1.0)

        env.process(worker(), name="w")
        env.run()
        assert observer.des_events_processed > 0
        assert "Timeout" in observer.des_event_counts
        assert observer.des_tombstones == 1
        assert 0.0 < observer.des_tombstone_ratio < 1.0

    def test_sampler_records_series_and_stops(self):
        env = Environment()
        observer = Observer()
        env.observer = observer

        def worker():
            yield env.timeout(5.5)

        process = env.process(worker(), name="w")
        sampler = DESSampler(env, observer, interval=1.0)
        sampler.start()
        env.run(until=process)
        sampler.stop()

        depth_samples = [
            sample for sample in observer.counter_samples
            if sample[0] == "des.queue_depth"
        ]
        assert len(depth_samples) >= 5
        registry = observer.registry.as_dict()
        assert registry["des.queue_depth_weighted"][""]["weight"] >= 5.0
        # The pending wake-up was tombstoned: the queue drains.
        env.run()
        assert env.queue_size == 0

    def test_sampler_interval_validated(self):
        env = Environment()
        with pytest.raises(ValueError):
            DESSampler(env, Observer(), interval=0.0)
