"""Unit tests for storage and memory devices."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk, StorageDevice
from repro.units import GB, GiB, MB, MBps


class TestStorageDeviceConstruction:
    def test_bandwidths_must_be_positive(self, env):
        with pytest.raises(ConfigurationError):
            StorageDevice(env, "bad", read_bandwidth=0, write_bandwidth=100)

    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ConfigurationError):
            StorageDevice(env, "bad", read_bandwidth=1, write_bandwidth=1, capacity=0)

    def test_negative_latency_rejected(self, env):
        with pytest.raises(ConfigurationError):
            StorageDevice(env, "bad", read_bandwidth=1, write_bandwidth=1, latency=-1)

    def test_unified_channel_requires_symmetry(self, env):
        with pytest.raises(ConfigurationError):
            StorageDevice(
                env, "bad", read_bandwidth=100, write_bandwidth=50,
                unified_channel=True,
            )

    def test_symmetric_disk_uses_unified_channel(self, env):
        disk = Disk.symmetric(env, "ssd", 465 * MBps)
        assert disk.read_channel is disk.write_channel

    def test_asymmetric_disk_uses_separate_channels(self, env):
        disk = Disk(env, "ssd", read_bandwidth=510 * MBps, write_bandwidth=420 * MBps)
        assert disk.read_channel is not disk.write_channel


class TestTransfers:
    def test_read_time_matches_bandwidth(self, env, runner):
        disk = Disk.symmetric(env, "ssd", 465 * MBps)

        def proc(env):
            yield disk.read(465 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(1.0)

    def test_write_time_matches_bandwidth(self, env, runner):
        disk = Disk(env, "ssd", read_bandwidth=510 * MBps, write_bandwidth=420 * MBps)

        def proc(env):
            yield disk.write(840 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(2.0)

    def test_latency_added_once_per_access(self, env, runner):
        disk = Disk.symmetric(env, "ssd", 100 * MBps, latency=0.5)

        def proc(env):
            yield disk.read(100 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(1.5)

    def test_negative_amounts_rejected(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        with pytest.raises(ValueError):
            disk.read(-1)
        with pytest.raises(ValueError):
            disk.write(-1)

    def test_unified_channel_shares_between_reads_and_writes(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        finish = {}

        def reader(env):
            yield disk.read(100 * MB)
            finish["read"] = env.now

        def writer(env):
            yield disk.write(100 * MB)
            finish["write"] = env.now

        env.process(reader(env))
        env.process(writer(env))
        env.run()
        assert finish["read"] == pytest.approx(2.0)
        assert finish["write"] == pytest.approx(2.0)

    def test_separate_channels_do_not_interfere(self, env):
        disk = Disk(env, "ssd", read_bandwidth=100 * MBps, write_bandwidth=100 * MBps,
                    unified_channel=False)
        finish = {}

        def reader(env):
            yield disk.read(100 * MB)
            finish["read"] = env.now

        def writer(env):
            yield disk.write(100 * MB)
            finish["write"] = env.now

        env.process(reader(env))
        env.process(writer(env))
        env.run()
        assert finish["read"] == pytest.approx(1.0)
        assert finish["write"] == pytest.approx(1.0)

    def test_statistics_counters(self, env, runner):
        disk = Disk.symmetric(env, "ssd", 100 * MBps)

        def proc(env):
            yield disk.read(10 * MB)
            yield disk.write(20 * MB)

        runner(env, proc(env))
        assert disk.bytes_read == 10 * MB
        assert disk.bytes_written == 20 * MB
        assert disk.read_ops == 1
        assert disk.write_ops == 1


class TestCapacityAccounting:
    def test_allocate_and_deallocate(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps, capacity=10 * GB)
        disk.allocate(4 * GB)
        assert disk.used == 4 * GB
        assert disk.free_space == 6 * GB
        disk.deallocate(1 * GB)
        assert disk.used == 3 * GB

    def test_allocation_beyond_capacity_raises(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps, capacity=1 * GB)
        with pytest.raises(StorageError):
            disk.allocate(2 * GB)

    def test_deallocate_never_goes_negative(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps, capacity=1 * GB)
        disk.allocate(0.5 * GB)
        disk.deallocate(2 * GB)
        assert disk.used == 0.0

    def test_negative_amounts_rejected(self, env):
        disk = Disk.symmetric(env, "ssd", 100 * MBps)
        with pytest.raises(ValueError):
            disk.allocate(-1)
        with pytest.raises(ValueError):
            disk.deallocate(-1)


class TestMemoryDevice:
    def test_size_must_be_positive(self, env):
        with pytest.raises(ConfigurationError):
            MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=0)

    def test_size_alias(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 4812 * MBps, size=16 * GiB)
        assert memory.size == 16 * GiB
        assert memory.capacity == 16 * GiB

    def test_symmetric_memory_uses_unified_channel(self, env):
        memory = MemoryDevice.symmetric(env, "ram", 4812 * MBps, size=GiB)
        assert memory.read_channel is memory.write_channel

    def test_asymmetric_memory_uses_separate_channels(self, env):
        memory = MemoryDevice(
            env, "ram", size=GiB,
            read_bandwidth=6860 * MBps, write_bandwidth=2764 * MBps,
        )
        assert memory.read_channel is not memory.write_channel

    def test_memory_transfer_time(self, env, runner):
        memory = MemoryDevice.symmetric(env, "ram", 1000 * MBps, size=16 * GiB)

        def proc(env):
            yield memory.read(2000 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(2.0)
