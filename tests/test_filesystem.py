"""Unit tests for files, the file registry and the NFS configuration."""

import pytest

from repro.errors import FileNotFoundInSimulation
from repro.filesystem import File, FileRegistry, NFSConfig
from repro.units import GB


class TestFile:
    def test_fields(self):
        file = File("data.bin", 20 * GB)
        assert file.name == "data.bin"
        assert file.size == 20 * GB

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            File("", 10)
        with pytest.raises(ValueError):
            File("x", -1)

    def test_zero_size_allowed(self):
        assert File("empty", 0).size == 0.0

    def test_equality_and_hash(self):
        a = File("f", 10)
        b = File("f", 10)
        c = File("f", 20)
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_repr_contains_size(self):
        assert "20.00 GB" in repr(File("f", 20 * GB))


class TestFileRegistry:
    def test_add_and_lookup(self):
        registry = FileRegistry()
        file = File("f", 10)
        registry.add_entry(file, "service-a")
        assert registry.exists(file)
        assert registry.lookup(file) == ["service-a"]
        assert registry.primary_location(file) == "service-a"
        assert registry.file_by_name("f") == file
        assert len(registry) == 1

    def test_duplicate_entries_not_added_twice(self):
        registry = FileRegistry()
        file = File("f", 10)
        registry.add_entry(file, "svc")
        registry.add_entry(file, "svc")
        assert registry.lookup(file) == ["svc"]

    def test_multiple_locations(self):
        registry = FileRegistry()
        file = File("f", 10)
        registry.add_entry(file, "svc-a")
        registry.add_entry(file, "svc-b")
        assert registry.lookup(file) == ["svc-a", "svc-b"]
        assert registry.primary_location(file) == "svc-a"

    def test_remove_entry(self):
        registry = FileRegistry()
        file = File("f", 10)
        registry.add_entry(file, "svc")
        registry.remove_entry(file, "svc")
        assert not registry.exists(file)
        with pytest.raises(FileNotFoundInSimulation):
            registry.primary_location(file)

    def test_remove_unknown_entry_is_noop(self):
        registry = FileRegistry()
        registry.remove_entry(File("f", 10), "svc")

    def test_missing_file(self):
        registry = FileRegistry()
        missing = File("nope", 1)
        assert not registry.exists(missing)
        assert registry.lookup(missing) == []
        assert registry.file_by_name("nope") is None

    def test_known_files(self):
        registry = FileRegistry()
        a, b = File("a", 1), File("b", 2)
        registry.add_entry(a, "svc")
        registry.add_entry(b, "svc")
        assert set(f.name for f in registry.known_files()) == {"a", "b"}


class TestNFSConfig:
    def test_hpc_default_matches_paper(self):
        config = NFSConfig.hpc_default()
        assert config.server_cache_mode == "writethrough"
        assert config.server_read_cache is True
        assert config.client_write_cache is False
        assert config.client_read_cache is False

    def test_invalid_cache_mode_rejected(self):
        with pytest.raises(ValueError):
            NFSConfig(server_cache_mode="bogus")

    def test_writeback_server_allowed(self):
        assert NFSConfig(server_cache_mode="writeback").server_cache_mode == "writeback"
