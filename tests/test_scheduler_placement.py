"""Unit tests of the placement strategies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.filesystem.file import File
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.memory_manager import MemoryManager
from repro.platform.host import Host
from repro.platform.memory import MemoryDevice
from repro.scheduler.cluster import NodeState
from repro.scheduler.job import Job
from repro.scheduler.placement import (
    CacheLocalityPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.simulator.workflow import Task, Workflow
from repro.units import GiB, MB, MBps


def cached_node(env, name: str, cores: int = 4) -> NodeState:
    """A node with a page cache the tests can populate directly."""
    host = Host(env, name, cores=cores)
    memory = MemoryDevice.symmetric(env, f"{name}.ram", 4812 * MBps, size=16 * GiB)
    host.set_memory(memory)
    host.memory_manager = MemoryManager(
        env, memory, PageCacheConfig(periodic_flushing=False), name=f"{name}.mm"
    )
    return NodeState(host, storage=None)


def reading_job(name: str, *files: File, cores: int = 1, job_id: int = 0) -> Job:
    workflow = Workflow(name)
    workflow.add_task(Task(f"{name}_t", flops=1e9, inputs=list(files)))
    job = Job(workflow, cores=cores, label=name)
    job.id = job_id
    return job


class TestRoundRobin:
    def test_cycles_through_candidates(self, env):
        nodes = [cached_node(env, f"n{i}") for i in range(3)]
        placement = RoundRobinPlacement()
        job = reading_job("job", File("f", 1 * MB))
        picked = [placement.select_node(job, nodes).name for _ in range(6)]
        assert picked == ["n0", "n1", "n2", "n0", "n1", "n2"]


class TestLeastLoaded:
    def test_prefers_most_free_cores(self, env):
        busy = cached_node(env, "busy")
        idle = cached_node(env, "idle")
        filler = reading_job("filler", File("x", 1 * MB), cores=3, job_id=9)
        filler.start_time = 0.0
        busy.allocate(filler)
        job = reading_job("job", File("f", 1 * MB))
        assert LeastLoadedPlacement().select_node(job, [busy, idle]).name == "idle"

    def test_breaks_ties_by_name(self, env):
        nodes = [cached_node(env, "b"), cached_node(env, "a")]
        job = reading_job("job", File("f", 1 * MB))
        assert LeastLoadedPlacement().select_node(job, nodes).name == "a"


class TestCacheLocality:
    def test_scores_cached_input_bytes(self, env):
        cold = cached_node(env, "cold")
        warm = cached_node(env, "warm")
        dataset = File("dataset", 100 * MB)
        warm.host.memory_manager.add_to_cache(dataset.name, 60 * MB, storage=None)
        job = reading_job("job", dataset)

        placement = CacheLocalityPlacement()
        assert placement.score(job, warm) == pytest.approx(60 * MB)
        assert placement.score(job, cold) == 0.0
        assert placement.select_node(job, [cold, warm]).name == "warm"

    def test_prefers_largest_residency(self, env):
        lukewarm = cached_node(env, "lukewarm")
        hot = cached_node(env, "hot")
        dataset = File("dataset", 100 * MB)
        lukewarm.host.memory_manager.add_to_cache(dataset.name, 10 * MB, storage=None)
        hot.host.memory_manager.add_to_cache(dataset.name, 90 * MB, storage=None)
        job = reading_job("job", dataset)
        assert CacheLocalityPlacement().select_node(job, [lukewarm, hot]).name == "hot"

    def test_cold_datasets_hash_to_a_stable_node(self, env):
        nodes = [cached_node(env, f"n{i}") for i in range(4)]
        placement = CacheLocalityPlacement()
        job = reading_job("job", File("dataset7", 100 * MB))
        first = placement.select_node(job, nodes)
        # Same dataset, same candidates: always the same node (affinity).
        assert all(
            placement.select_node(job, nodes) is first for _ in range(5)
        )

    def test_cold_datasets_spread_over_nodes(self, env):
        nodes = [cached_node(env, f"n{i}") for i in range(4)]
        placement = CacheLocalityPlacement()
        picked = {
            placement.select_node(
                reading_job(f"job{i}", File(f"dataset{i}", 100 * MB)), nodes
            ).name
            for i in range(16)
        }
        assert len(picked) > 1

    def test_nodes_without_page_cache_score_zero(self, env):
        bare = NodeState(Host(env, "bare", cores=4), storage=None)
        job = reading_job("job", File("dataset", 100 * MB))
        assert CacheLocalityPlacement().score(job, bare) == 0.0


class TestRegistry:
    def test_make_placement_by_name(self):
        assert isinstance(make_placement("round-robin"), RoundRobinPlacement)
        assert isinstance(make_placement("least-loaded"), LeastLoadedPlacement)
        assert isinstance(make_placement("cache"), CacheLocalityPlacement)
        assert isinstance(make_placement("cache-aware"), CacheLocalityPlacement)

    def test_make_placement_passthrough_and_unknown(self):
        placement = RoundRobinPlacement()
        assert make_placement(placement) is placement
        with pytest.raises(ConfigurationError):
            make_placement("random")
