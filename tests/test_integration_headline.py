"""Integration tests checking the paper's headline qualitative results.

These are scaled-down versions of the paper's experiments (smaller files so
the test suite stays fast) asserting the *shape* of the results:

* the cacheless simulator grossly overestimates I/O times, the page cache
  model stays close to the calibrated reference (Exp 1, Exp 4);
* concurrent write times plateau once the page cache saturates with dirty
  data (Exp 2);
* NFS reads benefit from the server read cache while writethrough writes do
  not (Exp 3);
* repeated reads of a cached file cost memory bandwidth, not disk bandwidth.
"""

import pytest

from repro.experiments.exp1_single import exp1_errors, exp1_mean_errors, run_exp1
from repro.experiments.exp2_concurrent import run_exp2
from repro.experiments.exp4_nighres import exp4_errors, exp4_mean_errors
from repro.experiments.metrics import error_reduction_factor
from repro.units import GB, MB


CHUNK = 100 * MB


class TestHeadlineErrorReduction:
    def test_exp1_page_cache_reduces_error_by_a_large_factor(self):
        errors = exp1_errors(2 * GB, chunk_size=CHUNK)
        means = exp1_mean_errors(errors)
        factor = error_reduction_factor(
            errors["wrench"].values(), errors["wrench-cache"].values()
        )
        assert means["wrench-cache"] < 100.0
        assert means["wrench"] > 300.0
        assert factor > 3.0

    def test_exp4_nighres_error_reduction(self):
        errors = exp4_errors(chunk_size=50 * MB)
        means = exp4_mean_errors(errors)
        assert means["wrench-cache"] < means["wrench"] / 3.0

    def test_first_read_is_accurate_for_all_simulators(self):
        errors = exp1_errors(2 * GB, chunk_size=CHUNK)
        for simulator in ("wrench", "wrench-cache", "pysim"):
            assert errors[simulator]["Read 1"] < 25.0


class TestCacheBehaviourShape:
    def test_cached_rereads_use_memory_bandwidth(self):
        run = run_exp1("wrench-cache", 2 * GB, chunk_size=CHUNK, trace_interval=None)
        # Read 2 re-reads the file written by task 1 (fully cached); it must
        # be much faster than the initial, fully-uncached Read 1.
        assert run.durations["Read 2"] < run.durations["Read 1"] / 3.0

    def test_cacheless_rereads_do_not_benefit(self):
        run = run_exp1("wrench", 2 * GB, chunk_size=CHUNK, trace_interval=None)
        assert run.durations["Read 2"] == pytest.approx(run.durations["Read 1"],
                                                        rel=0.05)

    def test_exp1_memory_profile_consistency(self):
        run = run_exp1("wrench-cache", 2 * GB, chunk_size=CHUNK, trace_interval=1.0)
        assert run.memory_trace, "memory profile must be sampled"
        for snapshot in run.memory_trace:
            assert snapshot.cached <= snapshot.total + 1e-6
            assert snapshot.dirty <= snapshot.cached + 1e-6
            assert snapshot.used == pytest.approx(
                snapshot.cached + snapshot.anonymous, rel=1e-6, abs=1e-3
            )
            # Dirty data stays below the dirty ratio threshold.
            assert snapshot.dirty <= snapshot.dirty_threshold * 1.01

    def test_exp1_cache_contents_track_files(self):
        run = run_exp1("wrench-cache", 2 * GB, chunk_size=CHUNK, trace_interval=None)
        contents = run.cache_contents_per_operation()
        # After Read 1, file1 is fully cached (it fits in memory).
        assert contents["Read 1"].get("file1", 0.0) == pytest.approx(2 * GB, rel=0.01)
        # After Write 3, file4 is present in the cache.
        assert contents["Write 3"].get("file4", 0.0) > 0


class TestConcurrencyShape:
    def test_write_time_plateau_under_dirty_saturation(self):
        """Write times jump once aggregate dirty data exceeds the threshold."""
        few = run_exp2("wrench-cache", 2, input_size=1 * GB, chunk_size=CHUNK)
        # 2 apps x 1 GB of writes per task stays below the dirty threshold
        # (20 % of 250 GiB), so writes happen at memory bandwidth.
        per_write_few = few.write_time / 3  # three writes per app
        assert per_write_few < 2.0

        many = run_exp2("wrench-cache", 24, input_size=1 * GB, chunk_size=CHUNK)
        assert many.write_time > few.write_time

    def test_cacheless_times_grow_linearly_with_apps(self):
        one = run_exp2("wrench", 1, input_size=1 * GB, chunk_size=CHUNK)
        four = run_exp2("wrench", 4, input_size=1 * GB, chunk_size=CHUNK)
        assert four.read_time == pytest.approx(4 * one.read_time, rel=0.2)

    def test_page_cache_model_beats_cacheless_under_concurrency(self):
        cached = run_exp2("wrench-cache", 8, input_size=1 * GB, chunk_size=CHUNK)
        cacheless = run_exp2("wrench", 8, input_size=1 * GB, chunk_size=CHUNK)
        assert cached.read_time < cacheless.read_time
        assert cached.makespan < cacheless.makespan


class TestNFSShape:
    def test_nfs_reads_benefit_from_server_cache_but_writes_do_not(self):
        cached = run_exp2("wrench-cache", 4, input_size=1 * GB, chunk_size=CHUNK,
                          nfs=True)
        cacheless = run_exp2("wrench", 4, input_size=1 * GB, chunk_size=CHUNK,
                             nfs=True)
        # Reads: the server read cache helps the page-cache simulator.
        assert cached.read_time < cacheless.read_time
        # Writes: writethrough keeps both simulators at disk bandwidth, so
        # the page cache model brings no significant benefit.
        assert cached.write_time == pytest.approx(cacheless.write_time, rel=0.35)

    def test_nfs_reference_agrees_better_with_cache_model(self):
        reference = run_exp2("real", 4, input_size=1 * GB, chunk_size=CHUNK, nfs=True)
        cached = run_exp2("wrench-cache", 4, input_size=1 * GB, chunk_size=CHUNK,
                          nfs=True)
        cacheless = run_exp2("wrench", 4, input_size=1 * GB, chunk_size=CHUNK,
                             nfs=True)
        cache_error = abs(cached.read_time - reference.read_time)
        cacheless_error = abs(cacheless.read_time - reference.read_time)
        assert cache_error < cacheless_error
