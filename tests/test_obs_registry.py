"""Tests for the telemetry metrics registry (``repro.obs.registry``)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, publish
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_modes(self):
        for mode, expected in (("last", 2.0), ("sum", 5.0),
                               ("min", 2.0), ("max", 3.0)):
            left, right = Gauge(mode), Gauge(mode)
            left.set(3.0)
            right.set(2.0)
            left.merge_from(right)
            assert left.value == expected, mode

    def test_never_set_gauge_is_transparent(self):
        left, right = Gauge("min"), Gauge("min")
        right.set(7.0)
        left.merge_from(right)
        # An untouched gauge must not contribute its 0.0 default to a min.
        assert left.value == 7.0
        assert left.updates == 1

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Gauge("sum").merge_from(Gauge("max"))
        with pytest.raises(ValueError):
            Gauge(mode="typo")


class TestHistogram:
    def test_weighted_observations(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        histogram.observe(0.5, weight=2.0)
        histogram.observe(5.0, weight=1.0)
        histogram.observe(50.0, weight=0.5)
        assert histogram.buckets == [2.0, 1.0, 0.5]
        assert histogram.weight == 3.5
        assert histogram.min == 0.5
        assert histogram.max == 50.0
        assert histogram.mean == pytest.approx((0.5 * 2 + 5.0 + 50.0 * 0.5) / 3.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_merge_requires_equal_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).merge_from(Histogram(bounds=(2.0,)))


def _shard(jobs: int, depth: float, waits) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("jobs", node=f"node{jobs}").inc(jobs)
    registry.counter("jobs_total").inc(jobs)
    registry.gauge("queue_depth", mode="max").set(depth)
    for wait in waits:
        registry.histogram("wait", bounds=(1.0, 4.0)).observe(wait)
    return registry


class TestRegistryMerge:
    def test_merge_is_associative(self):
        # Exactly representable values (integers / binary fractions), so
        # the fold order cannot introduce rounding differences and the
        # comparison is exact, as the docstring promises.
        def shards():
            return (
                _shard(1, 2.0, [0.5, 2.0]),
                _shard(2, 8.0, [8.0]),
                _shard(3, 4.0, [0.25, 1.5, 3.0]),
            )

        a1, b1, c1 = shards()
        left = a1.merge(b1).merge(c1)  # (a + b) + c

        a2, b2, c2 = shards()
        right = a2.merge(b2.merge(c2))  # a + (b + c)

        assert left.as_dict() == right.as_dict()

    def test_merged_totals(self):
        merged = MetricsRegistry.merged(
            [_shard(1, 2.0, [0.5]), _shard(2, 8.0, [8.0])]
        )
        out = merged.as_dict()
        assert out["jobs_total"][""] == 3.0
        assert out["queue_depth"][""] == 8.0
        # Labelled series stay separate.
        assert out["jobs"]["node=node1"] == 1.0
        assert out["jobs"]["node=node2"] == 2.0
        assert out["wait"][""]["weight"] == 2.0

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")

        other = MetricsRegistry()
        other.gauge("metric").set(1.0)
        with pytest.raises(ValueError):
            registry.merge(other)

    def test_spec_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1.0, 3.0))


class TestPublish:
    def test_publishes_numeric_fields_with_labels(self):
        registry = MetricsRegistry()
        publish(registry, "cache",
                {"hit_ratio": 0.5, "read_ops": 4, "enabled": True,
                 "name": "nodeA"},
                host="nodeA")
        out = registry.as_dict()
        assert out["cache.hit_ratio"]["host=nodeA"] == 0.5
        assert out["cache.read_ops"]["host=nodeA"] == 4.0
        # Booleans and strings are skipped: the registry holds numbers.
        assert "cache.enabled" not in out
        assert "cache.name" not in out

    def test_publishes_as_dict_objects(self):
        from repro.pagecache.stats import CacheStatistics

        stats = CacheStatistics()
        stats.record_hit("f", 3.0)
        stats.record_miss("f", 1.0)
        registry = MetricsRegistry()
        publish(registry, "cache", stats)
        assert registry.as_dict()["cache.hit_ratio"][""] == 0.75
