"""Tests of the sweep runner's robustness layer.

Wall-clock timeouts, identically-reseeded retries with exponential
backoff, recovery from a worker pool broken by a dying worker, the
point-value cache that makes killed sweeps resumable, and per-point
simulator snapshots under ``snapshot_plan``.  The governing invariant:
no recovery mechanism may change a sweep's results — a disturbed sweep
and an undisturbed one return byte-identical values.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.runner import (
    PointOptions,
    SweepPointError,
    make_spec,
    point_cache_key,
    register_experiment,
    run_sweep,
    _execute_point,
)
from repro.snapshot import SnapshotPlan, canonical_json


@pytest.fixture
def patched_sleep(monkeypatch):
    """Capture retry backoff sleeps instead of actually sleeping."""
    sleeps = []
    monkeypatch.setattr(runner, "_sleep", sleeps.append)
    return sleeps


# -------------------------------------------------------------- timeout
class TestTimeout:
    def test_point_over_budget_is_interrupted(self):
        import time

        def spin(**kwargs):
            for _ in range(10_000):
                time.sleep(0.01)

        register_experiment("rt-spin", spin)
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep([make_spec("rt-spin")], timeout=0.2)
        assert "PointTimeoutError" in str(excinfo.value)

    def test_fast_point_unaffected_by_timeout(self):
        register_experiment("rt-fast", lambda **kw: "done")
        results = run_sweep([make_spec("rt-fast")], timeout=30.0)
        assert results[0].value == "done"

    def test_timer_is_cleared_after_the_point(self):
        import signal

        register_experiment("rt-quick", lambda **kw: 1)
        run_sweep([make_spec("rt-quick")], timeout=5.0)
        # No pending real-timer may leak out of the sweep.
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


# -------------------------------------------------------------- retries
class TestRetries:
    def test_flaky_point_recovers_with_backoff(self, patched_sleep):
        calls = {"n": 0}

        def flaky(**kwargs):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "recovered"

        register_experiment("rt-flaky", flaky)
        results = run_sweep([make_spec("rt-flaky")], retries=3,
                            retry_backoff=0.5)
        assert results[0].value == "recovered"
        assert calls["n"] == 3
        # Exponential: 0.5, then 1.0 (the third attempt succeeded).
        assert patched_sleep == [0.5, 1.0]

    def test_retries_reuse_the_identical_seed(self, patched_sleep):
        seeds = []

        def flaky_seeded(seed=None, **kwargs):
            seeds.append(seed)
            if len(seeds) < 3:
                raise RuntimeError("transient")
            return seed

        register_experiment("rt-flaky-seed", flaky_seeded)
        results = run_sweep(
            [make_spec("rt-flaky-seed", seed_key="p0")],
            base_seed=42, retries=2,
        )
        assert len(set(seeds)) == 1, "retries must not reseed"
        assert results[0].value == seeds[0]

    def test_exhausted_retries_report_attempt_count(self, patched_sleep):
        register_experiment(
            "rt-hopeless",
            lambda **kw: (_ for _ in ()).throw(RuntimeError("always"))
        )
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep([make_spec("rt-hopeless")], retries=2)
        assert "after 3 attempts" in str(excinfo.value)
        assert patched_sleep == [0.5, 1.0]

    def test_no_retries_by_default(self, patched_sleep):
        calls = {"n": 0}

        def fail_once(**kwargs):
            calls["n"] += 1
            raise RuntimeError("boom")

        register_experiment("rt-failonce", fail_once)
        with pytest.raises(SweepPointError):
            run_sweep([make_spec("rt-failonce")])
        assert calls["n"] == 1
        assert patched_sleep == []


# ---------------------------------------------------------- broken pool
def _die_once(marker: str = "", tag: int = 0, **kwargs):
    """Point that hard-kills its worker exactly once (marker-file latch)."""
    if tag == 1 and marker and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return f"value-{tag}"


register_experiment("rt-die-once", "tests.test_runner_robustness:_die_once")


def _die_always(**kwargs):
    os._exit(1)


register_experiment("rt-die-always",
                    "tests.test_runner_robustness:_die_always")


class TestBrokenPool:
    def test_killed_worker_pool_recovers(self, tmp_path):
        """One worker hard-exits mid-point; the sweep still completes
        with outputs identical to an undisturbed sweep."""
        marker = str(tmp_path / "killed-once")
        specs = [
            make_spec("rt-die-once", marker=marker, tag=tag)
            for tag in range(4)
        ]
        disturbed = run_sweep(specs, workers=2)
        assert os.path.exists(marker), "the worker was never killed"

        undisturbed = run_sweep(
            [make_spec("rt-die-once", marker="", tag=tag) if tag != 1
             else make_spec("rt-die-once",
                            marker=marker, tag=tag)  # latch already set
             for tag in range(4)],
            workers=2,
        )
        assert ([r.value for r in disturbed]
                == [r.value for r in undisturbed]
                == [f"value-{t}" for t in range(4)])

    def test_respawn_budget_exhaustion_raises(self):
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep([make_spec("rt-die-always"),
                       make_spec("rt-die-always")],
                      workers=2, pool_respawns=0)
        assert "respawn budget" in str(excinfo.value)


# ------------------------------------------------------------ the cache
class TestPointCache:
    def test_cached_points_are_not_recomputed(self, tmp_path):
        calls = {"n": 0}

        def counting(x=0, **kwargs):
            calls["n"] += 1
            return x * 10

        register_experiment("rt-counting", counting)
        specs = [make_spec("rt-counting", x=x) for x in range(3)]
        first = run_sweep(specs, checkpoint_dir=tmp_path)
        assert calls["n"] == 3
        second = run_sweep(specs, checkpoint_dir=tmp_path)
        assert calls["n"] == 3, "cached values must short-circuit"
        assert [r.value for r in first] == [r.value for r in second]

    def test_partial_cache_runs_only_the_missing_points(self, tmp_path):
        calls = {"n": 0}

        def counting(x=0, **kwargs):
            calls["n"] += 1
            return x

        register_experiment("rt-counting2", counting)
        specs = [make_spec("rt-counting2", x=x) for x in range(4)]
        run_sweep(specs[:2], checkpoint_dir=tmp_path)
        assert calls["n"] == 2
        results = run_sweep(specs, checkpoint_dir=tmp_path)
        assert calls["n"] == 4, "only the two missing points may run"
        assert [r.value for r in results] == [0, 1, 2, 3]

    def test_cache_key_distinguishes_params_and_seed(self):
        a = make_spec("e", x=1)
        b = make_spec("e", x=2)
        assert point_cache_key(a, None) != point_cache_key(b, None)
        assert point_cache_key(a, 1) != point_cache_key(a, 2)
        assert point_cache_key(a, 1) == point_cache_key(a, 1)

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        register_experiment("rt-const", lambda **kw: "fresh")
        spec = make_spec("rt-const")
        key = point_cache_key(spec, None)
        bad = tmp_path / f"point-{key}.pkl"
        bad.write_bytes(b"this is not a pickle")
        results = run_sweep([spec], checkpoint_dir=tmp_path)
        assert results[0].value == "fresh"
        # And the recomputed value replaced the corrupt entry.
        with open(bad, "rb") as handle:
            assert pickle.load(handle) == "fresh"

    def test_progress_counts_cached_points(self, tmp_path):
        register_experiment("rt-progress", lambda x=0, **kw: x)
        specs = [make_spec("rt-progress", x=x) for x in range(3)]
        run_sweep(specs[:2], checkpoint_dir=tmp_path)
        seen = []
        run_sweep(specs, checkpoint_dir=tmp_path,
                  progress=lambda r, done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


# -------------------------------------------------- snapshots in sweeps
class TestSweepSnapshots:
    def test_snapshot_plan_requires_checkpoint_dir(self):
        with pytest.raises(ConfigurationError):
            run_sweep([make_spec("exp6")],
                      snapshot_plan=SnapshotPlan.fixed(5.0))

    def test_checkpointed_point_matches_plain_point(self, tmp_path):
        from repro.experiments.exp6_cluster import run_exp6

        plain = run_exp6("cache", n_jobs=30)
        results = run_sweep(
            [make_spec("exp6", placement="cache", n_jobs=30)],
            checkpoint_dir=tmp_path,
            snapshot_plan=SnapshotPlan.fixed(5.0),
        )
        assert canonical_json(results[0].value) == canonical_json(plain)

    def test_killed_point_resumes_from_its_snapshot(self, tmp_path):
        """Simulate a worker death mid-point: the first attempt times out
        after snapshots were written; the retry resumes from the last
        snapshot and completes with byte-identical results."""
        from repro.experiments.exp6_cluster import run_exp6

        plain = run_exp6("cache", n_jobs=30)
        spec = make_spec("exp6", placement="cache", n_jobs=30)
        key = point_cache_key(spec, None)
        run_dir = tmp_path / f"run-{key}"

        # "Crash" mid-point: run the checkpointed point by hand up to a
        # boundary, leaving snapshots behind, as a killed worker would.
        from repro.snapshot import latest_snapshot, write_snapshot
        from repro.snapshot.recipe import SimRecipe, build_from_recipe

        sim = build_from_recipe(SimRecipe("exp6", dict(spec.params)))
        sim.step_until(5.0)
        run_dir.mkdir(parents=True)
        write_snapshot(sim, run_dir / "snap-00000001.json")
        assert latest_snapshot(run_dir) is not None
        del sim

        results = run_sweep(
            [spec],
            checkpoint_dir=tmp_path,
            snapshot_plan=SnapshotPlan.fixed(5.0),
        )
        assert canonical_json(results[0].value) == canonical_json(plain)
        # The finished point's snapshots were pruned with its value cached.
        assert not run_dir.exists()

    def test_execute_point_runs_checkpointed_when_plan_set(self, tmp_path):
        """_execute_point routes through the snapshot machinery."""
        from repro.experiments.exp6_cluster import run_exp6

        plain = run_exp6("cache", n_jobs=30)
        spec = make_spec("exp6", placement="cache", n_jobs=30)
        options = PointOptions(
            checkpoint_dir=str(tmp_path),
            snapshot_plan=SnapshotPlan.fixed(4.0, keep=3),
        )
        index, ok, value, _, _ = _execute_point((0, spec, None, options))
        assert ok, value
        assert canonical_json(value) == canonical_json(plain)
