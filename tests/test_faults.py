"""Tests of the seeded fault-injection layer (crashes, stragglers, elasticity).

Unit tests pin the :class:`FaultPlan` validation and the failure-aware
placement; integration tests drive crashes through the whole stack — the
scheduler's checkpoint-rollback-requeue path, page-cache invalidation,
flow aborts and the exact byte accounting after a mid-transfer crash —
and check that every run is deterministic and every submitted job still
completes.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ElasticNodeSpec,
    FaultInjector,
    FaultPlan,
    NodeFaultSpec,
    StragglerSpec,
)
from repro.filesystem.file import File
from repro.platform.host import Host
from repro.scheduler.cluster import NodeState
from repro.scheduler.job import Job
from repro.scheduler.placement import (
    FailureAwarePlacement,
    make_placement,
)
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.units import MB


# ----------------------------------------------------------------- plan
class TestFaultPlan:
    def test_zero_plan_is_zero(self):
        plan = FaultPlan()
        assert plan.is_zero
        assert not plan

    def test_any_spec_makes_plan_nonzero(self):
        assert not FaultPlan(node_faults=(NodeFaultSpec(mtbf=10.0),)).is_zero
        assert not FaultPlan(stragglers=(StragglerSpec(),)).is_zero
        assert not FaultPlan(elastic=(ElasticNodeSpec(node="node1"),)).is_zero

    def test_lists_are_coerced_to_tuples(self):
        plan = FaultPlan(node_faults=[NodeFaultSpec(mtbf=5.0)])
        assert isinstance(plan.node_faults, tuple)

    @pytest.mark.parametrize("kwargs", [
        dict(mtbf=0.0),
        dict(mtbf=-1.0),
        dict(mtbf=10.0, mttr=-1.0),
        dict(mtbf=10.0, first_failure_after=-1.0),
        dict(mtbf=10.0, max_failures=-1),
    ])
    def test_node_fault_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            NodeFaultSpec(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(compute_factor=0.0),
        dict(compute_factor=1.5),
        dict(io_factor=-0.1),
        dict(period=10.0),  # period without a finite duration
        dict(period=5.0, duration=10.0),  # period <= duration
        dict(max_delay=-1.0),
    ])
    def test_straggler_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StragglerSpec(**kwargs)

    def test_elastic_validation(self):
        with pytest.raises(ConfigurationError):
            ElasticNodeSpec(node="")  # a concrete node is required
        with pytest.raises(ConfigurationError):
            ElasticNodeSpec(node="*")  # no wildcard for elastic nodes
        with pytest.raises(ConfigurationError):
            ElasticNodeSpec(node="node1", join_time=5.0, leave_time=1.0)

    def test_duplicate_elastic_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(elastic=(
                ElasticNodeSpec(node="node1"),
                ElasticNodeSpec(node="node1", join_time=1.0),
            ))


# ------------------------------------------------- failure-aware placement
def make_node(env, name: str, cores: int = 4, n_failures: int = 0) -> NodeState:
    node = NodeState(Host(env, name, cores=cores), storage=None)
    node.n_failures = n_failures
    return node


def io_job(label: str = "job", dataset: str = "dataset") -> Job:
    workflow = Workflow(label)
    workflow.add_task(Task.from_cpu_time(
        "work", 1.0, inputs=[File(dataset, 100 * MB)],
    ))
    return Job(workflow, cores=1, arrival_time=0.0, label=label)


class TestFailureAwarePlacement:
    def test_registered_by_name(self):
        strategy = make_placement("failure-aware")
        assert isinstance(strategy, FailureAwarePlacement)

    def test_penalty_validation(self):
        with pytest.raises(ConfigurationError):
            FailureAwarePlacement(penalty=-1.0)

    def test_cold_path_avoids_crash_prone_nodes(self, env):
        healthy = make_node(env, "n1")
        flaky = make_node(env, "n2", n_failures=3)
        job = io_job()
        # Whatever the rendezvous weights say, the node with failure
        # history is only picked when no healthier candidate exists.
        chosen = FailureAwarePlacement().select_node(job, [healthy, flaky])
        assert chosen is healthy
        assert FailureAwarePlacement().select_node(job, [flaky]) is flaky

    def test_zero_history_matches_cache_locality(self, env):
        nodes = [make_node(env, f"n{i}") for i in range(4)]
        job = io_job()
        aware = FailureAwarePlacement().select_node(job, nodes)
        plain = make_placement("cache").select_node(job, nodes)
        assert aware is plain


# ----------------------------------------------------------- integration
def cluster_simulation(n_nodes: int = 1, cores_per_node: int = 4, *,
                       cache_mode: str = "writeback",
                       fault_plan=None,
                       placement: str = "round-robin") -> Simulation:
    simulation = Simulation(
        config=SimulationConfig(cache_mode=cache_mode, trace_interval=None),
        fault_plan=fault_plan,
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(
        policy="preemptive-priority", placement=placement
    )
    return simulation


def submit_io_job(simulation: Simulation, label: str, cpu_time: float, *,
                  dataset: File, output_size: float, cores: int = 4,
                  arrival: float = 0.0) -> Job:
    workflow = Workflow(label)
    workflow.add_task(Task.from_cpu_time(
        "work", cpu_time, inputs=[dataset],
        outputs=[File(f"{label}_out", output_size)],
    ))
    return simulation.submit_job(
        workflow, cores=cores, arrival_time=arrival,
        estimated_runtime=cpu_time, label=label,
    )


def inject_crash(simulation: Simulation, node_name: str, *,
                 at: float, repair_after: float) -> None:
    """Schedule one deterministic crash/repair outside any fault plan."""
    scheduler = simulation.scheduler
    scheduler.fault_mode = True  # requeued work needs the kick wakeup
    env = simulation.env

    def killer():
        yield env.timeout(at)
        node = next(n for n in scheduler.nodes if n.name == node_name)
        scheduler.fail_node(node_name)
        # Let the victims' interrupts deliver (rollback releases memory)
        # before the page cache is dropped — the injector does the same.
        yield env.timeout(0)
        if node.host.memory_manager is not None:
            node.host.memory_manager.invalidate_all()
        yield env.timeout(repair_after)
        scheduler.restore_node(node_name)

    env.process(killer(), name=f"crash-{node_name}")


class TestCrashRestart:
    def test_crashed_job_restarts_and_completes(self):
        simulation = cluster_simulation()
        dataset = File("dataset", 100 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "low", 5.0, dataset=dataset,
                      output_size=50 * MB)
        inject_crash(simulation, "node1", at=2.0, repair_after=3.0)
        result = simulation.run()

        record = next(r for r in result.scheduler.records if r.label == "low")
        assert record.restarts == 1
        assert record.preemptions == 0
        metrics = result.scheduler
        assert metrics.n_jobs == 1  # the restarted job completed
        assert metrics.n_node_failures == 1
        assert metrics.n_job_restarts == 1
        # The in-flight segment earned zero credit: ~2s of compute lost.
        assert metrics.lost_work_seconds > 0.0

    def test_crash_on_sole_node_needs_kick_to_resume(self):
        # Single node, repair long after the queue drained to empty: the
        # scheduler has nothing to wait on but the kick; if the kick were
        # broken this run would deadlock instead of completing.
        simulation = cluster_simulation()
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "only", 1.0, dataset=dataset,
                      output_size=10 * MB)
        inject_crash(simulation, "node1", at=0.5, repair_after=10.0)
        result = simulation.run()

        record = next(r for r in result.scheduler.records if r.label == "only")
        assert record.restarts == 1
        # Resumed only after the repair at t = 0.5 + 10.
        assert record.end_time > 10.5

    def test_mid_transfer_crash_leaves_byte_accounting_exact(self):
        # Satellite: crash while the job's 1000 MB output is streaming
        # through the page cache to disk.  The partial dirty output must
        # be rolled back (cache and disk), the page cache invalidated,
        # and the restarted attempt must leave exactly one copy of
        # everything — the PR 5 accounting invariants under a crash.
        simulation = cluster_simulation(cache_mode="writethrough")
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "low", 1.0, dataset=dataset,
                      output_size=1000 * MB)
        # t=2.0 is mid-write: ~1s compute, then ~2.15s streaming to disk.
        inject_crash(simulation, "node1", at=2.0, repair_after=1.0)
        result = simulation.run()

        record = next(r for r in result.scheduler.records if r.label == "low")
        assert record.restarts == 1
        node = simulation.scheduler.nodes[0]
        # Exactly the dataset plus one completed output copy on disk —
        # no leaked partial transfer, no double-allocation.
        assert node.storage.disk.used == pytest.approx(1010 * MB)
        # All anonymous memory released (the crash rollback released the
        # killed attempt's footprint; completion released the rest).
        manager = node.host.memory_manager
        assert manager.anonymous == pytest.approx(0.0)
        # The cache's extent bookkeeping survived the invalidation.
        manager.lists.assert_consistent()
        # Exactly one *completed* write operation was traced.
        assert len(result.operations_of("write", "low")) == 1

    def test_flows_abort_cleanly_on_crash_during_read(self):
        simulation = cluster_simulation(cache_mode="writeback")
        dataset = File("dataset", 1000 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "reader", 1.0, dataset=dataset,
                      output_size=10 * MB)
        # t=0.5 is mid-read (1000 MB at 465 MBps takes ~2.15s).
        inject_crash(simulation, "node1", at=0.5, repair_after=1.0)
        result = simulation.run()

        record = next(r for r in result.scheduler.records
                      if r.label == "reader")
        assert record.restarts == 1
        node = simulation.scheduler.nodes[0]
        # After invalidation the retry re-read from disk; both the disk
        # channels and the cache are consistent.
        assert node.storage.disk.used == pytest.approx(1010 * MB)
        node.host.memory_manager.lists.assert_consistent()


class TestFaultPlanRuns:
    def _run(self, plan, n_jobs: int = 12):
        from repro.experiments.exp6_cluster import run_exp6

        return run_exp6(
            "cache", policy="preemptive-priority", n_jobs=n_jobs, n_nodes=3,
            n_datasets=4, input_size=200 * MB, output_size=50 * MB,
            fault_plan=plan,
        )

    def test_seeded_crashes_are_deterministic(self):
        plan = FaultPlan(seed=7, node_faults=(
            NodeFaultSpec(mtbf=8.0, mttr=2.0),
        ))
        first = self._run(plan)
        second = self._run(plan)
        assert first.makespan == second.makespan
        assert first.n_node_failures == second.n_node_failures
        assert first.n_job_restarts == second.n_job_restarts
        assert first.lost_work_seconds == second.lost_work_seconds
        assert first.n_node_failures > 0
        # Every submitted job completed despite the crashes.
        assert first.n_jobs == 12

    def test_fault_seed_changes_fault_times(self):
        base = FaultPlan(seed=7, node_faults=(NodeFaultSpec(mtbf=8.0, mttr=2.0),))
        other = FaultPlan(seed=8, node_faults=(NodeFaultSpec(mtbf=8.0, mttr=2.0),))
        assert self._run(base).makespan != self._run(other).makespan

    def test_zero_plan_is_byte_identical_to_no_plan(self):
        with_plan = self._run(FaultPlan())
        without = self._run(None)
        assert with_plan.makespan == without.makespan
        assert with_plan.cache_hit_ratio == without.cache_hit_ratio
        assert with_plan.mean_wait_time == without.mean_wait_time
        assert with_plan.mean_bounded_slowdown == without.mean_bounded_slowdown
        assert with_plan.n_node_failures == 0

    def test_nonzero_plan_requires_cluster_scheduler(self):
        plan = FaultPlan(node_faults=(NodeFaultSpec(mtbf=10.0),))
        simulation = Simulation(
            config=SimulationConfig(trace_interval=None), fault_plan=plan
        )
        simulation.create_cluster_platform(1, with_nfs_server=False)
        with pytest.raises(ConfigurationError):
            simulation.run()

    def test_unknown_elastic_node_rejected(self):
        plan = FaultPlan(elastic=(ElasticNodeSpec(node="nope"),))
        simulation = cluster_simulation(n_nodes=2, fault_plan=plan)
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "job", 1.0, dataset=dataset,
                      output_size=10 * MB)
        with pytest.raises(ConfigurationError):
            simulation.run()


class TestStragglers:
    def test_rates_restored_exactly_after_window(self):
        plan = FaultPlan(seed=3, stragglers=(
            StragglerSpec(node="node1", compute_factor=0.5, io_factor=0.5,
                          start=0.5, duration=2.0),
        ))
        simulation = cluster_simulation(fault_plan=plan)
        dataset = File("dataset", 100 * MB)
        simulation.stage_file_replicated(dataset)
        submit_io_job(simulation, "job", 6.0, dataset=dataset,
                      output_size=10 * MB)
        host = simulation.host("node1")
        speed_before = host.cpu.speed
        bandwidths_before = [
            channel.bandwidth for channel in host.channels()
        ]
        simulation.run()
        # Exact (==) restoration: the injector records and restores the
        # original rates verbatim instead of multiplying back.
        assert host.cpu.speed == speed_before
        assert [c.bandwidth for c in host.channels()] == bandwidths_before

    def test_straggler_slows_the_run_deterministically(self):
        def run(plan):
            simulation = cluster_simulation(fault_plan=plan)
            dataset = File("dataset", 200 * MB)
            simulation.stage_file_replicated(dataset)
            submit_io_job(simulation, "job", 4.0, dataset=dataset,
                          output_size=10 * MB)
            return simulation.run().scheduler.makespan

        # The slowdown must be in force *before* the compute segment is
        # granted a core (CPU speed is sampled at grant time), so the
        # window opens at t=0 — the job's read still takes ~0.43s.
        plan = FaultPlan(seed=3, stragglers=(
            StragglerSpec(node="node1", compute_factor=0.25),
        ))
        slow_a, slow_b = run(plan), run(plan)
        fast = run(None)
        assert slow_a == slow_b
        assert slow_a > fast


class TestElasticCapacity:
    def test_late_joiner_takes_work_and_drains_before_leaving(self):
        plan = FaultPlan(elastic=(
            ElasticNodeSpec(node="node2", join_time=2.0, leave_time=6.0,
                            drain_poll=0.5),
        ))
        simulation = cluster_simulation(n_nodes=2, fault_plan=plan)
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        for i in range(6):
            submit_io_job(simulation, f"job{i}", 2.0, dataset=dataset,
                          output_size=10 * MB, cores=4, arrival=0.2 * i)
        result = simulation.run()

        records = {r.label: r for r in result.scheduler.records}
        assert len(records) == 6  # everything completed
        node2_jobs = [r for r in records.values() if r.node == "node2"]
        # The late joiner took work once it joined...
        assert node2_jobs
        assert min(r.start_time for r in node2_jobs) >= 2.0
        # ...and is draining (left) at the end of the run.
        node2 = next(n for n in simulation.scheduler.nodes
                     if n.name == "node2")
        assert node2.draining
        assert not node2.running

    def test_withheld_node_gets_no_work_before_join(self):
        plan = FaultPlan(elastic=(
            ElasticNodeSpec(node="node2", join_time=100.0),
        ))
        simulation = cluster_simulation(n_nodes=2, fault_plan=plan)
        dataset = File("dataset", 10 * MB)
        simulation.stage_file_replicated(dataset)
        for i in range(4):
            submit_io_job(simulation, f"job{i}", 1.0, dataset=dataset,
                          output_size=10 * MB, arrival=0.0)
        result = simulation.run()
        assert all(r.node == "node1" for r in result.scheduler.records)


class TestFaultInjectorWiring:
    def test_zero_plan_starts_nothing(self, env):
        # Unit-level: a zero plan must not flip the scheduler into fault
        # mode (that would change event ordering and break parity).
        class _Scheduler:
            fault_mode = False

        scheduler = _Scheduler()
        injector = FaultInjector(env, scheduler, FaultPlan())
        injector.start()
        assert injector.processes == []
        assert scheduler.fault_mode is False
