"""Unit tests for simulated processes (generators, interrupts, failures)."""

import pytest

from repro.des import Interrupt
from repro.des.process import Process


class TestProcessBasics:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return "value"

        process = env.process(proc(env))
        assert env.run(until=process) == "value"

    def test_is_alive_lifecycle(self, env):
        def proc(env):
            yield env.timeout(1.0)

        process = env.process(proc(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive
        assert process.ok

    def test_process_name_defaults_to_generator_name(self, env):
        def my_process(env):
            yield env.timeout(0.0)

        process = env.process(my_process(env))
        assert process.name == "my_process"

    def test_exception_propagates_to_run(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise RuntimeError("task failed")

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="task failed"):
            env.run()

    def test_exception_can_be_caught_by_waiter(self, env):
        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("inner")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except ValueError as exc:
                return f"caught {exc}"

        process = env.process(waiter(env))
        assert env.run(until=process) == "caught inner"

    def test_yielding_non_event_raises(self, env):
        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_waiting_on_already_processed_event(self, env):
        def proc(env):
            timeout = env.timeout(1.0)
            yield env.timeout(2.0)
            # `timeout` was processed while we were waiting on the longer one.
            value = yield timeout
            return value, env.now

        timeout_value, now = env.run(until=env.process(proc(env)))
        assert now == 2.0

    def test_nested_processes(self, env):
        def child(env, duration):
            yield env.timeout(duration)
            return duration * 2

        def parent(env):
            first = yield env.process(child(env, 1.0))
            second = yield env.process(child(env, 2.0))
            return first + second

        assert env.run(until=env.process(parent(env))) == 6.0
        assert env.now == 3.0


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim(env):
            try:
                yield env.timeout(10.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def attacker(env, process):
            yield env.timeout(1.0)
            process.interrupt("enough waiting")

        victim_process = env.process(victim(env))
        env.process(attacker(env, victim_process))
        result = env.run(until=victim_process)
        assert result == ("interrupted", "enough waiting", 1.0)

    def test_interrupting_finished_process_raises(self, env):
        def quick(env):
            yield env.timeout(0.5)

        process = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_process_cannot_interrupt_itself(self, env):
        def proc(env):
            yield env.timeout(0.0)
            env.active_process.interrupt()

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="not allowed to interrupt itself"):
            env.run()

    def test_interrupted_process_can_resume_waiting(self, env):
        def victim(env):
            target = env.timeout(10.0)
            try:
                yield target
            except Interrupt:
                pass
            # Wait for something else after the interrupt.
            yield env.timeout(1.0)
            return env.now

        def attacker(env, process):
            yield env.timeout(2.0)
            process.interrupt()

        victim_process = env.process(victim(env))
        env.process(attacker(env, victim_process))
        assert env.run(until=victim_process) == 3.0
