"""Regenerate the telemetry export golden (``tests/data/obs_exp6_trace.json``).

Run from the repo root::

    PYTHONPATH=src:tests python tests/record_obs_golden.py

The golden pins the exact Chrome-trace JSON the small Exp 6 workload
exports: the trace must be byte-deterministic (no wall-clock content,
sorted keys, fixed separators), so any diff means either the workload,
the instrumentation points or the exporter changed.  Regenerate only on
purpose, and bump ``obs_workload.WORKLOAD_VERSION`` when the workload
itself (not just the instrumentation) changes.
"""

from __future__ import annotations

from pathlib import Path

from obs_workload import run_observed_exp6
from repro.obs import dumps_chrome_trace


def main() -> None:
    _result, observer = run_observed_exp6()
    payload = dumps_chrome_trace(observer)
    path = Path(__file__).parent / "data" / "obs_exp6_trace.json"
    path.write_text(payload + "\n")
    print(f"wrote {path} ({len(payload)} bytes, "
          f"{len(observer.spans)} spans, "
          f"{len(observer.counter_samples)} samples)")


if __name__ == "__main__":
    main()
