"""Unit tests for the cacheless, page-cached and NFS storage services."""

import pytest

from repro.errors import ConfigurationError
from repro.filesystem import File, NFSConfig
from repro.pagecache.config import PageCacheConfig
from repro.platform.host import Host
from repro.platform.memory import MemoryDevice
from repro.platform.network import Network
from repro.platform.storage import Disk
from repro.simulator.cacheless import SimpleStorageService
from repro.simulator.storage_service import NFSStorageService, PageCachedStorageService
from repro.units import GB, MBps


def make_host(env, name, with_memory=True):
    host = Host(env, name, cores=4)
    if with_memory:
        host.set_memory(
            MemoryDevice.symmetric(env, f"{name}.ram", 1000 * MBps, size=10 * GB)
        )
    disk = Disk.symmetric(env, f"{name}.ssd", 100 * MBps, capacity=100 * GB)
    host.add_disk(disk, mount_point="/data")
    return host, disk


def make_network(env, *hosts):
    network = Network(env)
    link = network.add_link("lan", 1000 * MBps)
    for i, src in enumerate(hosts):
        for dst in hosts[i + 1:]:
            network.add_route(src, dst, [link])
    return network


CACHE_OFF = PageCacheConfig(periodic_flushing=False)


class TestSimpleStorageService:
    def test_read_and_write_at_disk_bandwidth(self, env, runner):
        host, disk = make_host(env, "node1", with_memory=False)
        service = SimpleStorageService(env, host, disk)
        file = File("f", 1 * GB)

        def scenario(env):
            write = yield from service.write_file(file, writer_host=host)
            read = yield from service.read_file(file, reader_host=host)
            return write, read

        write, read = runner(env, scenario(env))
        assert write.elapsed == pytest.approx(10.0)
        assert read.elapsed == pytest.approx(10.0)
        assert read.cache_bytes == 0

    def test_repeated_reads_cost_the_same(self, env, runner):
        host, disk = make_host(env, "node1", with_memory=False)
        service = SimpleStorageService(env, host, disk)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            first = yield from service.read_file(file, reader_host=host)
            second = yield from service.read_file(file, reader_host=host)
            return first.elapsed, second.elapsed

        first, second = runner(env, scenario(env))
        assert first == pytest.approx(second)

    def test_remote_access_requires_network(self, env, runner):
        server, disk = make_host(env, "server", with_memory=False)
        client, _ = make_host(env, "client", with_memory=False)
        service = SimpleStorageService(env, server, disk)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            yield from service.read_file(file, reader_host=client)

        with pytest.raises(ConfigurationError):
            runner(env, scenario(env))

    def test_remote_access_pays_network_transfer(self, env, runner):
        server, disk = make_host(env, "server", with_memory=False)
        client, _ = make_host(env, "client", with_memory=False)
        network = make_network(env, "server", "client")
        service = SimpleStorageService(env, server, disk, network=network)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            result = yield from service.read_file(file, reader_host=client)
            return result

        result = runner(env, scenario(env))
        # 10 s of disk read + 1 s of network transfer.
        assert result.elapsed == pytest.approx(11.0)

    def test_stage_and_delete_track_disk_usage(self, env):
        host, disk = make_host(env, "node1", with_memory=False)
        service = SimpleStorageService(env, host, disk)
        file = File("f", 10 * GB)
        service.stage_file(file)
        assert disk.used == 10 * GB
        service.delete_file(file)
        assert disk.used == 0


class TestPageCachedStorageService:
    def test_requires_host_memory(self, env):
        host, disk = make_host(env, "node1", with_memory=False)
        with pytest.raises(ConfigurationError):
            PageCachedStorageService(env, host, disk, cache_config=CACHE_OFF)

    def test_second_read_hits_cache(self, env, runner):
        host, disk = make_host(env, "node1")
        service = PageCachedStorageService(env, host, disk, cache_config=CACHE_OFF)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            first = yield from service.read_file(file, reader_host=host, owner="app")
            host.memory_manager.release_anonymous_memory(owner="app")
            second = yield from service.read_file(file, reader_host=host, owner="app")
            return first, second

        first, second = runner(env, scenario(env))
        assert first.elapsed == pytest.approx(10.0)  # disk
        assert second.elapsed == pytest.approx(1.0)  # memory
        assert second.cache_bytes == pytest.approx(1 * GB)

    def test_writeback_write_is_fast_then_readable_from_cache(self, env, runner):
        host, disk = make_host(env, "node1")
        service = PageCachedStorageService(env, host, disk, cache_config=CACHE_OFF)
        file = File("f", 1 * GB)

        def scenario(env):
            write = yield from service.write_file(file, writer_host=host)
            read = yield from service.read_file(file, reader_host=host)
            return write, read

        write, read = runner(env, scenario(env))
        assert write.elapsed == pytest.approx(1.0)  # memory bandwidth
        assert read.cache_bytes == pytest.approx(1 * GB)
        assert service.cache_mode == "writeback"

    def test_writethrough_mode(self, env, runner):
        host, disk = make_host(env, "node1")
        service = PageCachedStorageService(
            env, host, disk, cache_config=CACHE_OFF, writethrough=True
        )
        file = File("f", 1 * GB)

        def scenario(env):
            write = yield from service.write_file(file, writer_host=host)
            return write

        write = runner(env, scenario(env))
        assert write.elapsed == pytest.approx(10.0)  # disk bandwidth
        assert service.cache_mode == "writethrough"
        assert host.memory_manager.dirty == 0

    def test_shared_memory_manager_per_host(self, env):
        host, disk = make_host(env, "node1")
        other_disk = Disk.symmetric(env, "ssd2", 100 * MBps)
        host.add_disk(other_disk, mount_point="/data2")
        a = PageCachedStorageService(env, host, disk, cache_config=CACHE_OFF)
        b = PageCachedStorageService(env, host, other_disk, cache_config=CACHE_OFF)
        assert a.memory_manager is b.memory_manager

    def test_delete_file_invalidates_cache(self, env, runner):
        host, disk = make_host(env, "node1")
        service = PageCachedStorageService(env, host, disk, cache_config=CACHE_OFF)
        file = File("f", 1 * GB)

        def scenario(env):
            yield from service.write_file(file, writer_host=host)

        runner(env, scenario(env))
        service.delete_file(file)
        assert host.memory_manager.cached_amount("f") == 0


class TestNFSStorageService:
    def _setup(self, env, nfs_config=None):
        server, server_disk = make_host(env, "server")
        client, _ = make_host(env, "client")
        network = make_network(env, "server", "client")
        service = NFSStorageService(
            env, server, server_disk, network,
            nfs_config=nfs_config or NFSConfig.hpc_default(),
            cache_config=CACHE_OFF,
        )
        return service, server, client

    def test_reads_require_reader_host(self, env, runner):
        service, server, client = self._setup(env)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            yield from service.read_file(file)

        with pytest.raises(ConfigurationError):
            runner(env, scenario(env))

    def test_first_read_pays_disk_plus_network(self, env, runner):
        service, server, client = self._setup(env)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            result = yield from service.read_file(file, reader_host=client)
            return result

        result = runner(env, scenario(env))
        # 10 s server disk read + 1 s network.
        assert result.elapsed == pytest.approx(11.0)
        assert result.storage_bytes == pytest.approx(1 * GB)

    def test_second_read_hits_server_cache(self, env, runner):
        service, server, client = self._setup(env)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            yield from service.read_file(file, reader_host=client)
            second = yield from service.read_file(file, reader_host=client)
            return second

        second = runner(env, scenario(env))
        # 1 s server memory read + 1 s network.
        assert second.elapsed == pytest.approx(2.0)
        assert second.cache_bytes == pytest.approx(1 * GB)

    def test_writethrough_write_pays_network_and_disk(self, env, runner):
        service, server, client = self._setup(env)
        file = File("f", 1 * GB)

        def scenario(env):
            result = yield from service.write_file(file, writer_host=client)
            return result

        result = runner(env, scenario(env))
        # 1 s network + 10 s server disk write (writethrough).
        assert result.elapsed == pytest.approx(11.0)
        assert result.storage_bytes == pytest.approx(1 * GB)
        assert server.memory_manager.dirty == 0
        # The written data populates the server read cache.
        assert server.memory_manager.cached_amount("f") == pytest.approx(1 * GB)

    def test_writeback_server_cache(self, env, runner):
        service, server, client = self._setup(
            env, nfs_config=NFSConfig(server_cache_mode="writeback")
        )
        file = File("f", 1 * GB)

        def scenario(env):
            result = yield from service.write_file(file, writer_host=client)
            return result

        result = runner(env, scenario(env))
        # 1 s network + 1 s server memory write.
        assert result.elapsed == pytest.approx(2.0)
        assert server.memory_manager.dirty == pytest.approx(1 * GB)

    def test_cache_mode_property(self, env):
        service, _, _ = self._setup(env)
        assert service.cache_mode == "writethrough"

    def test_client_anonymous_memory_accounted(self, env, runner):
        service, server, client = self._setup(env)
        file = File("f", 1 * GB)
        service.stage_file(file)

        def scenario(env):
            yield from service.read_file(file, reader_host=client, owner="app")

        runner(env, scenario(env))
        assert client.memory_manager is None  # no cache on the client host
