"""Unit tests for network links, routes and the network registry."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.network import Link, Network, Route
from repro.units import MB, MBps


class TestLink:
    def test_invalid_parameters(self, env):
        with pytest.raises(ConfigurationError):
            Link(env, "bad", bandwidth=0)
        with pytest.raises(ConfigurationError):
            Link(env, "bad", bandwidth=100, latency=-1)

    def test_transfer_time_includes_latency(self, env, runner):
        link = Link(env, "net", bandwidth=100 * MBps, latency=0.25)

        def proc(env):
            yield link.transfer(100 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(1.25)

    def test_concurrent_transfers_share_bandwidth(self, env):
        link = Link(env, "net", bandwidth=100 * MBps)
        finish = {}

        def proc(env, label):
            yield link.transfer(100 * MB)
            finish[label] = env.now

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(2.0)

    def test_bytes_transferred_counter(self, env, runner):
        link = Link(env, "net", bandwidth=100 * MBps)

        def proc(env):
            yield link.transfer(10 * MB)
            yield link.transfer(15 * MB)

        runner(env, proc(env))
        assert link.bytes_transferred == 25 * MB


class TestRoute:
    def test_requires_at_least_one_link(self):
        with pytest.raises(ConfigurationError):
            Route("a", "b", [])

    def test_latency_and_bottleneck(self, env):
        fast = Link(env, "fast", bandwidth=1000 * MBps, latency=0.1)
        slow = Link(env, "slow", bandwidth=100 * MBps, latency=0.2)
        route = Route("a", "b", [fast, slow])
        assert route.latency == pytest.approx(0.3)
        assert route.bottleneck is slow


class TestNetwork:
    def _simple_network(self, env, latency=0.0):
        network = Network(env)
        link = network.add_link("lan", 100 * MBps, latency)
        network.add_route("client", "server", [link])
        return network

    def test_duplicate_link_rejected(self, env):
        network = Network(env)
        network.add_link("lan", 100 * MBps)
        with pytest.raises(ConfigurationError):
            network.add_link("lan", 200 * MBps)

    def test_symmetric_route_registration(self, env):
        network = self._simple_network(env)
        assert network.has_route("client", "server")
        assert network.has_route("server", "client")

    def test_asymmetric_route_registration(self, env):
        network = Network(env)
        link = network.add_link("lan", 100 * MBps)
        network.add_route("a", "b", [link], symmetric=False)
        assert network.has_route("a", "b")
        assert not network.has_route("b", "a")

    def test_missing_route_raises(self, env):
        network = Network(env)
        with pytest.raises(ConfigurationError):
            network.route("nowhere", "elsewhere")

    def test_transfer_time(self, env, runner):
        network = self._simple_network(env, latency=0.5)

        def proc(env):
            yield network.transfer("client", "server", 100 * MB)
            return env.now

        assert runner(env, proc(env)) == pytest.approx(1.5)

    def test_local_transfer_is_free(self, env, runner):
        network = self._simple_network(env)

        def proc(env):
            yield network.transfer("client", "client", 100 * MB)
            return env.now

        assert runner(env, proc(env)) == 0.0

    def test_zero_size_transfer_is_free(self, env, runner):
        network = self._simple_network(env)

        def proc(env):
            yield network.transfer("client", "server", 0)
            return env.now

        assert runner(env, proc(env)) == 0.0

    def test_transfers_share_bottleneck(self, env):
        network = self._simple_network(env)
        finish = []

        def proc(env):
            yield network.transfer("client", "server", 100 * MB)
            finish.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert finish == [pytest.approx(2.0), pytest.approx(2.0)]
