"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.des import Environment
from repro.pagecache import IOController, MemoryManager, PageCacheConfig
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GiB, MBps


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def memory(env) -> MemoryDevice:
    """A 16 GiB memory device at the paper's simulated bandwidth."""
    return MemoryDevice.symmetric(env, "ram", 4812 * MBps, size=16 * GiB)


@pytest.fixture
def disk(env) -> Disk:
    """A local SSD at the paper's simulated bandwidth."""
    return Disk.symmetric(env, "ssd", 465 * MBps)


@pytest.fixture
def cache_config() -> PageCacheConfig:
    """A page cache configuration with the background flusher disabled.

    Most unit tests drive flushing explicitly; disabling the periodic
    flusher keeps the event queue finite so ``env.run()`` terminates.
    """
    return PageCacheConfig(periodic_flushing=False)


@pytest.fixture
def memory_manager(env, memory, cache_config) -> MemoryManager:
    """A memory manager over the ``memory`` fixture."""
    return MemoryManager(env, memory, cache_config, name="test-mm")


@pytest.fixture
def io_controller(env, memory_manager) -> IOController:
    """An I/O controller over the ``memory_manager`` fixture."""
    return IOController(env, memory_manager)


def run_process(env: Environment, generator):
    """Run ``generator`` as a process to completion and return its value."""
    process = env.process(generator)
    return env.run(until=process)


@pytest.fixture
def runner():
    """Callable running a generator-based process to completion."""
    return run_process
