"""Telemetry parity: enabling observation must not change simulated results.

The telemetry invariant is *observe, never schedule*: spans and metrics
read simulator state but never mutate it, and the DES sampler's periodic
timeouts interleave with — without reordering — the simulation's own
events.  These tests pin that by comparing the canonical JSON of an
entire simulation result (everything except wall-clock time) across the
telemetry settings, byte for byte.
"""

from __future__ import annotations

import json

from obs_workload import build_small_exp6, result_fingerprint
from repro.obs import Observer
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.units import GB


def _canonical(result) -> str:
    return json.dumps(result_fingerprint(result), sort_keys=True)


def _run_single_node(observe):
    from repro.apps.synthetic import synthetic_workflow

    simulation = Simulation(
        config=SimulationConfig(cache_mode="writeback"), observe=observe
    )
    simulation.create_single_node_platform()
    service = simulation.create_storage_service("node1", "/local")
    app = synthetic_workflow(input_size=2 * GB)
    simulation.stage_file(app.input_files()[0], service)
    simulation.submit_workflow(app, host="node1", storage=service)
    return simulation.run()


class TestParity:
    def test_single_node_results_byte_identical(self):
        disabled = _canonical(_run_single_node(observe=False))
        enabled = _canonical(_run_single_node(observe=True))
        assert enabled == disabled

    def test_cluster_results_byte_identical(self):
        disabled = _canonical(build_small_exp6(observe=False).run())
        enabled = _canonical(build_small_exp6(observe=True).run())
        assert enabled == disabled

    def test_custom_observer_instance_also_parity(self):
        observer = Observer(max_spans=64, des_sample_interval=0.25)
        enabled = build_small_exp6(observe=observer).run()
        disabled = build_small_exp6(observe=False).run()
        assert _canonical(enabled) == _canonical(disabled)
        assert enabled.observer is observer
        # The tiny ring truncated (64 << emitted spans) without harm.
        assert observer.spans_emitted > 64
        assert observer.dropped_spans == observer.spans_emitted - 64

    def test_disabled_simulation_has_no_observer(self):
        result = _run_single_node(observe=False)
        assert result.observer is None


class TestEnvVarSwitch:
    def test_repro_obs_enables_telemetry(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        result = _run_single_node(observe=None)
        assert result.observer is not None
        assert result.observer.spans

    def test_explicit_false_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        result = _run_single_node(observe=False)
        assert result.observer is None

    def test_falsy_env_values_stay_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        result = _run_single_node(observe=None)
        assert result.observer is None
