"""Tests for the experiment harness and small-scale experiment runs.

The full paper-scale experiments (20-100 GB files, 32 applications) run in
the benchmark harness; here we exercise the same code paths at a reduced
scale so the test suite stays fast.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.exp1_single import (
    EXP1_OPERATIONS,
    exp1_errors,
    exp1_mean_errors,
    run_exp1,
)
from repro.experiments.exp2_concurrent import run_exp2, sweep_exp2
from repro.experiments.exp4_nighres import EXP4_OPERATIONS, exp4_errors, run_exp4
from repro.experiments.exp5_scaling import measure_point, run_scaling, scaling_regressions
from repro.experiments.harness import SIMULATORS, ScenarioConfig, build_simulation
from repro.experiments.report import (
    concurrency_report,
    exp1_error_report,
    exp4_error_report,
    scaling_report,
    table1_report,
    table2_report,
    table3_report,
)
from repro.experiments.exp2_concurrent import exp2_series
from repro.units import GB, MB


class TestBuildSimulation:
    def test_unknown_simulator_rejected(self):
        with pytest.raises(ConfigurationError):
            build_simulation("not-a-simulator")

    @pytest.mark.parametrize("simulator", SIMULATORS)
    def test_local_scenarios_build(self, simulator):
        simulation, service = build_simulation(simulator, ScenarioConfig(nfs=False))
        assert service is not None
        expected_mode = "none" if simulator == "wrench" else "writeback"
        assert service.cache_mode == expected_mode

    @pytest.mark.parametrize("simulator", SIMULATORS)
    def test_nfs_scenarios_build(self, simulator):
        simulation, service = build_simulation(simulator, ScenarioConfig(nfs=True))
        expected_mode = "none" if simulator == "wrench" else "writethrough"
        assert service.cache_mode == expected_mode

    def test_real_simulator_uses_asymmetric_bandwidths(self):
        simulation, _ = build_simulation("real")
        disk = simulation.host("node1").disk("/local")
        assert disk.read_bandwidth != disk.write_bandwidth

    def test_pysim_disables_bandwidth_sharing(self):
        simulation, _ = build_simulation("pysim")
        disk = simulation.host("node1").disk("/local")
        assert disk.read_channel.sharing is False


class TestExp1SmallScale:
    SIZE = 1 * GB
    CHUNK = 100 * MB

    def test_run_exp1_produces_all_operations(self):
        result = run_exp1("wrench-cache", self.SIZE, chunk_size=self.CHUNK,
                          trace_interval=1.0)
        assert set(result.durations) == set(EXP1_OPERATIONS)
        assert all(duration > 0 for duration in result.durations.values())
        assert result.makespan > 0
        assert len(result.memory_trace) > 0
        series = result.operation_series()
        assert [label for label, _ in series] == list(EXP1_OPERATIONS)

    def test_cache_contents_tracked_per_operation(self):
        result = run_exp1("wrench-cache", self.SIZE, chunk_size=self.CHUNK,
                          trace_interval=None)
        contents = result.cache_contents_per_operation()
        assert set(contents) == set(EXP1_OPERATIONS)
        # After Write 1, file2 must be at least partially cached.
        assert contents["Write 1"].get("file2", 0.0) > 0

    def test_cacheless_is_slower_than_cached(self):
        cached = run_exp1("wrench-cache", self.SIZE, chunk_size=self.CHUNK,
                          trace_interval=None)
        cacheless = run_exp1("wrench", self.SIZE, chunk_size=self.CHUNK,
                             trace_interval=None)
        assert cacheless.durations["Read 2"] > cached.durations["Read 2"]
        assert cacheless.durations["Write 1"] > cached.durations["Write 1"]

    def test_exp1_errors_shape_and_headline(self):
        errors = exp1_errors(self.SIZE, chunk_size=self.CHUNK)
        assert set(errors) == {"pysim", "wrench", "wrench-cache"}
        means = exp1_mean_errors(errors)
        # Headline result: the page cache model reduces the simulation error
        # by a large factor compared to the cacheless simulator.
        assert means["wrench"] > 3 * means["wrench-cache"]
        assert means["pysim"] == pytest.approx(means["wrench-cache"], rel=0.5)

    def test_error_report_renders(self):
        errors = exp1_errors(self.SIZE, chunk_size=self.CHUNK)
        text = exp1_error_report(self.SIZE, errors)
        assert "Read 2" in text
        assert "wrench-cache" in text


class TestExp2SmallScale:
    def test_run_exp2_point(self):
        point = run_exp2("wrench-cache", 2, input_size=0.5 * GB, chunk_size=50 * MB)
        assert point.n_apps == 2
        assert point.read_time > 0
        assert point.write_time > 0
        assert point.as_row()[0] == 2

    def test_sweep_monotonic_read_times_for_cacheless(self):
        points = sweep_exp2("wrench", counts=(1, 4), input_size=0.5 * GB,
                            chunk_size=50 * MB)
        assert points[0].read_time < points[1].read_time

    def test_series_and_report(self):
        series = exp2_series(("wrench", "wrench-cache"), counts=(1, 2),
                             input_size=0.5 * GB, chunk_size=50 * MB)
        text = concurrency_report("Figure 5", series)
        assert "wrench read (s)" in text


class TestExp4SmallScale:
    def test_run_exp4_operations(self):
        result = run_exp4("wrench-cache")
        assert set(result.durations) == set(EXP4_OPERATIONS)
        assert all(duration > 0 for duration in result.durations.values())

    def test_exp4_errors_headline(self):
        errors = exp4_errors()
        assert set(errors) == {"wrench", "wrench-cache"}
        from repro.experiments.exp4_nighres import exp4_mean_errors

        means = exp4_mean_errors(errors)
        assert means["wrench"] > 3 * means["wrench-cache"]
        text = exp4_error_report(errors)
        assert "Read 4" in text


class TestScalingSmallScale:
    def test_measure_point_and_regression(self):
        point = measure_point("wrench-cache", 1, nfs=False, input_size=0.2 * GB,
                              chunk_size=50 * MB)
        assert point.wallclock_time > 0
        assert point.label == "WRENCH-cache (local)"
        curves = run_scaling(counts=(1, 2, 3), configs=(("wrench", False),),
                             input_size=0.2 * GB, chunk_size=50 * MB)
        fits = scaling_regressions(curves)
        assert "WRENCH (local)" in fits
        assert fits["WRENCH (local)"].n == 3
        text = scaling_report(curves, fits)
        assert "Linear fit" in text


class TestStaticReports:
    def test_table_reports_render(self):
        assert "20.0" in table1_report()
        assert "tissue_classification" in table2_report()
        assert "4812" in table3_report()
