"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that legacy editable installs (``pip install -e . --no-use-pep517``) work on
systems without the ``wheel`` package, e.g. offline environments.
"""

from setuptools import setup

setup()
