#!/usr/bin/env python3
"""Simulate the Nighres cortical-reconstruction workflow (Exp 4).

The workflow has four steps (skull stripping, tissue classification, region
extraction, cortical reconstruction) whose file sizes and CPU times were
measured on the real application (Table II).  Later steps re-read files
produced earlier, so the page cache turns most of their reads into memory
accesses; the cacheless baseline charges every byte at disk bandwidth.

Run it with::

    python examples/nighres_workflow.py
"""

from __future__ import annotations

from repro import Simulation, SimulationConfig
from repro.analysis.tables import format_table
from repro.apps.nighres import NIGHRES_STEPS, nighres_input_files, nighres_workflow


def run(cache_mode: str):
    simulation = Simulation(config=SimulationConfig(cache_mode=cache_mode,
                                                    trace_interval=None))
    simulation.create_single_node_platform()
    storage = simulation.create_storage_service("node1", "/local")
    workflow = nighres_workflow()
    for file in nighres_input_files():
        simulation.stage_file(file, storage)
    simulation.submit_workflow(workflow, host="node1", storage=storage,
                               label="nighres")
    return simulation.run()


def main() -> None:
    print("Nighres cortical reconstruction workflow (participant 0027430)\n")
    cacheless = run("none")
    cached = run("writeback")

    rows = []
    for index, step in enumerate(NIGHRES_STEPS, start=1):
        rows.append([
            f"{index}. {step.name}",
            cacheless.duration_of(step.name, "read"),
            cached.duration_of(step.name, "read"),
            cacheless.duration_of(step.name, "write"),
            cached.duration_of(step.name, "write"),
        ])
    print(format_table(
        ["step", "read no-cache (s)", "read page-cache (s)",
         "write no-cache (s)", "write page-cache (s)"],
        rows, precision=2,
    ))
    print(f"\nWorkflow makespan: {cacheless.makespan:.0f} s without page cache, "
          f"{cached.makespan:.0f} s with the writeback page cache model.")
    print("Steps 3 and 4 re-read files produced earlier (1376 MB and 393 MB), "
          "which is where the cache pays off.")


if __name__ == "__main__":
    main()
