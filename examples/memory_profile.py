#!/usr/bin/env python3
"""Reproduce the Exp 1 memory profile (Figure 4b) as an ASCII chart.

Runs a single instance of the synthetic application on a local disk with
the page cache model enabled, samples the memory manager every few
simulated seconds, and renders used memory, cache and dirty data over time
— the same observables the paper collects with ``atop``/``collectl`` on the
real cluster.

Run it with::

    python examples/memory_profile.py [file_size_GB]
"""

from __future__ import annotations

import sys

from repro.experiments.exp1_single import run_exp1
from repro.units import GB, GiB


def ascii_profile(samples, width: int = 60) -> str:
    """Render memory snapshots as a rough ASCII chart (one line per sample)."""
    if not samples:
        return "(no samples)"
    total = samples[0].total
    lines = [
        f"{'time (s)':>9}  {'used':>7}  {'cache':>7}  {'dirty':>7}  "
        f"0 {' ' * (width - 6)} {total / GiB:.0f} GiB",
    ]
    step = max(1, len(samples) // 50)
    for snap in samples[::step]:
        bar = [" "] * width
        cache_end = int(width * min(1.0, snap.cached / total))
        used_end = int(width * min(1.0, snap.used / total))
        dirty_end = int(width * min(1.0, snap.dirty / total))
        for i in range(cache_end):
            bar[i] = "c"
        for i in range(cache_end, used_end):
            bar[i] = "a"  # anonymous memory on top of the cache
        for i in range(dirty_end):
            bar[i] = "D"  # dirty subset of the cache
        lines.append(
            f"{snap.time:9.1f}  {snap.used / GB:6.1f}G  {snap.cached / GB:6.1f}G  "
            f"{snap.dirty / GB:6.1f}G  |{''.join(bar)}|"
        )
    lines.append("legend: D = dirty cache, c = clean cache, a = anonymous memory")
    return "\n".join(lines)


def main() -> None:
    file_size = (float(sys.argv[1]) if len(sys.argv) > 1 else 100.0) * GB
    print(f"Memory profile of the synthetic pipeline with {file_size / GB:.0f} GB files "
          f"(WRENCH-cache model)\n")
    result = run_exp1("wrench-cache", file_size, trace_interval=10.0)
    print(ascii_profile(result.memory_trace))
    print("\nPer-operation durations (s):")
    for label, duration in result.operation_series():
        print(f"  {label:10s} {duration:8.1f}")


if __name__ == "__main__":
    main()
