#!/usr/bin/env python3
"""Concurrent applications competing for one page cache and one disk (Exp 2).

Runs N independent instances of the synthetic application (3 GB files) on a
single 32-core node and reports the mean per-application read and write
times for the cacheless baseline and the page cache model — the curves of
Figure 5.  The write-time plateau appears once the aggregate dirty data
exceeds the dirty ratio and foreground flushing kicks in.

Run it with::

    python examples/concurrent_applications.py [max_apps]
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_table
from repro.experiments.exp2_concurrent import run_exp2
from repro.units import GB


def main() -> None:
    max_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    counts = [n for n in (1, 4, 8, 16, 24, 32) if n <= max_apps] or [max_apps]

    rows = []
    for n_apps in counts:
        cacheless = run_exp2("wrench", n_apps, input_size=3 * GB)
        cached = run_exp2("wrench-cache", n_apps, input_size=3 * GB)
        rows.append([
            n_apps,
            cacheless.read_time, cached.read_time,
            cacheless.write_time, cached.write_time,
        ])

    print("Mean per-application cumulative I/O times, 3 GB files on a local SSD\n")
    print(format_table(
        ["apps", "read no-cache (s)", "read page-cache (s)",
         "write no-cache (s)", "write page-cache (s)"],
        rows, precision=1,
    ))
    print("\nNote the write-time plateau of the page cache model at high concurrency:")
    print("once the aggregate dirty data hits the dirty ratio (20% of RAM), writes")
    print("must wait for flushing and converge towards disk bandwidth.")


if __name__ == "__main__":
    main()
