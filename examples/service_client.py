#!/usr/bin/env python3
"""Service mode: submit simulation jobs over HTTP, survive a crash.

This example boots the supervised simulation service on a throwaway data
directory, drives it the way any external client would — plain HTTP/JSON
with the standard library — and demonstrates the robustness headline:

* streaming submissions with idempotent tokens (safe retries),
* a kill -9 of the worker process mid-run,
* automatic restart + recovery from the latest snapshot and the durable
  submission log (no acknowledged job is lost),
* graceful drain with a final summary.

Run it with::

    PYTHONPATH=src python examples/service_client.py

Everything is headless and self-contained; the service listens on an
ephemeral localhost port and the data directory is removed on exit.
"""

from __future__ import annotations

import json
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.service import ServiceConfig, Supervisor
from repro.snapshot import SimRecipe, SnapshotPlan
from repro.units import MB

N_JOBS = 8


def call(method: str, url: str, body=None, timeout: float = 30.0):
    """One JSON request against the service; returns (status, payload)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        return exc.code, json.loads(raw) if raw else {}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        data_dir = Path(tmp) / "service-data"
        recipe = SimRecipe("service-cluster", dict(
            n_nodes=2, cores_per_node=4, n_datasets=4,
            input_size=64 * MB, chunk_size=32 * MB,
        ))
        supervisor = Supervisor(
            ServiceConfig(
                data_dir=data_dir, recipe=recipe, port=0,
                snapshot_plan=SnapshotPlan.fixed(0.5, keep=3),
            ),
            max_restarts=3, backoff=0.1,
        ).start()
        try:
            base = f"http://127.0.0.1:{supervisor.port()}"
            print(f"service listening on {base}")

            print(f"\nsubmitting {N_JOBS} jobs ...")
            for i in range(N_JOBS):
                status, ack = call("POST", f"{base}/jobs", {
                    "label": f"analysis{i}",
                    "dataset": i % 4,
                    "runtime": 1.0 + 0.5 * (i % 3),
                    "token": f"client-token-{i}",  # idempotent retries
                })
                print(f"  POST /jobs -> {status} "
                      f"seq={ack['seq']} t={ack['t']:.2f}")

            # A retried token is acknowledged once, not re-run.
            status, dup = call("POST", f"{base}/jobs", {
                "label": "analysis0", "dataset": 0, "runtime": 1.0,
                "token": "client-token-0",
            })
            print(f"  retried token -> {status} "
                  f"duplicate={dup.get('duplicate')}")

            # Crash the worker mid-run; the supervisor restarts it and
            # recovery replays the snapshot + submission log.
            time.sleep(0.5)
            killed = supervisor.kill_worker()
            print(f"\nkill -9 worker pid {killed} ...")
            while supervisor.pid == killed or not supervisor.alive:
                time.sleep(0.05)
            base = f"http://127.0.0.1:{supervisor.port()}"
            status, health = call("GET", f"{base}/healthz")
            print(f"recovered: pid {supervisor.pid}, "
                  f"restarts {supervisor.restarts}, health {health}")

            status, metrics = call("GET", f"{base}/metrics")
            sim = metrics["sim"]
            print(f"\nmetrics: t={sim['now']:.2f}s "
                  f"submitted={sim['submitted']} "
                  f"completed={sim['completed']} "
                  f"running={sim['running']}")

            status, job = call("GET", f"{base}/jobs/analysis0")
            print(f"job analysis0: {job['state']}")

            print("\ndraining ...")
            status, summary = call("POST", f"{base}/drain", {},
                                   timeout=120.0)
            print(f"summary: {summary['jobs_completed']}/"
                  f"{summary['jobs_submitted']} jobs, "
                  f"makespan {summary['makespan']:.2f}s, "
                  f"cache hit ratio {summary['cache_hit_ratio']:.2f}")
            supervisor.wait(timeout=60.0)
        finally:
            supervisor.stop(timeout=60.0)
    print("\ndone — no acknowledged submission was lost.")


if __name__ == "__main__":
    main()
