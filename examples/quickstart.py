#!/usr/bin/env python3
"""Quickstart: simulate one data-processing pipeline with and without a page cache.

This example builds a single 32-core node (250 GiB RAM, one local SSD),
runs the paper's synthetic three-task pipeline on a 20 GB file, and
compares three simulators:

* ``none``          — the cacheless baseline (original WRENCH behaviour);
* ``writethrough``  — page cache with synchronous writes;
* ``writeback``     — full Linux-like page cache (the paper's model).

Run it with::

    python examples/quickstart.py [file_size_GB]
"""

from __future__ import annotations

import sys

from repro import GB, Simulation, SimulationConfig
from repro.analysis.tables import format_table
from repro.apps.synthetic import synthetic_workflow
from repro.units import format_time


def run_once(cache_mode: str, file_size: float):
    """Run the synthetic pipeline with one cache mode and return the result."""
    simulation = Simulation(config=SimulationConfig(cache_mode=cache_mode,
                                                    trace_interval=None))
    simulation.create_single_node_platform()
    storage = simulation.create_storage_service("node1", "/local")

    workflow = synthetic_workflow(file_size)
    simulation.stage_file(workflow.input_files()[0], storage)
    simulation.submit_workflow(workflow, host="node1", storage=storage, label="app")
    return simulation.run()


def main() -> None:
    file_size = (float(sys.argv[1]) if len(sys.argv) > 1 else 20.0) * GB
    print(f"Synthetic 3-task pipeline, {file_size / GB:.0f} GB files\n")

    results = {mode: run_once(mode, file_size)
               for mode in ("none", "writethrough", "writeback")}

    rows = []
    for mode, result in results.items():
        rows.append([
            mode,
            result.total_read_time(),
            result.total_write_time(),
            result.makespan,
        ])
    print(format_table(
        ["cache mode", "total read (s)", "total write (s)", "makespan (s)"],
        rows, precision=1,
    ))

    writeback = results["writeback"]
    stats = writeback.cache_stats["node1"]
    print(f"\nWith the writeback page cache, {stats.hit_ratio * 100:.0f}% of the "
          f"bytes read by the application were served from memory,")
    print(f"and the pipeline finished in {format_time(writeback.makespan)} instead "
          f"of {format_time(results['none'].makespan)} without a cache.")


if __name__ == "__main__":
    main()
