#!/usr/bin/env python3
"""Remote (NFS) storage with a server-side page cache (Exp 3).

Builds a two-host platform — a 32-core compute node and an NFS server
connected by a 25 Gbps link — and runs concurrent synthetic applications
whose files live on the NFS export.  The server cache is writethrough (as
commonly configured in HPC clusters to avoid data loss) with the read cache
enabled, so writes pay the remote disk bandwidth while repeated reads are
served from the server's memory.

Run it with::

    python examples/nfs_cluster.py [apps]
"""

from __future__ import annotations

import sys

from repro import Simulation, SimulationConfig
from repro.analysis.tables import format_table
from repro.apps.concurrent import make_instances, stage_and_submit_instances
from repro.units import GB


def run(cache_mode: str, n_apps: int):
    simulation = Simulation(config=SimulationConfig(cache_mode="writeback",
                                                    trace_interval=None))
    simulation.create_cluster_platform(with_nfs_server=True)
    storage = simulation.create_nfs_storage_service(
        "storage1", "/export",
        cache_mode=cache_mode,
    )
    instances = make_instances(n_apps, 3 * GB)
    stage_and_submit_instances(simulation, instances, host="node1", storage=storage)
    return simulation.run()


def main() -> None:
    n_apps = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    print(f"{n_apps} concurrent applications, 3 GB files on an NFS export\n")

    cacheless = run("none", n_apps)
    writethrough = run("writethrough", n_apps)

    rows = [
        ["no server cache", cacheless.mean_app_read_time(),
         cacheless.mean_app_write_time(), cacheless.makespan],
        ["writethrough server cache", writethrough.mean_app_read_time(),
         writethrough.mean_app_write_time(), writethrough.makespan],
    ]
    print(format_table(
        ["configuration", "mean read (s)", "mean write (s)", "makespan (s)"],
        rows, precision=1,
    ))

    stats = writethrough.cache_stats.get("storage1")
    if stats is not None:
        print(f"\nServer cache hit ratio: {stats.hit_ratio * 100:.0f}% — the page "
              "cache only helps reads, since writethrough writes always touch the "
              "remote disk (the paper's Exp 3 observation).")


if __name__ == "__main__":
    main()
