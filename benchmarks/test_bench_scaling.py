"""Figure 8 — simulation-time scalability.

Measures the wall-clock time needed to run the simulation as a function of
the number of concurrent applications, for WRENCH and WRENCH-cache with
local and NFS I/O, and fits a linear regression to each curve (the
``y = a x + b`` annotations of Figure 8).

The sweep runs through the process-pool engine
(:mod:`repro.experiments.runner`) in its serial inline mode: this figure
*measures wall-clock per point*, so fanning points across workers would
make them contend for cores and contaminate the measurement (the
simulated outputs would stay identical — see ``test_bench_sweep.py`` for
the parallel-speedup benchmark).
"""

from __future__ import annotations


from conftest import paper_scale
from repro.experiments.exp5_scaling import run_scaling, scaling_regressions
from repro.experiments.report import scaling_report
from repro.units import GB, MB

COUNTS = (1, 4, 8, 16, 24, 32) if paper_scale() else (1, 4, 8, 16)
INPUT_SIZE = 3 * GB
CHUNK = 100 * MB


def test_fig8_simulation_time(benchmark, report):
    """Figure 8: simulation time vs number of concurrent applications."""

    def run():
        return run_scaling(COUNTS, input_size=INPUT_SIZE, chunk_size=CHUNK)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    fits = scaling_regressions(curves)
    text = scaling_report(curves, fits)
    report("fig8_simulation_time", text)

    # Simulation time scales linearly with the number of applications.
    # Since the PR 3 hot-path overhaul, the cacheless curves finish in a
    # few milliseconds per point at reduced scale — below timer noise —
    # so the fit-quality assertion only applies to curves with enough
    # signal (the slope sign is still checked for every curve).
    for label, fit in fits.items():
        assert fit.slope >= 0.0, label
        slowest = max(point.wallclock_time for point in curves[label])
        if slowest > 0.05:
            assert fit.r_squared > 0.7, label
    # The page cache model has a higher per-application simulation cost
    # than the cacheless simulator, as reported in the paper.
    assert (
        fits["WRENCH-cache (local)"].slope >= fits["WRENCH (local)"].slope
    )
