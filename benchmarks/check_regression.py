#!/usr/bin/env python
"""Benchmark-regression gate.

Compares a ``pytest-benchmark`` JSON results file against the committed
baseline (``benchmarks/baseline.json``) and fails when any benchmark's
median time regressed by more than the allowed slowdown.

Raw benchmark times depend on the machine running them, so both sides are
normalized by the ``test_reference_workload`` calibration benchmark (a
fixed pure-Python spin) before comparison: what is gated is each
benchmark's median *relative to the reference* — a machine-independent
measure of how much simulation the machine does per unit of its own
compute speed.

Usage
-----
Run the gate (exit code 1 on regression)::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-json=results.json
    python benchmarks/check_regression.py results.json

Regenerate the committed baseline after an intentional performance
change::

    python benchmarks/check_regression.py results.json --update
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Name of the calibration benchmark used for normalization.
REFERENCE_NAME = "test_reference_workload"

#: Default maximum allowed slowdown of the normalized median (1.25 = 25%).
DEFAULT_MAX_SLOWDOWN = 1.25

#: Default location of the committed baseline.
DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"

#: Added to both sides of the ratio so that benchmarks much shorter than
#: the reference workload (the table formatters, the sub-100ms ablations)
#: cannot trip the gate on run-to-run timer noise: a delta only counts
#: against the budget in proportion to how much of the reference
#: workload's runtime it represents.
NOISE_FLOOR = 0.1


def normalized_medians(results: dict) -> dict:
    """Map benchmark name -> median time / reference median."""
    medians = {
        bench["name"]: bench["stats"]["median"]
        for bench in results.get("benchmarks", [])
    }
    reference = medians.get(REFERENCE_NAME)
    if not reference or reference <= 0:
        raise SystemExit(
            f"calibration benchmark {REFERENCE_NAME!r} missing from the "
            "results; run the full benchmarks/ suite"
        )
    return {
        name: median / reference
        for name, median in medians.items()
        if name != REFERENCE_NAME
    }


def update_baseline(results: dict, baseline_path: Path) -> int:
    normalized = normalized_medians(results)
    baseline_path.write_text(
        json.dumps(
            {
                "reference": REFERENCE_NAME,
                "normalized_medians": dict(sorted(normalized.items())),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"baseline updated: {baseline_path} ({len(normalized)} benchmarks)")
    return 0


def check(results: dict, baseline_path: Path, max_slowdown: float,
          report_path: Path = None, subset: bool = False) -> int:
    baseline = json.loads(baseline_path.read_text())["normalized_medians"]
    normalized = normalized_medians(results)

    failures = []
    added = []
    comparison = {}
    for name, value in sorted(normalized.items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"NEW      {name}: {value:.3f} (no baseline; add with --update)")
            added.append(name)
            comparison[name] = {"status": "new", "current": value,
                                "baseline": None, "ratio": None}
            continue
        ratio = (value + NOISE_FLOOR) / (reference + NOISE_FLOOR)
        status = "OK" if ratio <= max_slowdown else "REGRESSED"
        print(
            f"{status:<8} {name}: {value:.3f} vs baseline {reference:.3f} "
            f"({ratio:.2f}x)"
        )
        comparison[name] = {"status": status.lower(), "current": value,
                            "baseline": reference, "ratio": ratio}
        if ratio > max_slowdown:
            failures.append((name, ratio))
    # A benchmark that vanished from the results loses its regression
    # protection; intentional removals/renames go through --update.  In
    # --subset mode (a marker-restricted run, e.g. `pytest -m perf`) the
    # absent benchmarks were never collected, so they are reported
    # informationally without failing the check.
    removed = sorted(set(baseline) - set(normalized))
    if subset:
        if removed:
            print(f"(subset run: {len(removed)} baseline benchmark(s) not "
                  "collected, skipped)")
        removed = []
    for name in removed:
        print(f"MISSING  {name}: in the baseline but not in the results")
        comparison[name] = {"status": "missing", "current": None,
                            "baseline": baseline[name], "ratio": None}

    if report_path is not None:
        report_path.write_text(
            json.dumps(
                {
                    "reference": REFERENCE_NAME,
                    "max_slowdown": max_slowdown,
                    "noise_floor": NOISE_FLOOR,
                    "n_regressed": len(failures),
                    "comparison": comparison,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"comparison report written to {report_path}")

    if failures or removed or added:
        if failures:
            print(
                f"\n{len(failures)} benchmark(s) regressed beyond "
                f"{(max_slowdown - 1) * 100:.0f}% of the normalized baseline:"
            )
            for name, ratio in failures:
                print(f"  {name}: {ratio:.2f}x")
        if removed:
            print(
                f"\n{len(removed)} baseline benchmark(s) missing from the "
                f"results: {', '.join(removed)}"
            )
        if added:
            # An ungated benchmark would stay ungated forever; force the
            # baseline entry into the same change that adds it.
            print(
                f"\n{len(added)} benchmark(s) have no baseline entry: "
                f"{', '.join(added)}"
            )
        print("If intentional, regenerate the baseline with --update.")
        return 1
    print(f"\nall {len(normalized)} benchmark(s) within the regression budget")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("results", type=Path,
                        help="pytest-benchmark JSON results file")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--max-slowdown", type=float,
                        default=DEFAULT_MAX_SLOWDOWN,
                        help="maximum allowed normalized-median ratio "
                             "(default: %(default)s)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results instead "
                             "of checking against it")
    parser.add_argument("--report", type=Path, default=None,
                        help="write the before/after comparison as JSON "
                             "(uploaded as a CI artifact)")
    parser.add_argument("--subset", action="store_true",
                        help="the results come from a marker-restricted "
                             "run: baseline benchmarks absent from the "
                             "results are skipped instead of failing "
                             "(vanished-benchmark protection is traded "
                             "away, so only use this for split runs whose "
                             "other half is checked too)")
    args = parser.parse_args(argv)

    results = json.loads(args.results.read_text())
    if args.update:
        return update_baseline(results, args.baseline)
    if not args.baseline.exists():
        raise SystemExit(
            f"baseline {args.baseline} not found; create it with --update"
        )
    return check(results, args.baseline, args.max_slowdown,
                 report_path=args.report, subset=args.subset)


if __name__ == "__main__":
    sys.exit(main())
