"""Exp 2 (Figure 5) — concurrent applications on a local disk.

Regenerates the read-time and write-time curves of Figure 5 (mean
per-application cumulative time vs number of concurrent applications) for
the calibrated reference ("real execution"), WRENCH and WRENCH-cache.
"""

from __future__ import annotations


from conftest import paper_scale
from repro.experiments.exp2_concurrent import exp2_series
from repro.experiments.report import concurrency_report
from repro.units import GB, MB

COUNTS = (1, 4, 8, 12, 16, 20, 24, 28, 32) if paper_scale() else (1, 4, 8, 16, 24, 32)
INPUT_SIZE = 3 * GB
CHUNK = 100 * MB
SIMULATORS = ("real", "wrench", "wrench-cache")


def test_fig5_concurrent_local(benchmark, report):
    """Figure 5: concurrent read/write times with 3 GB files on a local disk."""

    def run():
        return exp2_series(SIMULATORS, counts=COUNTS, input_size=INPUT_SIZE,
                           chunk_size=CHUNK, nfs=False)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = concurrency_report(
        "Figure 5: concurrent results with 3 GB files (Exp 2, local disk)", series
    )
    report("fig5_concurrent_local", text)

    last = {sim: series[sim][-1] for sim in SIMULATORS}
    # The cacheless simulator grossly overestimates read times at high
    # concurrency; WRENCH-cache stays close to the reference.
    assert last["wrench"].read_time > 2 * last["real"].read_time
    assert (
        abs(last["wrench-cache"].read_time - last["real"].read_time)
        < abs(last["wrench"].read_time - last["real"].read_time)
    )
    # Averaged over the whole sweep, the page cache model is closer to the
    # reference than the cacheless simulator for both reads and writes.
    def mean_gap(simulator, attribute):
        return sum(
            abs(getattr(point, attribute) - getattr(ref_point, attribute))
            for point, ref_point in zip(series[simulator], series["real"])
        ) / len(series["real"])

    assert mean_gap("wrench-cache", "read_time") < mean_gap("wrench", "read_time")
    assert mean_gap("wrench-cache", "write_time") < mean_gap("wrench", "write_time")
    # Write times plateau only after the page cache saturates with dirty
    # data: at low concurrency they are far below the cacheless prediction.
    first = {sim: series[sim][0] for sim in SIMULATORS}
    assert first["wrench-cache"].write_time < first["wrench"].write_time / 3
