#!/usr/bin/env python
"""CI gate: snapshot/restore parity and snapshot-file determinism.

Runs Exp 6 two ways and demands byte-identical canonical result JSON:

1. **Uninterrupted** — build, run to completion.
2. **Interrupted** — build, step to ``t = T``, snapshot to disk, then
   restore the snapshot *in a fresh Python process* (so nothing survives
   but the file) and run that restored simulation to completion.

Also writes the snapshot twice from independently built simulations and
asserts the two files are byte-for-byte identical — the snapshot format
itself must be deterministic, or resumed sweeps could not be audited.

Usage::

    PYTHONPATH=src python benchmarks/check_snapshot_parity.py

Exit status 0 on parity, 1 on any divergence.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

#: The checked scenario: large enough that the snapshot at T lands
#: mid-schedule (jobs queued, transfers in flight, cache warm), small
#: enough to finish in seconds.
N_JOBS = 40
SNAPSHOT_T = 8.0


def finished_point_json(simulation) -> str:
    """Run ``simulation`` to completion and canonicalize its Exp 6 point."""
    from repro.snapshot import canonical_json
    from repro.snapshot.recipe import finish_point

    result = simulation.run()
    return canonical_json(finish_point(simulation.recipe, result))


def child_restore(path: str) -> None:
    """Fresh-process half: restore the snapshot, finish, print the JSON."""
    from repro.snapshot import restore_simulation

    simulation = restore_simulation(Path(path))
    sys.stdout.write(finished_point_json(simulation))


def build() -> "object":
    from repro.experiments.exp6_cluster import build_exp6

    return build_exp6("cache", n_jobs=N_JOBS)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--restore", metavar="SNAPSHOT",
                        help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.restore:
        child_restore(args.restore)
        return 0

    from repro.snapshot import write_snapshot

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        print(f"exp6 n_jobs={N_JOBS}: uninterrupted run ...")
        reference = finished_point_json(build())

        print(f"snapshot at t={SNAPSHOT_T} ...")
        simulation = build()
        simulation.step_until(SNAPSHOT_T)
        snapshot = write_snapshot(simulation, tmp_path / "parity.json")
        del simulation

        print("restore in a fresh process ...")
        proc = subprocess.run(
            [sys.executable, __file__, "--restore", str(snapshot)],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            print(proc.stderr, file=sys.stderr)
            print("FAIL: restore process crashed", file=sys.stderr)
            return 1
        restored = proc.stdout
        if restored != reference:
            print("FAIL: restored run diverged from the uninterrupted run",
                  file=sys.stderr)
            print(f"  reference: {reference[:200]}...", file=sys.stderr)
            print(f"  restored:  {restored[:200]}...", file=sys.stderr)
            return 1
        print(f"parity OK ({len(reference)} canonical bytes)")

        print("snapshot-file determinism ...")
        second = build()
        second.step_until(SNAPSHOT_T)
        again = write_snapshot(second, tmp_path / "parity-again.json")
        first_bytes = snapshot.read_bytes()
        again_bytes = again.read_bytes()
        if first_bytes != again_bytes:
            print("FAIL: two snapshots of the same run differ byte-wise",
                  file=sys.stderr)
            return 1
        print(f"determinism OK ({len(first_bytes)} snapshot bytes)")

    print("snapshot parity: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
