"""Exp 9 — scheduling under node failures, stragglers and elastic capacity.

Sweeps MTBF over the exp6 cluster workload with the seeded fault plan and
reports degradation against the fault-free baseline of the *same seeded
workload*.  The headline claims: every submitted job completes no matter
how often nodes crash (checkpoint-rollback-requeue never loses work
permanently), and the makespan degrades with the crash rate while the
simulator charges the lost compute explicitly.
"""

from __future__ import annotations

from conftest import paper_scale
from repro.experiments.exp9_failures import (
    exp9_report,
    exp9_series,
    run_exp9,
)

MTBFS = (None, 120.0, 60.0, 30.0, 15.0)
SCALE = (
    dict(n_jobs=120, n_nodes=8, n_datasets=16)
    if paper_scale()
    else dict(n_jobs=60, n_nodes=6, n_datasets=12)
)


def test_exp9_failures_degrade_but_never_lose_jobs(benchmark, report):
    """All jobs complete under crashes; makespan degrades with crash rate."""

    def run():
        return exp9_series(MTBFS, mttr=10.0, **SCALE)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = points[None]
    text = exp9_report(points)
    worst = points[min(m for m in points if m is not None)]
    text += (
        f"\n\nWorst-case degradation (MTBF {min(m for m in MTBFS if m):g}s): "
        f"makespan x{worst.makespan / baseline.makespan:.2f}, "
        f"{worst.n_node_failures} crashes, {worst.n_job_restarts} restarts, "
        f"{worst.lost_work_seconds:.1f}s compute lost and redone"
    )
    report("exp9_failures", text)

    # Fault-free baseline: the zero plan injected nothing.
    assert baseline.n_node_failures == 0
    assert baseline.n_job_restarts == 0
    assert baseline.lost_work_seconds == 0.0
    for mtbf, point in points.items():
        # The fault-tolerance invariant, at every crash rate.
        assert point.all_jobs_completed, mtbf
        assert point.makespan >= baseline.makespan or mtbf is None, mtbf
    # The harshest cell actually exercised the machinery.
    assert worst.n_node_failures > 0
    assert worst.n_job_restarts > 0
    assert worst.lost_work_seconds > 0.0
    assert worst.makespan > baseline.makespan


def test_exp9_stragglers_and_elastic_capacity(benchmark, report):
    """Stragglers slow the run; elastic capacity absorbs part of the hit."""

    def run():
        slow = run_exp9("exp6", mtbf=None, stragglers=True, **SCALE)
        slow_elastic = run_exp9("exp6", mtbf=None, stragglers=True,
                                elastic=True, elastic_join=5.0, **SCALE)
        clean = run_exp9("exp6", mtbf=None, **SCALE)
        return clean, slow, slow_elastic

    clean, slow, slow_elastic = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = (
        "Exp 9 — stragglers and elastic capacity "
        f"({clean.n_jobs} jobs, seeded straggler windows)\n"
        f"clean:             makespan {clean.makespan:10.2f}s\n"
        f"stragglers:        makespan {slow.makespan:10.2f}s "
        f"(x{slow.makespan / clean.makespan:.2f})\n"
        f"stragglers+elastic: makespan {slow_elastic.makespan:9.2f}s "
        f"(x{slow_elastic.makespan / clean.makespan:.2f})"
    )
    report("exp9_stragglers", text)

    assert clean.all_jobs_completed
    assert slow.all_jobs_completed
    assert slow_elastic.all_jobs_completed
    # Seeded slow-node windows cost simulated time.
    assert slow.makespan > clean.makespan
