#!/usr/bin/env python
"""Profile the simulator's hot paths so perf work starts from data.

Runs a chosen experiment workload under :mod:`cProfile` and prints the
top functions by cumulative and by self time — the two views that matter
when deciding what to optimise next (where the time *flows* vs where it
is *spent*).  Profiles can also be dumped to a file for ``snakeviz`` /
``pstats`` exploration.

Usage (from the repo root)::

    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp5
    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp7 --top 30
    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp1 \
        --dump /tmp/exp1.prof

Workloads:

* ``exp1`` — single-application read/write sequence (Figure 4);
* ``exp5`` — the Exp 5 hot-path sweep (WRENCH-cache scaling curves);
* ``exp5-fine`` — the fine-chunk Exp 5 point (10x the cache blocks);
* ``exp7`` — the paper-scale SWF replay (400 jobs / 32 nodes);
* ``sched`` — the dispatch-heavy cluster workload (400 short jobs over
  32 nodes, EASY backfilling + cache-locality placement, small I/O): the
  workload where the ``wms``/``cluster`` scheduling layers — not the page
  cache — dominate, used to profile the dispatch path itself;
* ``pagecache`` — the cache core in isolation: sequential and strided
  (8-way interleaved) multi-gigabyte reads plus a writeback stream, all
  at fine chunk sizes, driving the Memory Manager / IO Controller with no
  scheduler on top.  Reports the extent-run occupancy and (by default)
  the tracemalloc peak alongside the cProfile hot lists, so a cache-core
  time or memory regression is diagnosable without a full experiment run.

Peak-memory reporting: ``--memory`` re-runs the workload under
``tracemalloc`` (separately from the cProfile pass, so neither skews the
other) and prints the peak traced allocation; it defaults to on for the
``pagecache`` workload and off elsewhere.

Telemetry overhead: ``--obs`` times the workload twice — telemetry off,
then on (``REPRO_OBS=1``) — and reports the enabled-vs-disabled slowdown.
``--obs-gate PCT`` turns the report into a check (non-zero exit above the
threshold), and ``--no-profile`` skips the cProfile pass so the timing
runs are the only work (the mode the CI overhead check uses).

Every workload also reports the extent-run occupancy of each page-cached
memory manager it touched (captured when the manager stops).
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import os
import pstats
import sys
import time
import tracemalloc
from pathlib import Path

# Allow running as a script from the repo root: the workload definitions
# live next to this file in benchmarks/.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def _exp1():
    from repro.experiments.exp1_single import run_exp1
    from repro.units import GB

    return lambda: run_exp1("wrench-cache", 5 * GB)


def _exp5():
    from test_bench_hotpath import run_exp5_paper

    return run_exp5_paper


def _exp5_fine():
    from test_bench_hotpath import run_exp5_fine_chunks

    return run_exp5_fine_chunks


def _exp7():
    from test_bench_hotpath import run_exp7_paper

    return run_exp7_paper


def _sched():
    from test_bench_hotpath import run_sched_dispatch

    return run_sched_dispatch


def run_pagecache_workload(file_size=None, chunk_size=None, streams=8):
    """Drive the cache core directly: sequential + strided fine-chunk I/O.

    Three phases on one 16 GB host (no scheduler, no workflow layer):

    1. *sequential*: stream a multi-GB file in cold, then re-read it from
       cache — the single-stream regime where runs coalesce maximally;
    2. *strided*: ``streams`` concurrent readers each stream their own
       file, interleaving their chunks in LRU order — the concurrent
       regime that shreds a per-block cache into ``size / chunk`` nodes;
    3. *writeback*: the readers write private outputs, accumulating
       dirty data past the threshold so foreground flushing carves the
       dirty runs.

    Returns the memory manager so callers can inspect occupancy/stats.
    """
    from repro.des import Environment
    from repro.pagecache import IOController, MemoryManager, PageCacheConfig
    from repro.units import GB, MB, MBps
    from repro.platform.memory import MemoryDevice
    from repro.platform.storage import Disk

    from repro.obs import observer_from_env

    file_size = file_size or 2 * GB
    chunk_size = chunk_size or 4 * MB
    env = Environment()
    # No Simulation facade here, so honour REPRO_OBS directly: the --obs
    # timing pass toggles telemetry through the environment variable.
    observer_from_env(env)
    memory = MemoryDevice.symmetric(env, "ram", 2000 * MBps, size=16 * GB)
    disk = Disk.symmetric(env, "disk", 500 * MBps)
    mm = MemoryManager(env, memory, PageCacheConfig(chunk_size=chunk_size),
                       name="pagecache-profile")
    io = IOController(env, mm)

    def sequential():
        yield from io.read_file("seq", file_size, disk,
                                use_anonymous_memory=False)
        yield from io.read_file("seq", file_size, disk,
                                use_anonymous_memory=False)

    def strided(index):
        name = f"strided{index}"
        yield from io.read_file(name, file_size, disk,
                                use_anonymous_memory=False)
        yield from io.write_file(f"{name}.out", file_size, disk)

    def driver():
        yield env.process(sequential(), name="sequential")
        readers = [
            env.process(strided(index), name=f"strided{index}")
            for index in range(streams)
        ]
        yield env.all_of(readers)
        yield from mm.flush(mm.dirty)

    process = env.process(driver(), name="pagecache-driver")
    env.run(until=process)
    mm.stop()
    return mm


def _pagecache():
    from repro.pagecache.stats import ExtentOccupancy

    def run():
        mm = run_pagecache_workload()
        occupancy = ExtentOccupancy.of(mm.lists)
        print(
            f"[pagecache] hit ratio {100 * mm.stats.hit_ratio:.1f}%, "
            f"flushed {mm.stats.flushed_bytes / 1e9:.2f} GB, "
            f"occupancy: {occupancy.runs} runs / {occupancy.fragments} "
            f"fragments ({occupancy.fragments_per_run:.1f} frags/run, "
            f"{occupancy.merges} merges)"
        )
        return mm

    return run


WORKLOADS = {
    "exp1": _exp1,
    "exp5": _exp5,
    "exp5-fine": _exp5_fine,
    "exp7": _exp7,
    "sched": _sched,
    "pagecache": _pagecache,
}


@contextlib.contextmanager
def capture_occupancy():
    """Capture every memory manager's extent occupancy as it stops.

    Workloads build their platforms internally, so the capture hooks
    ``MemoryManager.stop`` (every run path stops its managers) instead of
    threading a reporting object through each workload's setup.
    """
    from repro.pagecache.memory_manager import MemoryManager
    from repro.pagecache.stats import ExtentOccupancy

    captured = {}
    original = MemoryManager.stop

    def stop(self):
        captured[self.name] = ExtentOccupancy.of(self.lists)
        return original(self)

    MemoryManager.stop = stop
    try:
        yield captured
    finally:
        MemoryManager.stop = original


def print_occupancy(captured) -> None:
    """Print the captured per-manager extent occupancies."""
    print("==== extent occupancy (at manager stop) ====")
    if not captured:
        print("no page-cached memory manager in this workload")
        return
    runs = sum(occ.runs for occ in captured.values())
    fragments = sum(occ.fragments for occ in captured.values())
    merges = sum(occ.merges for occ in captured.values())
    ratio = fragments / runs if runs else 0.0
    print(
        f"total over {len(captured)} manager(s): {runs} runs / "
        f"{fragments} fragments ({ratio:.1f} frags/run, {merges} merges)"
    )
    if len(captured) <= 8:
        for name in sorted(captured):
            occ = captured[name]
            print(
                f"  {name}: {occ.runs} runs / {occ.fragments} fragments "
                f"({occ.fragments_per_run:.1f} frags/run, "
                f"{occ.merges} merges)"
            )


@contextlib.contextmanager
def _obs_env(enabled: bool):
    """Set or clear ``REPRO_OBS`` for the duration of one timed run."""
    from repro.obs import OBS_ENV_VAR

    saved = os.environ.get(OBS_ENV_VAR)
    if enabled:
        os.environ[OBS_ENV_VAR] = "1"
    else:
        os.environ.pop(OBS_ENV_VAR, None)
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(OBS_ENV_VAR, None)
        else:
            os.environ[OBS_ENV_VAR] = saved


def measure_obs_overhead(workload: str, repeats: int = 1):
    """Time the workload with telemetry off and on; best of ``repeats``.

    Returns ``(disabled_seconds, enabled_seconds, overhead_percent)``.
    The workload callable is rebuilt for every run so no state carries
    over between passes.
    """
    def best(enabled: bool) -> float:
        timings = []
        with _obs_env(enabled):
            for _ in range(max(1, repeats)):
                run = WORKLOADS[workload]()
                start = time.perf_counter()
                run()
                timings.append(time.perf_counter() - start)
        return min(timings)

    disabled = best(False)
    enabled = best(True)
    overhead = (enabled - disabled) / disabled * 100.0 if disabled > 0 else 0.0
    return disabled, enabled, overhead


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("workload", choices=sorted(WORKLOADS),
                        help="experiment workload to profile")
    parser.add_argument("--top", type=int, default=20,
                        help="number of functions to print (default: %(default)s)")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only print functions whose file/name matches "
                             "this regex (e.g. 'scheduler|wms' to isolate "
                             "the dispatch path)")
    parser.add_argument("--dump", type=Path, default=None,
                        help="also write the raw profile to this file")
    parser.add_argument("--memory", action="store_true", default=None,
                        help="re-run the workload under tracemalloc and "
                             "report the peak traced allocation (default: "
                             "on for the pagecache workload)")
    parser.add_argument("--no-memory", dest="memory", action="store_false",
                        help="disable the tracemalloc pass")
    parser.add_argument("--obs", action="store_true",
                        help="time the workload with telemetry off and on "
                             "(REPRO_OBS=1) and report the overhead")
    parser.add_argument("--obs-gate", type=float, default=None, metavar="PCT",
                        help="fail (exit 1) if the telemetry overhead "
                             "exceeds PCT percent (implies --obs)")
    parser.add_argument("--obs-repeats", type=int, default=1, metavar="N",
                        help="timed runs per telemetry setting; the best "
                             "of N is compared (default: %(default)s)")
    parser.add_argument("--no-profile", dest="profile", action="store_false",
                        default=True,
                        help="skip the cProfile pass (with --obs the "
                             "timing runs are the only work, as in CI)")
    args = parser.parse_args(argv)
    do_obs = args.obs or args.obs_gate is not None

    if args.profile:
        run = WORKLOADS[args.workload]()
        profile = cProfile.Profile()
        with capture_occupancy() as captured:
            profile.enable()
            run()
            profile.disable()

        if args.dump is not None:
            profile.dump_stats(args.dump)
            print(f"profile written to {args.dump}\n")

        restrictions = ([args.filter] if args.filter else []) + [args.top]
        for order, title in (("cumulative", "by cumulative time (where time flows)"),
                             ("tottime", "by self time (where time is spent)")):
            print(f"==== top {args.top} {title} ====")
            stats = pstats.Stats(profile)
            stats.sort_stats(order).print_stats(*restrictions)
        print_occupancy(captured)
    elif not do_obs:
        # No profile and no overhead check: one plain run, occupancy only.
        with capture_occupancy() as captured:
            WORKLOADS[args.workload]()()
        print_occupancy(captured)

    report_memory = args.memory
    if report_memory is None:
        report_memory = args.profile and args.workload == "pagecache"
    if report_memory:
        # A separate pass: tracemalloc and cProfile would skew each other.
        run = WORKLOADS[args.workload]()
        tracemalloc.start()
        run()
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        print(
            f"==== tracemalloc ====\n"
            f"peak traced memory: {peak / 1e6:.1f} MB "
            f"(still allocated at exit: {current / 1e6:.1f} MB)"
        )

    if do_obs:
        if args.profile:
            disabled, enabled, overhead = measure_obs_overhead(
                args.workload, args.obs_repeats
            )
        else:
            with capture_occupancy() as captured:
                disabled, enabled, overhead = measure_obs_overhead(
                    args.workload, args.obs_repeats
                )
            print_occupancy(captured)
        print(
            f"==== telemetry overhead ====\n"
            f"disabled: {disabled:.3f}s  enabled: {enabled:.3f}s  "
            f"overhead: {overhead:+.1f}%"
        )
        if args.obs_gate is not None and overhead > args.obs_gate:
            print(
                f"FAIL: telemetry overhead {overhead:.1f}% exceeds the "
                f"{args.obs_gate:.1f}% gate"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
