#!/usr/bin/env python
"""Profile the simulator's hot paths so perf work starts from data.

Runs a chosen experiment workload under :mod:`cProfile` and prints the
top functions by cumulative and by self time — the two views that matter
when deciding what to optimise next (where the time *flows* vs where it
is *spent*).  Profiles can also be dumped to a file for ``snakeviz`` /
``pstats`` exploration.

Usage (from the repo root)::

    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp5
    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp7 --top 30
    PYTHONPATH=src:benchmarks python benchmarks/profile_hotpaths.py exp1 \
        --dump /tmp/exp1.prof

Workloads:

* ``exp1`` — single-application read/write sequence (Figure 4);
* ``exp5`` — the Exp 5 hot-path sweep (WRENCH-cache scaling curves);
* ``exp5-fine`` — the fine-chunk Exp 5 point (10x the cache blocks);
* ``exp7`` — the paper-scale SWF replay (400 jobs / 32 nodes);
* ``sched`` — the dispatch-heavy cluster workload (400 short jobs over
  32 nodes, EASY backfilling + cache-locality placement, small I/O): the
  workload where the ``wms``/``cluster`` scheduling layers — not the page
  cache — dominate, used to profile the dispatch path itself.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

# Allow running as a script from the repo root: the workload definitions
# live next to this file in benchmarks/.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def _exp1():
    from repro.experiments.exp1_single import run_exp1
    from repro.units import GB

    return lambda: run_exp1("wrench-cache", 5 * GB)


def _exp5():
    from test_bench_hotpath import run_exp5_paper

    return run_exp5_paper


def _exp5_fine():
    from test_bench_hotpath import run_exp5_fine_chunks

    return run_exp5_fine_chunks


def _exp7():
    from test_bench_hotpath import run_exp7_paper

    return run_exp7_paper


def _sched():
    from test_bench_hotpath import run_sched_dispatch

    return run_sched_dispatch


WORKLOADS = {
    "exp1": _exp1,
    "exp5": _exp5,
    "exp5-fine": _exp5_fine,
    "exp7": _exp7,
    "sched": _sched,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("workload", choices=sorted(WORKLOADS),
                        help="experiment workload to profile")
    parser.add_argument("--top", type=int, default=20,
                        help="number of functions to print (default: %(default)s)")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only print functions whose file/name matches "
                             "this regex (e.g. 'scheduler|wms' to isolate "
                             "the dispatch path)")
    parser.add_argument("--dump", type=Path, default=None,
                        help="also write the raw profile to this file")
    args = parser.parse_args(argv)

    run = WORKLOADS[args.workload]()
    profile = cProfile.Profile()
    profile.enable()
    run()
    profile.disable()

    if args.dump is not None:
        profile.dump_stats(args.dump)
        print(f"profile written to {args.dump}\n")

    restrictions = ([args.filter] if args.filter else []) + [args.top]
    for order, title in (("cumulative", "by cumulative time (where time flows)"),
                         ("tottime", "by self time (where time is spent)")):
        print(f"==== top {args.top} {title} ====")
        stats = pstats.Stats(profile)
        stats.sort_stats(order).print_stats(*restrictions)
    return 0


if __name__ == "__main__":
    sys.exit(main())
