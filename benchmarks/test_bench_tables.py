"""Tables I, II and III — application parameters and bandwidth calibration.

These benchmarks regenerate the three tables of the paper's experimental
setup.  Table III additionally measures, inside the simulator, the
effective bandwidth obtained when reading/writing through each simulated
device, verifying that the platform configuration matches the calibration.
"""

from __future__ import annotations

import pytest

from repro.des import Environment
from repro.experiments.calibration import TABLE3_BANDWIDTHS
from repro.experiments.report import table1_report, table2_report, table3_report
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, GiB, MBps


def test_table1_synthetic_parameters(benchmark, report):
    """Table I: synthetic application parameters."""
    text = benchmark(table1_report)
    report("table1_synthetic_parameters", text)
    assert "100.0" in text


def test_table2_nighres_parameters(benchmark, report):
    """Table II: Nighres application parameters."""
    text = benchmark(table2_report)
    report("table2_nighres_parameters", text)
    assert "cortical_reconstruction" in text


def _measure_device_bandwidths() -> dict:
    """Measure effective simulated bandwidths of the configured devices."""
    measured = {}
    for name, bandwidth in (
        ("memory", TABLE3_BANDWIDTHS.memory.simulated),
        ("local_disk", TABLE3_BANDWIDTHS.local_disk.simulated),
        ("remote_disk", TABLE3_BANDWIDTHS.remote_disk.simulated),
    ):
        env = Environment()
        if name == "memory":
            device = MemoryDevice.symmetric(env, name, bandwidth, size=250 * GiB)
        else:
            device = Disk.symmetric(env, name, bandwidth)

        def transfer(device=device, env=env):
            yield device.read(10 * GB)
            yield device.write(10 * GB)

        process = env.process(transfer())
        env.run(until=process)
        measured[name] = 20 * GB / env.now
    return measured


def test_table3_bandwidths(benchmark, report):
    """Table III: bandwidth benchmarks and simulator configuration."""
    measured = benchmark(_measure_device_bandwidths)
    text = table3_report()
    lines = [text, "", "Effective simulated bandwidths (MBps):"]
    for name, value in measured.items():
        lines.append(f"  {name:12s} {value / MBps:8.1f}")
    report("table3_bandwidths", "\n".join(lines))
    # The simulated devices deliver the configured symmetric bandwidths.
    assert measured["memory"] == pytest.approx(4812 * MBps, rel=1e-6)
    assert measured["local_disk"] == pytest.approx(465 * MBps, rel=1e-6)
    assert measured["remote_disk"] == pytest.approx(445 * MBps, rel=1e-6)
