"""Exp 4 (Figure 6) — real application: the Nighres workflow.

Regenerates the per-operation absolute relative simulation errors of WRENCH
and WRENCH-cache for the four-step cortical-reconstruction workflow
(Table II), against the calibrated reference.  The paper reports mean
errors of 337 % (WRENCH) vs 47 % (WRENCH-cache).
"""

from __future__ import annotations


from repro.analysis.tables import format_table
from repro.experiments.exp4_nighres import exp4_errors, exp4_mean_errors, run_exp4
from repro.experiments.metrics import error_reduction_factor
from repro.experiments.report import exp4_error_report
from repro.units import MB

CHUNK = 50 * MB


def test_fig6_nighres_errors(benchmark, report):
    """Figure 6: real application (Nighres) simulation errors."""
    reference = run_exp4("real", chunk_size=CHUNK)

    def run():
        return exp4_errors(chunk_size=CHUNK, reference=reference)

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    means = exp4_mean_errors(errors)
    factor = error_reduction_factor(
        errors["wrench"].values(), errors["wrench-cache"].values()
    )
    text = exp4_error_report(errors)
    text += "\n\nMean error excluding Read 1 (%):\n" + format_table(
        ["Simulator", "Mean error (%)"], sorted(means.items()), precision=1
    )
    text += f"\n\nError reduction factor (WRENCH -> WRENCH-cache): {factor:.1f}x"
    report("fig6_nighres_errors", text)

    # The first read happens entirely from disk and is accurately simulated
    # by both simulators.
    assert errors["wrench"]["Read 1"] < 25.0
    assert errors["wrench-cache"]["Read 1"] < 25.0
    # Headline: large error reduction with the page cache model.
    assert means["wrench-cache"] < means["wrench"] / 3.0
