"""Hot-path benchmarks: paper-scale experiment runs and micro-benchmarks.

Two layers:

* **Meso benchmarks** (gated by the regression baseline): Exp 5 simulation-
  time scalability at the paper's full concurrency sweep, a fine-chunk
  variant that multiplies the number of live cache blocks by 10, and an
  Exp 7 trace replay scaled to 400 jobs over 32 nodes (the paper-scale
  cluster of Exp 6).  These are the workloads the O(1) LRU / slotted DES
  rewrite targets; their medians are compared against
  ``benchmarks/baseline.json`` in CI.
* **Micro benchmarks** (marked ``perf``): direct churn on the LRU structure
  and the DES event loop, runnable standalone with ``pytest -m perf``.

The Exp 7 workload tiles the bundled 84-job sample trace five times (time
offsets keep the arrival pattern) and replays the first 400 jobs.
"""

from __future__ import annotations

import pytest

from conftest import paper_scale
from repro.des import Environment
from repro.experiments.exp5_scaling import run_scaling, scaling_regressions
from repro.experiments.exp7_trace_replay import default_trace_path, run_exp7
from repro.pagecache.block import Block
from repro.pagecache.lru import PageCacheLists
from repro.scheduler.swf import SWFRecord, SWFTrace, load_swf
from repro.units import GB, MB

#: The paper's full Figure 8 sweep (reduced suite stops at 16).
EXP5_COUNTS = (1, 4, 8, 16, 24, 32) if paper_scale() else (1, 4, 8, 16, 24)
#: Paper-scale Exp 7: 400 jobs over 32 nodes.
EXP7_N_JOBS = 400
EXP7_N_NODES = 32


def tiled_trace(repeats: int = 5) -> SWFTrace:
    """The bundled sample trace tiled ``repeats`` times back to back.

    Each copy is shifted by the span of the original trace (plus one mean
    inter-arrival gap, so copies do not overlap at the seam) and renumbered;
    applications keep their identity across copies, so tiling raises the
    job count without inflating the dataset count.
    """
    base = load_swf(default_trace_path())
    submits = [record.submit_time for record in base.records]
    first, last = min(submits), max(submits)
    span = (last - first) + max(1.0, (last - first) / max(1, len(submits) - 1))
    records = []
    for copy in range(repeats):
        for record in base.records:
            values = {name: getattr(record, name) for name in
                      SWFRecord.__dataclass_fields__}
            values["job_id"] = record.job_id + copy * len(base.records)
            values["submit_time"] = record.submit_time + copy * span
            records.append(SWFRecord(**values))
    return SWFTrace(directives=dict(base.directives), records=records)


def run_exp5_paper(workers=None):
    """Figure 8 sweep, WRENCH-cache curves only (the hot-path targets).

    The sweep goes through the process-pool engine
    (:mod:`repro.experiments.runner`); the default resolves ``workers``
    from ``REPRO_WORKERS`` (serial when unset, so the wall-clock-per-point
    measurements stay uncontended).
    """
    return run_scaling(
        EXP5_COUNTS,
        configs=(("wrench-cache", False), ("wrench-cache", True)),
        input_size=3 * GB,
        chunk_size=100 * MB,
        workers=workers,
    )


def run_exp5_fine_chunks(workers=None):
    """One Exp 5 point with 10 MB chunks: 10x the live cache blocks.

    This is the configuration where the old list-of-Blocks LRU went
    quadratic (every chunk scanned every cached block of the host).
    """
    return run_scaling(
        (16,),
        configs=(("wrench-cache", False),),
        input_size=3 * GB,
        chunk_size=10 * MB,
        workers=workers,
    )


def run_sched_dispatch():
    """Dispatch-heavy cluster workload: the wms/cluster profiling frontier.

    400 short jobs over 32 nodes under EASY backfilling (exercising the
    ``earliest_fit_time`` reservation walks) with cache-locality placement
    (exercising per-dispatch candidate scoring), and deliberately small
    I/O so the scheduling layers — not the page cache — dominate.  This is
    the workload behind ``profile_hotpaths.py sched``.
    """
    from repro.experiments.exp6_cluster import run_exp6

    return run_exp6(
        "cache",
        policy="easy",
        n_jobs=400,
        n_nodes=32,
        n_datasets=48,
        cores_per_node=8,
        input_size=64 * MB,
        output_size=16 * MB,
        arrival_rate=12.0,
        chunk_size=16 * MB,
    )


def run_exp7_paper():
    """Exp 7 preemptive-priority replay at 400 jobs / 32 nodes.

    The replay is data-intensive, as in the paper's workflows: every job
    reads a 2 GB shared dataset and writes a 2 GB private output at 4 MB
    chunk granularity.  Output fragments accumulate in the node caches
    (they are never re-read, so cache hits never re-merge them), which is
    exactly the regime where the pre-PR-3 LRU went quadratic — every
    chunk operation scanned every cached block of the node.
    """
    return run_exp7(
        "preemptive-priority",
        trace=tiled_trace(),
        max_jobs=EXP7_N_JOBS,
        n_nodes=EXP7_N_NODES,
        load_factor=120.0,
        dataset_size=2 * GB,
        output_size=2 * GB,
        chunk_size=4 * MB,
    )


# --------------------------------------------------------------------- meso
def test_hotpath_exp5_paper_scale(benchmark, report):
    """Exp 5 at the paper's concurrency sweep stays linear in #apps."""
    curves = benchmark.pedantic(run_exp5_paper, rounds=1, iterations=1)
    fits = scaling_regressions(curves)
    lines = [f"Exp 5 hot-path sweep (counts={EXP5_COUNTS})"]
    for label, points in curves.items():
        lines.append(
            f"  {label}: "
            + ", ".join(f"{p.n_apps}:{p.wallclock_time:.3f}s" for p in points)
            + f"  (slope {fits[label].slope * 1e3:.2f} ms/app, "
            f"R^2 {fits[label].r_squared:.3f})"
        )
    report("hotpath_exp5", "\n".join(lines))
    for label, points in curves.items():
        for point in points:
            assert point.simulated_makespan > 0, label
        assert fits[label].r_squared > 0.7, label


def test_hotpath_exp5_fine_chunks(benchmark, report):
    """Exp 5 with 10x the cache blocks: the old-LRU quadratic regime."""
    curves = benchmark.pedantic(run_exp5_fine_chunks, rounds=1, iterations=1)
    (points,) = curves.values()
    report(
        "hotpath_exp5_fine_chunks",
        f"Exp 5 fine-chunk point (16 apps, 10 MB chunks): "
        f"{points[0].wallclock_time:.3f}s wall-clock, "
        f"makespan {points[0].simulated_makespan:.1f}s",
    )
    assert points[0].simulated_makespan > 0


def test_hotpath_exp7_paper_scale(benchmark, report):
    """Exp 7 trace replay at paper scale (400 jobs / 32 nodes)."""
    point = benchmark.pedantic(run_exp7_paper, rounds=1, iterations=1)
    report(
        "hotpath_exp7",
        f"Exp 7 paper scale: {point.n_jobs} jobs / {point.n_nodes} nodes, "
        f"makespan {point.makespan:.1f}s, hit ratio "
        f"{100 * point.cache_hit_ratio:.1f}%, "
        f"{point.n_preemptions} preemptions, "
        f"high-prio slowdown {point.high_priority.mean_bounded_slowdown:.2f}",
    )
    assert point.n_jobs == EXP7_N_JOBS
    assert point.n_nodes == EXP7_N_NODES
    assert point.makespan > 0
    assert 0.0 < point.cache_hit_ratio < 1.0
    assert set(point.classes) == {0, 1, 2}


def test_hotpath_sched_dispatch(benchmark, report):
    """Dispatch-heavy cluster run: scheduler layers under the profiler's eye."""
    point = benchmark.pedantic(run_sched_dispatch, rounds=1, iterations=1)
    report(
        "hotpath_sched_dispatch",
        f"Dispatch-heavy Exp 6 (400 short jobs / 32 nodes, EASY + cache "
        f"placement): makespan {point.makespan:.2f}s, hit ratio "
        f"{100 * point.cache_hit_ratio:.1f}%, "
        f"mean wait {point.mean_wait_time:.3f}s, "
        f"{point.wallclock_time:.3f}s wall-clock",
    )
    assert point.n_jobs == 400
    assert point.makespan > 0
    assert 0.0 < point.cache_hit_ratio < 1.0


# -------------------------------------------------------------------- micro
@pytest.mark.perf
def test_perf_lru_churn(benchmark):
    """Raw LRU structure churn: add / re-access / evict cycles.

    Measures the page-cache data structure alone (no simulated time): a
    workload of appends, promotions via removal+re-insertion, per-file
    queries and LRU pops over a few thousand live blocks.
    """

    def churn():
        lists = PageCacheLists()
        n_files, blocks_per_file = 20, 100
        clock = 0.0
        for index in range(n_files * blocks_per_file):
            clock += 1.0
            lists.add_to_inactive(
                Block(f"f{index % n_files}", 1 * MB, clock, dirty=index % 3 == 0)
            )
        # Re-access half of each file's bytes (promote to the active list).
        for index in range(n_files):
            name = f"f{index}"
            for block in list(lists.inactive.blocks_of_file(name))[::2]:
                clock += 1.0
                lists.promote(block, clock)
        # Pop everything back out in LRU order.
        drained = 0
        while len(lists.inactive):
            drained += lists.inactive.pop_lru().size
        while len(lists.active):
            drained += lists.active.pop_lru().size
        lists.assert_consistent()
        return drained

    total = benchmark(churn)
    assert total == 20 * 100 * MB


@pytest.mark.perf
def test_perf_extent_streams(benchmark):
    """Concurrent-stream churn on the extent-run cache core.

    Eight interleaved per-file streams append fine-grained fragments
    (the regime that shredded the per-block cache into ``size / chunk``
    nodes), then the cache is drained through the eviction cursor in
    exact LRU order.  Structural invariants are checked at the end.
    """

    def churn():
        lists = PageCacheLists(balance=False)
        n_streams, frags_per_stream = 8, 400
        clock = 0.0
        for round_index in range(frags_per_stream):
            for stream in range(n_streams):
                clock += 1.0
                lists.add_to_inactive(
                    Block(f"s{stream}", 1 * MB, clock, dirty=False)
                )
        # The interleaved streams must still coalesce to one run each.
        assert lists.run_count == n_streams
        lists.assert_consistent()
        drained = 0.0
        cursor = lists.inactive.clean_cursor()
        try:
            while True:
                block = cursor.next()
                if block is None:
                    break
                lists.inactive.remove(block)
                drained += block.size
        finally:
            cursor.close()
        return drained

    total = benchmark(churn)
    assert total == 8 * 400 * MB


@pytest.mark.perf
def test_perf_des_event_churn(benchmark):
    """Raw DES core churn: timeout scheduling, condition fan-in, resumes."""

    def churn():
        env = Environment()
        done = []

        def worker(idx):
            for _ in range(50):
                yield env.timeout(1.0 + (idx % 7) * 0.1)
            done.append(idx)

        def overseer():
            yield env.all_of(
                [env.process(worker(i), name=f"w{i}") for i in range(100)]
            )

        env.run(until=env.process(overseer(), name="overseer"))
        return len(done)

    assert benchmark(churn) == 100
