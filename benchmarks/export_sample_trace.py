#!/usr/bin/env python
"""Export a sample telemetry bundle from a small Exp 6 cluster run.

Runs the seeded cluster-scheduling workload with telemetry enabled and
writes everything the observability stack produces:

* ``exp6_trace.json`` — Chrome trace-event / Perfetto JSON (open it at
  https://ui.perfetto.dev or in ``chrome://tracing``);
* ``exp6_spans.jsonl`` / ``exp6_spans.csv`` — the raw spans;
* ``exp6_metrics.json`` — the metrics registry (counters, gauges,
  sim-time-weighted histograms).

CI runs this on every push and uploads the bundle as an artifact, so a
reviewer can inspect what a change does to the simulated timeline without
running anything locally.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/export_sample_trace.py --out /tmp/obs
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("--out", type=Path, default=Path("telemetry-sample"),
                        help="output directory (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=24,
                        help="number of batch jobs (default: %(default)s)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="number of compute nodes (default: %(default)s)")
    args = parser.parse_args(argv)

    from repro.experiments.exp6_cluster import build_cluster_workload
    from repro.obs import (
        write_chrome_trace,
        write_spans_csv,
        write_spans_jsonl,
    )
    from repro.simulator.simulation import Simulation, SimulationConfig
    from repro.units import MB

    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback", chunk_size=16 * MB, trace_interval=1.0
        ),
        observe=True,
    )
    simulation.create_cluster_platform(
        args.nodes, cores_per_node=4, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(policy="fifo", placement="cache")
    build_cluster_workload(
        simulation,
        n_jobs=args.jobs,
        n_datasets=max(2, args.jobs // 4),
        input_size=128 * MB,
        output_size=32 * MB,
        arrival_rate=2.0,
        seed=11,
    )
    result = simulation.run()
    observer = result.observer

    args.out.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(observer, args.out / "exp6_trace.json")
    n_spans = write_spans_jsonl(observer, args.out / "exp6_spans.jsonl")
    write_spans_csv(observer, args.out / "exp6_spans.csv")
    (args.out / "exp6_metrics.json").write_text(
        json.dumps(observer.registry.as_dict(), indent=2, sort_keys=True)
        + "\n"
    )
    print(
        f"wrote {args.out}/: {n_spans} spans, "
        f"{len(observer.counter_samples)} counter samples, "
        f"{len(observer.registry)} metric series "
        f"(makespan {result.makespan:.1f}s, "
        f"{observer.des_events_processed} DES events)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
