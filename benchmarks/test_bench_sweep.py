"""Sweep-engine benchmark: process-pool fan-out of the exp5 fine-chunk sweep.

PR 3 made a single simulation up to 9x faster; this benchmark targets the
next bottleneck — figure wall-clock is bound by *fan-out*, because a sweep
replays dozens of independent points serially in one process.  The
workload is an 8-point exp5 fine-chunk sweep (10 MB chunks — the
cache-churn-heavy regime) run twice through the sweep engine: inline
(``workers=1``) and on a 4-worker process pool.  The points are submitted
widest-first so the pool packs well.

Two guarantees are asserted unconditionally:

* the *simulated* outputs (per-point makespans) are byte-identical
  between the serial and the parallel run — the engine's determinism
  contract;
* parallel execution is never pathologically slower than serial (pool
  overhead is bounded), whatever the machine.

The ≥2.5x speedup gate only makes sense where 4 workers have 4 CPUs to
run on; it is asserted when the machine has ≥4 CPUs and
``REPRO_SWEEP_SPEEDUP_GATE`` is not explicitly disabled.  The measured
numbers (and the CPU count they were measured on) are always recorded in
``benchmarks/results/bench_sweep.txt``.
"""

from __future__ import annotations

import os
import time

from repro.experiments.exp5_scaling import run_scaling
from repro.units import GB, MB

#: Fine-chunk sweep: 8 points, widest (most expensive) first for packing.
SWEEP_COUNTS = (16, 14, 12, 10, 8, 6, 4, 2)
SWEEP_CONFIGS = (("wrench-cache", False),)
CHUNK = 10 * MB
INPUT_SIZE = 3 * GB

#: Workers used by the parallel leg.
N_WORKERS = 4
#: Required speedup when the machine can actually run 4 workers at once.
REQUIRED_SPEEDUP = 2.5


def run_fine_sweep(workers):
    """The exp5 fine-chunk sweep through the engine with ``workers``."""
    return run_scaling(
        SWEEP_COUNTS,
        configs=SWEEP_CONFIGS,
        input_size=INPUT_SIZE,
        chunk_size=CHUNK,
        workers=workers,
    )


def _simulated_table(curves):
    """The deterministic part of the sweep output, as comparable bytes.

    Wall-clock readings are nondeterministic by nature; the simulated
    makespans (full float repr, so any drift shows) are what must be
    byte-identical across worker counts.
    """
    lines = []
    for label, points in curves.items():
        for point in points:
            lines.append(
                f"{label}|{point.n_apps}|{point.simulated_makespan!r}"
            )
    return "\n".join(lines).encode()


def _under_xdist() -> bool:
    """True inside a pytest-xdist worker (tier-1 CI runs ``-n auto``).

    With several xdist workers sharing the machine's cores, both timing
    legs contend with unrelated tests and the measured ratio is
    meaningless — the timing assertions only hold on an otherwise idle
    machine (the serial bench-regression job).
    """
    return "PYTEST_XDIST_WORKER" in os.environ


def _speedup_gate_enabled() -> bool:
    if os.environ.get("REPRO_SWEEP_SPEEDUP_GATE", "") in ("0", "false"):
        return False
    return not _under_xdist() and (os.cpu_count() or 1) >= N_WORKERS


def test_bench_sweep_exp5_fine(benchmark, report):
    """4-worker fan-out of the fine-chunk sweep: identical results, faster."""
    start = time.perf_counter()
    serial = run_fine_sweep(workers=1)
    serial_time = time.perf_counter() - start

    def parallel_run():
        return run_fine_sweep(workers=N_WORKERS)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_time = time.perf_counter() - start

    speedup = serial_time / parallel_time if parallel_time > 0 else 0.0
    cpus = os.cpu_count() or 1
    gated = _speedup_gate_enabled()
    gate_note = (
        "enforced" if gated
        else "skipped (xdist worker: cores shared with other tests)"
        if _under_xdist()
        else "skipped (needs >= 4 CPUs)"
    )
    report(
        "bench_sweep",
        "Sweep engine — exp5 fine-chunk sweep "
        f"({len(SWEEP_COUNTS)} points, 10 MB chunks):\n"
        f"  serial (workers=1):     {serial_time:.3f}s\n"
        f"  pool   (workers={N_WORKERS}):     {parallel_time:.3f}s\n"
        f"  speedup:                {speedup:.2f}x on {cpus} CPU(s)\n"
        f"  speedup gate (>= {REQUIRED_SPEEDUP}x): {gate_note}\n"
        f"  simulated outputs:      byte-identical",
    )

    # Determinism: simulated outputs must not depend on the worker count.
    assert _simulated_table(serial) == _simulated_table(parallel)
    # Pool overhead must stay bounded even when parallelism cannot pay
    # (e.g. a single-CPU container running 4 contending workers).  Under
    # xdist both legs race unrelated tests for the same cores, so timing
    # ratios are only asserted on an uncontended run.
    if not _under_xdist():
        assert parallel_time < serial_time * 3.0
    if gated:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"sweep speedup {speedup:.2f}x below {REQUIRED_SPEEDUP}x "
            f"with {N_WORKERS} workers on {cpus} CPUs"
        )
