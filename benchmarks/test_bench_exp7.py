"""Exp 7 — SWF trace replay with preemptive priority scheduling.

Replays the bundled anonymized SWF sample trace (84 jobs, three priority
classes encoded as queues) against the simulated cluster and compares
scheduling policies.  The headline claim: the preemptive priority policy
strictly beats FIFO on the bounded slowdown of the high-priority class —
urgent jobs no longer queue behind wide batch jobs — while
cache-locality-aware placement keeps its page-cache hit-ratio edge on the
replayed workload.
"""

from __future__ import annotations

from conftest import paper_scale
from repro.experiments.exp7_trace_replay import (
    EXP7_POLICIES,
    exp7_placement_series,
    exp7_report,
    exp7_series,
)

LOAD_FACTOR = 60.0 if paper_scale() else 40.0


def test_exp7_preemption_cuts_high_priority_slowdown(benchmark, report):
    """Preemptive priority strictly beats FIFO for the high-priority class."""

    def run():
        return exp7_series(EXP7_POLICIES, load_factor=LOAD_FACTOR)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    fifo = points["fifo"]
    preemptive = points["preemptive-priority"]

    text = exp7_report(points)
    gain = (
        fifo.high_priority.mean_bounded_slowdown
        - preemptive.high_priority.mean_bounded_slowdown
    )
    text += (
        f"\n\nHigh-priority bounded slowdown cut (FIFO -> preemptive): "
        f"{fifo.high_priority.mean_bounded_slowdown:.2f} -> "
        f"{preemptive.high_priority.mean_bounded_slowdown:.2f} "
        f"(-{gain:.2f})"
    )
    report("exp7_trace_replay", text)

    for policy, point in points.items():
        assert point.n_jobs == fifo.n_jobs, policy
        assert point.makespan > 0
        assert 0.0 < point.utilization <= 1.0
        assert set(point.classes) == {0, 1, 2}
    # The headline claim: preemption strictly improves the high-priority
    # class on both bounded slowdown and wait time.
    assert (
        preemptive.high_priority.mean_bounded_slowdown
        < fifo.high_priority.mean_bounded_slowdown
    )
    assert (
        preemptive.high_priority.mean_wait_time
        <= fifo.high_priority.mean_wait_time
    )
    # FIFO never preempts; the preemptive policy is expected to (the
    # trace keeps the cluster saturated when urgent jobs arrive).
    assert fifo.n_preemptions == 0
    assert preemptive.n_preemptions >= 1


def test_exp7_cache_placement_retains_edge_under_preemption(benchmark, report):
    """Cache-aware placement keeps its hit-ratio edge on the replayed trace."""

    def run():
        return exp7_placement_series(
            ("round-robin", "cache"),
            policy="preemptive-priority",
            load_factor=LOAD_FACTOR,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = exp7_report(
        points,
        title="Exp 7 — placement strategies under preemptive priority "
        f"({points['cache'].n_jobs} jobs, {points['cache'].n_nodes} nodes)",
    )
    gain = (
        points["cache"].cache_hit_ratio - points["round-robin"].cache_hit_ratio
    )
    text += (
        f"\n\nCache hit ratio gain (round-robin -> cache-aware): "
        f"{100.0 * gain:.1f} percentage points"
    )
    report("exp7_trace_placement", text)

    assert (
        points["cache"].cache_hit_ratio
        > points["round-robin"].cache_hit_ratio
    )
