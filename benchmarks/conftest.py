"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment (through ``pytest-benchmark`` so that simulation
wall-clock time is also measured), renders the rows/series the paper
reports as plain text, prints them and saves them under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory where benchmark reports are written.
RESULTS_DIR = Path(__file__).parent / "results"


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under ``benchmarks/results/<name>.txt``."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def report():
    """Fixture exposing :func:`emit_report` to benchmarks."""
    return emit_report


def paper_scale() -> bool:
    """Whether to run the experiments at full paper scale.

    The default is a reduced scale that keeps the whole benchmark suite
    under a few minutes while preserving every qualitative result; set
    ``PAGECACHE_SIM_PAPER_SCALE=1`` to regenerate the figures with the
    paper's exact file sizes and concurrency sweeps.
    """
    return os.environ.get("PAGECACHE_SIM_PAPER_SCALE", "0") not in ("0", "", "false")
