"""Exp 6 — cluster batch scheduling with cache-locality-aware placement.

Runs the same seeded stream of batch jobs (120 jobs over 8 nodes at the
default scale; 400 jobs over 32 nodes at paper scale) under round-robin,
least-loaded and cache-locality-aware placement, and reports the
cluster-level metrics: page-cache hit ratio, makespan, mean wait time,
bounded slowdown, utilization and throughput.

The headline result is placement-driven data locality: routing a job to
the node whose page cache already holds its input dataset markedly raises
the cluster-wide cache hit ratio (and with it, read bandwidth) without any
change to the page cache model itself — scheduling alone unlocks the
caches the model simulates.
"""

from __future__ import annotations

from conftest import paper_scale
from repro.experiments.exp6_cluster import (
    EXP6_PLACEMENTS,
    exp6_policy_series,
    exp6_report,
    exp6_series,
)

N_JOBS = 400 if paper_scale() else 120
N_NODES = 32 if paper_scale() else 8
N_DATASETS = 48 if paper_scale() else 16


def test_exp6_placement_comparison(benchmark, report):
    """Locality-aware placement beats round-robin on cache hit ratio."""

    def run():
        return exp6_series(
            EXP6_PLACEMENTS,
            n_jobs=N_JOBS,
            n_nodes=N_NODES,
            n_datasets=N_DATASETS,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = exp6_report(points)
    gain = points["cache"].cache_hit_ratio - points["round-robin"].cache_hit_ratio
    text += (
        f"\n\nCache hit ratio gain (round-robin -> cache-aware): "
        f"{100.0 * gain:.1f} percentage points"
    )
    report("exp6_cluster_placement", text)

    for placement, point in points.items():
        assert point.n_jobs == N_JOBS, placement
        assert point.makespan > 0
        assert 0.0 < point.utilization <= 1.0
        assert point.throughput > 0
    # The headline claim: placement alone raises the cluster-wide page
    # cache hit ratio, strictly.
    assert (
        points["cache"].cache_hit_ratio > points["round-robin"].cache_hit_ratio
    )


def test_exp6_policies_under_locality(benchmark, report):
    """FIFO, SJF and EASY backfilling all complete the seeded workload."""

    def run():
        return exp6_policy_series(
            ("fifo", "sjf", "easy"),
            placement="cache",
            n_jobs=N_JOBS,
            n_nodes=N_NODES,
            n_datasets=N_DATASETS,
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    text = exp6_report(
        points,
        title=f"Exp 6 — scheduling policies ({N_JOBS} jobs, {N_NODES} nodes, "
        "cache-aware placement)",
    )
    report("exp6_cluster_policies", text)

    for policy, point in points.items():
        assert point.n_jobs == N_JOBS, policy
        assert point.mean_wait_time >= 0.0
        assert point.mean_bounded_slowdown >= 1.0
