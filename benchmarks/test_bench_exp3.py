"""Exp 3 (Figure 7) — concurrent applications on NFS storage.

Same workload as Exp 2 but all files live on an NFS-mounted remote disk:
no client write cache, writethrough server cache, read caches enabled.
Regenerates the read-time and write-time curves of Figure 7.
"""

from __future__ import annotations

import pytest

from conftest import paper_scale
from repro.experiments.exp3_nfs import exp3_series
from repro.experiments.report import concurrency_report
from repro.units import GB, MB

COUNTS = (1, 4, 8, 12, 16, 20, 24, 28, 32) if paper_scale() else (1, 4, 8, 16, 24, 32)
INPUT_SIZE = 3 * GB
CHUNK = 100 * MB
SIMULATORS = ("real", "wrench", "wrench-cache")


def test_fig7_concurrent_nfs(benchmark, report):
    """Figure 7: concurrent read/write times with 3 GB files on NFS."""

    def run():
        return exp3_series(SIMULATORS, counts=COUNTS, input_size=INPUT_SIZE,
                           chunk_size=CHUNK)

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    text = concurrency_report(
        "Figure 7: NFS results with 3 GB files (Exp 3)", series
    )
    report("fig7_concurrent_nfs", text)

    last = {sim: series[sim][-1] for sim in SIMULATORS}
    # Page cache simulation helps for reads (server read cache)...
    assert last["wrench-cache"].read_time < last["wrench"].read_time
    assert (
        abs(last["wrench-cache"].read_time - last["real"].read_time)
        < abs(last["wrench"].read_time - last["real"].read_time)
    )
    # ...but not for writes, since the NFS server is writethrough: both
    # simulators write at (remote) disk bandwidth.
    assert last["wrench-cache"].write_time == pytest.approx(
        last["wrench"].write_time, rel=0.35
    )
