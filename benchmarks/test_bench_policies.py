"""Eviction-policy benchmarks: the Exp 8 ablation and the LRU dispatch gate.

Two layers, mirroring the rest of the suite:

* **Meso benchmarks** (gated by the regression baseline): one skewed-
  workload run per registered policy — the Exp 8 ablation cells.  Their
  normalized medians live in ``benchmarks/baseline.json``, so a policy
  whose bookkeeping cost blows up fails the bench-regression job.
* **The LRU dispatch-overhead gate**: the policy API routes the default
  eviction path through ``EvictionPolicy.clean_cursor`` instead of calling
  ``LRUList.clean_cursor`` directly.  The gate drains identical prebuilt
  caches through both entry points and asserts the policy dispatch costs
  at most 5% — a self-relative A/B on one machine, immune to the
  shared-runner noise that makes absolute medians untrustworthy.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.exp8_policy_ablation import (
    EXP8_POLICIES,
    exp8_report,
    run_skewed,
)
from repro.pagecache.block import Block
from repro.pagecache.lru import PageCacheLists
from repro.pagecache.policy import LRUPolicy
from repro.units import MB

#: Skewed-workload scale used for the per-policy benchmark cells (more
#: rounds than the tier-1 smoke test so the victim-selection paths
#: dominate setup cost).
BENCH_ROUNDS = 12

#: LRU-gate workload: clean fragments drained per pass.
GATE_FILES = 50
GATE_FRAGS_PER_FILE = 80
GATE_REPEATS = 5
GATE_MAX_OVERHEAD = 1.05


@pytest.mark.parametrize("policy", EXP8_POLICIES)
def test_bench_policy_skewed(benchmark, report, policy):
    """One Exp 8 skewed-workload cell per policy, wall-clock gated."""
    point = benchmark.pedantic(
        lambda: run_skewed(policy, rounds=BENCH_ROUNDS), rounds=1, iterations=3
    )
    report(
        f"policy_skewed_{point.policy}",
        f"Exp 8 skewed cell [{point.policy}]: hit ratio "
        f"{100 * point.hit_ratio:.1f}%, makespan {point.makespan:.2f}s, "
        f"{point.wallclock_time:.3f}s wall-clock",
    )
    assert 0.0 <= point.hit_ratio < 1.0
    assert point.makespan > 0


def test_bench_policy_ablation_table(benchmark, report):
    """The full skewed-workload ablation row set (the Exp 8 headline)."""

    def ablation():
        return {
            ("skewed", policy): run_skewed(policy, rounds=BENCH_ROUNDS)
            for policy in EXP8_POLICIES
        }

    points = benchmark.pedantic(ablation, rounds=1, iterations=1)
    report("policy_ablation", exp8_report(points))
    lru = points[("skewed", "lru")]
    best = max(points.values(), key=lambda p: p.hit_ratio)
    # The reason the policy zoo exists: scan-resistant victim selection
    # beats LRU on the adversarial workload.
    assert best.hit_ratio > lru.hit_ratio


# ----------------------------------------------------------------- LRU gate
def _build_clean_lists() -> PageCacheLists:
    lists = PageCacheLists(balance=False)
    clock = 0.0
    for frag in range(GATE_FRAGS_PER_FILE):
        for index in range(GATE_FILES):
            clock += 1.0
            lists.add_to_inactive(Block(f"f{index}", 1 * MB, clock, dirty=False))
    return lists


def _drain(lru, make_cursor) -> float:
    """Time one full drain through ``make_cursor()`` (construction excluded)."""
    start = time.perf_counter()
    cursor = make_cursor()
    try:
        while True:
            block = cursor.next()
            if block is None:
                break
            lru.remove(block)
    finally:
        cursor.close()
    return time.perf_counter() - start


def test_lru_policy_dispatch_overhead(report):
    """Default-path gate: LRUPolicy dispatch costs <= 5% over the raw cursor.

    Alternates raw and policy drains over identically built caches and
    compares the best (most noise-free) timing of each; the drained byte
    totals double as a correctness check that both entry points walk the
    exact same victim stream.
    """
    policy = LRUPolicy()
    raw_times, policy_times = [], []
    expected = GATE_FILES * GATE_FRAGS_PER_FILE * MB
    for _ in range(GATE_REPEATS):
        lists = _build_clean_lists()
        assert lists.inactive.size == expected
        raw_times.append(
            _drain(lists.inactive, lists.inactive.clean_cursor)
        )
        assert lists.inactive.size == 0.0

        lists = _build_clean_lists()
        policy_times.append(
            _drain(lists.inactive,
                   lambda: policy.clean_cursor(lists.inactive))
        )
        assert lists.inactive.size == 0.0

    raw_best = min(raw_times)
    policy_best = min(policy_times)
    ratio = policy_best / raw_best
    report(
        "policy_lru_dispatch_overhead",
        f"LRU dispatch overhead: raw {raw_best * 1e3:.3f} ms, "
        f"via LRUPolicy {policy_best * 1e3:.3f} ms, ratio {ratio:.4f} "
        f"(gate {GATE_MAX_OVERHEAD:.2f})",
    )
    assert ratio <= GATE_MAX_OVERHEAD, (
        f"LRUPolicy dispatch overhead {ratio:.4f} exceeds the "
        f"{GATE_MAX_OVERHEAD:.2f} gate (raw {raw_best:.6f}s vs "
        f"policy {policy_best:.6f}s)"
    )
