"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify the impact of the main
modelling decisions so that users extending the simulator know which knobs
matter.

* chunk size (data-block granularity) — simulation cost vs accuracy;
* symmetric vs asymmetric device bandwidths — the paper's main remaining
  source of error;
* writeback vs writethrough vs no cache for the same workload;
* LRU list balancing and eviction protection of files being written.
"""

from __future__ import annotations

import time


from repro.analysis.tables import format_table
from repro.experiments.exp1_single import run_exp1
from repro.experiments.harness import ScenarioConfig, build_simulation
from repro.apps.synthetic import synthetic_workflow
from repro.units import GB, MB


SIZE = 5 * GB


def _run_simulation(cache_mode: str, *, chunk_size: float = 100 * MB):
    simulation, storage = build_simulation(
        "wrench" if cache_mode == "none" else "wrench-cache",
        ScenarioConfig(chunk_size=chunk_size, trace_interval=None),
    )
    if cache_mode == "writethrough":
        storage.writethrough = True
    workflow = synthetic_workflow(SIZE)
    simulation.stage_file(workflow.input_files()[0], storage)
    simulation.submit_workflow(workflow, host="node1", storage=storage, label="app1")
    return simulation.run()


def test_ablation_chunk_size(benchmark, report):
    """Data-block granularity: simulated times are stable, wall-clock is not."""
    chunk_sizes = [500 * MB, 100 * MB, 20 * MB]

    def run():
        rows = []
        for chunk in chunk_sizes:
            start = time.perf_counter()
            result = run_exp1("wrench-cache", SIZE, chunk_size=chunk,
                              trace_interval=None)
            wall = time.perf_counter() - start
            rows.append([chunk / MB, result.durations["Read 1"],
                         result.durations["Write 1"], wall])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["chunk (MB)", "Read 1 (s)", "Write 1 (s)", "simulation wall-clock (s)"],
        rows,
        precision=3,
        title="Ablation: chunk size (data-block granularity)",
    )
    report("ablation_chunk_size", text)
    # Simulated times barely depend on the chunk size (block abstraction),
    # only the simulation cost does.
    read_times = [row[1] for row in rows]
    assert max(read_times) - min(read_times) < 0.05 * max(read_times)


def test_ablation_cache_modes(benchmark, report):
    """Writeback vs writethrough vs no cache for the same pipeline."""

    def run():
        return {mode: _run_simulation(mode) for mode in
                ("none", "writethrough", "writeback")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, result.total_read_time(), result.total_write_time(), result.makespan]
        for mode, result in results.items()
    ]
    text = format_table(
        ["cache mode", "total read (s)", "total write (s)", "makespan (s)"],
        rows,
        precision=1,
        title="Ablation: cache mode",
    )
    report("ablation_cache_modes", text)
    assert results["writeback"].makespan < results["writethrough"].makespan
    assert results["writethrough"].makespan < results["none"].makespan


def test_ablation_asymmetric_bandwidths(benchmark, report):
    """Symmetric (paper) vs asymmetric (measured) bandwidths."""

    def run():
        return {
            "symmetric": run_exp1("wrench-cache", SIZE, trace_interval=None),
            "asymmetric": run_exp1("real", SIZE, trace_interval=None),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label in ("Read 1", "Write 1", "Read 2", "Write 2"):
        rows.append([label] + [results[kind].durations[label]
                               for kind in ("symmetric", "asymmetric")])
    text = format_table(
        ["Operation", "symmetric (s)", "asymmetric (s)"],
        rows,
        precision=1,
        title="Ablation: symmetric vs asymmetric device bandwidths",
    )
    report("ablation_asymmetric_bandwidths", text)
    # Cached writes are slower with the measured (asymmetric) memory write
    # bandwidth than with the symmetric mean, which is the residual error
    # the paper attributes to SimGrid's symmetric bandwidths.
    assert results["asymmetric"].durations["Write 1"] > \
        results["symmetric"].durations["Write 1"]
