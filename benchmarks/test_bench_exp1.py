"""Exp 1 (Figures 4a, 4b, 4c) — single-threaded execution on a local disk.

Regenerates, for a small and a large file size:

* Figure 4a: per-operation absolute relative simulation errors of the
  Python prototype, WRENCH and WRENCH-cache against the calibrated
  reference;
* Figure 4b: the memory profile (used / cache / dirty) over time;
* Figure 4c: the per-file cache contents after each I/O operation.

The paper uses 20 GB and 100 GB files; the default benchmark scale uses
5 GB and 20 GB to keep the suite fast (set ``PAGECACHE_SIM_PAPER_SCALE=1``
for the full sizes).  The qualitative result — errors drop by a large
factor with the page cache model — holds at both scales.
"""

from __future__ import annotations

import pytest

from conftest import paper_scale
from repro.analysis.tables import format_table
from repro.experiments.exp1_single import (
    exp1_errors,
    exp1_mean_errors,
    run_exp1,
)
from repro.experiments.metrics import error_reduction_factor
from repro.experiments.report import exp1_cache_report, exp1_error_report
from repro.units import GB, MB

SMALL_SIZE = 20 * GB if paper_scale() else 5 * GB
LARGE_SIZE = 100 * GB if paper_scale() else 20 * GB
CHUNK = 100 * MB


@pytest.mark.parametrize("file_size", [SMALL_SIZE, LARGE_SIZE],
                         ids=lambda s: f"{s / GB:.0f}GB")
def test_fig4a_errors(benchmark, report, file_size):
    """Figure 4a: absolute relative simulation errors."""
    reference = run_exp1("real", file_size, chunk_size=CHUNK, trace_interval=None)

    def run():
        return exp1_errors(file_size, chunk_size=CHUNK, reference=reference)

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    means = exp1_mean_errors(errors)
    text = exp1_error_report(file_size, errors)
    text += "\n\nMean error excluding Read 1 (%):\n" + format_table(
        ["Simulator", "Mean error (%)"], sorted(means.items()), precision=1
    )
    factor = error_reduction_factor(
        errors["wrench"].values(), errors["wrench-cache"].values()
    )
    text += f"\n\nError reduction factor (WRENCH -> WRENCH-cache): {factor:.1f}x"
    report(f"fig4a_errors_{int(file_size / GB)}GB", text)

    # Shape of the paper's result: the page cache model cuts the error by a
    # large factor (the paper reports up to ~9x).
    assert means["wrench-cache"] < means["wrench"] / 3.0
    assert factor > 3.0


def test_fig4b_memory_profiles(benchmark, report):
    """Figure 4b: memory profiles over time (WRENCH-cache vs reference)."""

    def run():
        return {
            "wrench-cache": run_exp1("wrench-cache", LARGE_SIZE, chunk_size=CHUNK,
                                     trace_interval=5.0),
            "real": run_exp1("real", LARGE_SIZE, chunk_size=CHUNK,
                             trace_interval=5.0),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = []
    for simulator, result in results.items():
        rows = [
            [snap.time, snap.used / GB, snap.cached / GB, snap.dirty / GB]
            for snap in result.memory_trace[:: max(1, len(result.memory_trace) // 40)]
        ]
        sections.append(format_table(
            ["time (s)", "used (GB)", "cache (GB)", "dirty (GB)"],
            rows,
            precision=1,
            title=f"Figure 4b: memory profile ({simulator}, "
                  f"{LARGE_SIZE / GB:.0f} GB files)",
        ))
    report("fig4b_memory_profiles", "\n\n".join(sections))

    profile = results["wrench-cache"].memory_trace
    assert max(snap.cached for snap in profile) > 0
    assert all(snap.dirty <= snap.dirty_threshold * 1.01 for snap in profile)


def test_fig4c_cache_contents(benchmark, report):
    """Figure 4c: per-file cache contents after each I/O operation."""

    def run():
        return {
            "wrench-cache": run_exp1("wrench-cache", SMALL_SIZE, chunk_size=CHUNK,
                                     trace_interval=None),
            "real": run_exp1("real", SMALL_SIZE, chunk_size=CHUNK,
                             trace_interval=None),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    files = ["file1", "file2", "file3", "file4"]
    sections = []
    for simulator, result in results.items():
        contents = result.cache_contents_per_operation()
        sections.append(
            exp1_cache_report(contents, files).replace(
                "Figure 4c:", f"Figure 4c ({simulator}):"
            )
        )
    report("fig4c_cache_contents", "\n\n".join(sections))

    # With files that fit in the page cache, every file is fully cached
    # right after it is read or written (as in the paper's 20 GB case).
    contents = results["wrench-cache"].cache_contents_per_operation()
    assert contents["Read 1"]["file1"] == pytest.approx(SMALL_SIZE, rel=0.02)
    assert contents["Write 1"]["file2"] == pytest.approx(SMALL_SIZE, rel=0.02)
    assert contents["Write 3"]["file4"] == pytest.approx(SMALL_SIZE, rel=0.02)
