#!/usr/bin/env python
"""CI gate: service crash recovery over real HTTP, kill -9 included.

Boots the supervised simulation service on a throwaway data directory,
submits an Exp 6-shaped workload over HTTP, SIGKILLs the worker process
mid-run, and demands:

1. **Recovery** — the supervisor restarts the worker, which resumes
   from its latest verified snapshot and replays the submission log;
   the service keeps accepting submissions afterwards.
2. **No lost work** — every acknowledged submission completes (100%
   job completion in the drain summary).
3. **Byte-identical results** — the drained canonical result JSON
   equals an uninterrupted offline replay of the submission log.
4. **Explicit backpressure** — with the admission queue artificially
   held full, a surplus submission is answered 429 + Retry-After,
   never silently dropped.

Usage::

    PYTHONPATH=src python benchmarks/check_service_recovery.py \
        [--data-dir DIR] [--jobs N]

``--data-dir`` keeps the submission log and snapshots around (CI
uploads them as artifacts on failure); the default is a temp dir.
Exit status 0 when every check passes, 1 on any violation.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

#: Exp 6-shaped submissions: shared datasets re-read by short jobs.
N_JOBS = 12
CLUSTER = dict(n_nodes=2, cores_per_node=4, n_datasets=4)


def http_json(method: str, url: str, body=None, timeout: float = 30.0):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        payload = json.loads(raw) if raw else {}
        payload["_headers"] = dict(exc.headers)
        return exc.code, payload


def wait_until(predicate, timeout: float = 60.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not met within the timeout")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--data-dir", default=None,
                        help="service data directory (kept for artifact "
                             "upload; default: a temp dir)")
    parser.add_argument("--jobs", type=int, default=N_JOBS)
    args = parser.parse_args()

    from repro.service import (
        ServiceConfig,
        SubmissionLog,
        Supervisor,
        canonical_result,
        replay_result,
    )
    from repro.snapshot import SimRecipe, SnapshotPlan
    from repro.units import MB

    if args.data_dir:
        data_dir = Path(args.data_dir)
        if data_dir.exists():
            shutil.rmtree(data_dir)
    else:
        data_dir = Path(tempfile.mkdtemp(prefix="service-smoke-")) / "svc"

    recipe = SimRecipe("service-cluster", dict(
        CLUSTER, input_size=64 * MB, chunk_size=32 * MB,
    ))
    supervisor = Supervisor(
        ServiceConfig(
            data_dir=data_dir, recipe=recipe, port=0,
            snapshot_plan=SnapshotPlan.fixed(0.5, keep=3),
            queue_capacity=32,
        ),
        max_restarts=3, backoff=0.05,
    ).start()

    try:
        port = supervisor.port()
        base = f"http://127.0.0.1:{port}"
        print(f"service up on {base} (pid {supervisor.pid}, "
              f"data dir {data_dir})")

        print(f"submitting {args.jobs} jobs over HTTP ...")
        for i in range(args.jobs):
            status, ack = http_json("POST", f"{base}/jobs", {
                "label": f"job{i}", "dataset": i % CLUSTER["n_datasets"],
                "runtime": 1.0 + 0.25 * (i % 4), "token": f"tok-{i}",
            })
            if status != 201:
                print(f"FAIL: submission {i} -> {status}: {ack}",
                      file=sys.stderr)
                return 1

        wait_until(lambda: http_json(
            "GET", f"{base}/metrics")[1]["sim"]["now"] > 1.0)
        killed = supervisor.kill_worker()
        print(f"killed worker pid {killed} with SIGKILL")

        def recovered_port():
            if not supervisor.alive or supervisor.pid == killed:
                return None
            try:
                port = supervisor.port(timeout=0.1)
                status, _ = http_json(
                    "GET", f"http://127.0.0.1:{port}/healthz", timeout=2.0)
            except Exception:
                return None
            return port if status == 200 else None

        port = wait_until(recovered_port)
        base = f"http://127.0.0.1:{port}"
        print(f"worker restarted (pid {supervisor.pid}, "
              f"restarts {supervisor.restarts})")

        status, dup = http_json("POST", f"{base}/jobs", {
            "label": "job0", "dataset": 0, "runtime": 1.0,
            "token": "tok-0",
        })
        if status != 200 or not dup.get("duplicate"):
            print(f"FAIL: post-crash token retry -> {status}: {dup}",
                  file=sys.stderr)
            return 1
        print("acknowledged pre-crash token deduplicated after recovery")

        print("draining ...")
        status, summary = http_json("POST", f"{base}/drain", {},
                                    timeout=120.0)
        if status != 200:
            print(f"FAIL: drain -> {status}: {summary}", file=sys.stderr)
            return 1
        if summary["jobs_completed"] != args.jobs:
            print(f"FAIL: {summary['jobs_completed']}/{args.jobs} jobs "
                  "completed — acknowledged work was lost",
                  file=sys.stderr)
            return 1
        print(f"drain OK: {summary['jobs_completed']}/{args.jobs} jobs, "
              f"makespan {summary['makespan']:.2f}s")

        supervisor.wait(timeout=60.0)
        if supervisor.gave_up:
            print("FAIL: supervisor gave up", file=sys.stderr)
            return 1
    finally:
        supervisor.stop(timeout=60.0)

    entries = SubmissionLog(data_dir / "submissions.log").entries()
    submitted = sum(1 for entry in entries if entry.op == "submit")
    if submitted != args.jobs:
        print(f"FAIL: log holds {submitted} submissions, "
              f"expected {args.jobs}", file=sys.stderr)
        return 1
    reference = canonical_result(replay_result(recipe, entries))
    recovered = (data_dir / "result.json").read_text(encoding="utf-8")
    if recovered != reference:
        print("FAIL: recovered result diverged from the uninterrupted "
              "replay of the submission log", file=sys.stderr)
        print(f"  reference: {reference[:200]}...", file=sys.stderr)
        print(f"  recovered: {recovered[:200]}...", file=sys.stderr)
        return 1
    print(f"recovery parity OK ({len(reference)} canonical bytes)")

    # Backpressure: a worker-less service with a full queue must answer
    # 429 + Retry-After, never drop silently.
    from repro.service import SimulationService, make_server
    import threading

    with tempfile.TemporaryDirectory() as tmp:
        service = SimulationService(Path(tmp) / "bp", recipe=recipe,
                                    queue_capacity=2)
        for i in range(2):
            service.queue.offer((None, {"dataset": 0, "runtime": 1.0},
                                 None))
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        bp_base = f"http://127.0.0.1:{server.server_address[1]}"
        status, payload = http_json("POST", f"{bp_base}/jobs",
                                    {"dataset": 0, "runtime": 1.0})
        server.shutdown()
        headers = {k.lower(): v
                   for k, v in payload.get("_headers", {}).items()}
        if status != 429 or "retry-after" not in headers:
            print(f"FAIL: over-bound submission -> {status} "
                  f"(headers {sorted(headers)}), expected 429 + "
                  "Retry-After", file=sys.stderr)
            return 1
        if len(service.queue) != 2 or service.queue.n_rejected != 1:
            print("FAIL: backpressure accounting is off", file=sys.stderr)
            return 1
    print("backpressure OK: 429 + Retry-After beyond the queue bound")

    print("service recovery: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
