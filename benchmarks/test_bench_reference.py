"""Calibration reference for the benchmark-regression gate.

A fixed, pure-Python workload whose runtime tracks the machine's
single-core speed.  ``check_regression.py`` divides every benchmark's
median time by this reference median before comparing against the
committed baseline, so the regression gate measures *relative* slowdowns
of the simulator rather than the speed of the CI runner du jour.
"""

from __future__ import annotations

import pytest

#: Loop length tuned to take a few hundred milliseconds on a laptop core.
REFERENCE_ITERATIONS = 2_000_000


def reference_workload(n: int = REFERENCE_ITERATIONS) -> float:
    """A deterministic arithmetic spin (kept free of allocations)."""
    total = 0.0
    for i in range(1, n + 1):
        total += (i % 7) * 0.5 - (i % 3)
    return total


# The calibration must be present in *every* benchmark run that feeds
# check_regression.py, including the marker-restricted `-m perf` run —
# hence both markers (the gating run selects `not perf or calibration`).
@pytest.mark.calibration
@pytest.mark.perf
def test_reference_workload(benchmark):
    result = benchmark.pedantic(reference_workload, rounds=3, iterations=1)
    assert result != 0.0
