"""Shared resources for simulated processes.

Provides the classic SimPy-style primitives used throughout the simulator:

* :class:`Resource` — a counted resource with FIFO queuing (e.g. CPU cores);
* :class:`PriorityResource` — same, with priority-ordered queuing;
* :class:`Container` — a continuous quantity with ``put``/``get`` (e.g. a
  memory pool measured in bytes);
* :class:`Store` — a FIFO queue of Python objects (used for mailboxes
  between services);
* :class:`Lock` — a mutex built on :class:`Resource` with capacity 1, used
  to serialise access to the page-cache LRU lists exactly like the paper
  uses SimGrid's locking between the two Memory Manager threads.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Deque, List, Optional

from repro.des.events import Event


class Request(Event):
    """Event representing a pending request for one unit of a resource.

    The request triggers once the unit is granted.  Requests are context
    managers: leaving the ``with`` block releases the unit.
    """

    __slots__ = ("resource", "priority", "_released", "_withdrawn")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._released = False
        #: Tombstone flag: a cancelled queued request stays in the queue
        #: structure and is skipped at grant time (no rescans).
        self._withdrawn = False
        resource._add_request(self)

    def release(self) -> None:
        """Release the granted unit (idempotent)."""
        if not self._released:
            self._released = True
            self.resource._do_release(self)

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet (O(1))."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.release()


class Release(Event):
    """Immediately-triggered event confirming a release (for symmetry)."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        request.release()
        self.succeed()


class Resource:
    """Counted resource with ``capacity`` units and FIFO queuing.

    Queued requests live in a deque; cancellations and queued releases
    tombstone the request (``_withdrawn``) instead of rescanning the
    queue, and the grant loop skips tombstones as it pops — every queue
    operation is O(1) amortised.
    """

    def __init__(self, env, capacity: int = 1, name: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name or type(self).__name__
        self.users: List[Request] = []
        self._pending: Deque[Request] = deque()
        self._tie = count()

    # ------------------------------------------------------------------ api
    @property
    def count(self) -> int:
        """Number of units currently in use."""
        return len(self.users)

    @property
    def available(self) -> int:
        """Number of free units."""
        return self.capacity - len(self.users)

    @property
    def queue(self) -> List[Request]:
        """The waiting (non-withdrawn) requests, in grant order (snapshot)."""
        return [r for r in self._pending if not r._withdrawn]

    def request(self, priority: int = 0) -> Request:
        """Request one unit; returns an event that triggers when granted."""
        return Request(self, priority=priority)

    def release(self, request: Request) -> Release:
        """Release a previously granted request."""
        return Release(self, request)

    # ------------------------------------------------------------- internals
    def _add_request(self, request: Request) -> None:
        self._enqueue(request)
        self._grant()

    def _enqueue(self, request: Request) -> None:
        self._pending.append(request)

    def _pop_next(self) -> Optional[Request]:
        """Pop the next live queued request, reaping tombstones."""
        pending = self._pending
        while pending:
            request = pending.popleft()
            if not request._withdrawn:
                return request
        return None

    def _grant(self) -> None:
        while len(self.users) < self.capacity:
            request = self._pop_next()
            if request is None:
                return
            self.users.append(request)
            # The request succeeds with itself as value so that processes can
            # write ``with (yield resource.request()): ...``.
            request.succeed(request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        else:
            request._withdrawn = True
        self._grant()

    def _cancel(self, request: Request) -> None:
        if request not in self.users:
            request._withdrawn = True

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"{self.count}/{self.capacity} used, {len(self.queue)} queued>"
        )


class PriorityResource(Resource):
    """Resource whose queue is served in increasing ``priority`` order.

    Backed by a heap keyed by ``(priority, arrival)`` — the old
    implementation re-sorted the whole queue at every grant.  Ties keep
    FIFO order, exactly as the stable sort did.
    """

    def __init__(self, env, capacity: int = 1, name: Optional[str] = None):
        super().__init__(env, capacity, name)
        self._pending: List = []

    @property
    def queue(self) -> List[Request]:
        """The waiting (non-withdrawn) requests, in grant order (snapshot)."""
        return [
            entry[2]
            for entry in sorted(self._pending)
            if not entry[2]._withdrawn
        ]

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(
            self._pending, (request.priority, next(self._tie), request)
        )

    def _pop_next(self) -> Optional[Request]:
        pending = self._pending
        while pending:
            request = heapq.heappop(pending)[2]
            if not request._withdrawn:
                return request
        return None


class ContainerPut(Event):
    """Pending deposit of ``amount`` into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    """Pending withdrawal of ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A homogeneous continuous quantity (bytes, joules, ...).

    ``put`` blocks while the container is full, ``get`` blocks while it does
    not hold enough.
    """

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0,
                 name: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self.name = name or type(self).__name__
        self._level = float(init)
        self._put_queue: Deque[ContainerPut] = deque()
        self._get_queue: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current amount stored in the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; returns an event triggered when it fits."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; returns an event triggered when available."""
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self.capacity + 1e-9:
                    self._level += put.amount
                    self._put_queue.popleft()
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level + 1e-9 >= get.amount:
                    self._level -= get.amount
                    self._get_queue.popleft()
                    get.succeed(get.amount)
                    progressed = True

    def __repr__(self) -> str:
        return f"<Container {self.name!r} level={self._level}/{self.capacity}>"


class StorePut(Event):
    """Pending deposit of an item into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Pending retrieval of an item from a :class:`Store`."""

    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._get_queue.append(self)
        store._trigger()


class Store:
    """FIFO queue of arbitrary Python objects with bounded capacity."""

    def __init__(self, env, capacity: float = float("inf"), name: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name or type(self).__name__
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Append ``item``; returns an event triggered once stored."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve the oldest item; returns an event carrying the item."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            if self._get_queue and self.items:
                get = self._get_queue.popleft()
                get.succeed(self.items.popleft())
                progressed = True

    def __repr__(self) -> str:
        return f"<Store {self.name!r} items={len(self.items)}>"


class Lock:
    """A mutex for simulated processes.

    The page cache LRU lists are manipulated both by foreground I/O and by
    the background periodical-flush process; a lock serialises those
    accesses the same way the WRENCH implementation uses SimGrid mutexes.

    Usage from a process::

        with (yield lock.acquire()):
            ... critical section ...
    """

    def __init__(self, env, name: Optional[str] = None):
        self.env = env
        self.name = name or "Lock"
        self._resource = Resource(env, capacity=1, name=self.name)

    def acquire(self) -> Request:
        """Return an event granting the lock when it becomes free."""
        return self._resource.request()

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._resource.count > 0

    @property
    def waiters(self) -> int:
        """Number of processes queued for the lock."""
        return len(self._resource.queue)

    def __repr__(self) -> str:
        return f"<Lock {self.name!r} locked={self.locked} waiters={self.waiters}>"
