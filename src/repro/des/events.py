"""Core event types for the discrete-event kernel.

An :class:`Event` is the unit of synchronisation between simulated
processes.  Events move through three states:

* *pending*: created but not yet triggered;
* *triggered*: scheduled into the environment's event queue with a value
  (or an exception); callbacks have not run yet;
* *processed*: popped from the queue, all callbacks executed.

Processes (see :mod:`repro.des.process`) wait on events by ``yield``-ing
them; the environment resumes the process when the event is processed.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, List, Optional


class _Pending:
    """Sentinel marking an event value that has not been decided yet."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


#: Sentinel used as the value of untriggered events.
PENDING = _Pending()

#: Default priority for normal events.
NORMAL = 1
#: Priority for urgent events (processed before normal events at equal times).
URGENT = 0


class Interrupt(Exception):
    """Exception thrown into a process when it is interrupted.

    The ``cause`` attribute carries the object given to
    :meth:`repro.des.process.Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to ``Process.interrupt``."""
        return self.args[0]


class StopProcess(Exception):
    """Raised internally to stop a process and return a value.

    Using ``return value`` inside a process generator is the idiomatic way
    to produce a result; this exception exists for API completeness and for
    callers that need to end a process from a helper function.
    """

    @property
    def value(self) -> Any:
        """The value the process returns."""
        return self.args[0] if self.args else None


class Event:
    """A single simulation event.

    Events carry ``__slots__``: a simulation allocates millions of them,
    and slotted instances are both smaller and faster to create than
    dict-backed ones.  Subclasses must declare their own ``__slots__``.

    Parameters
    ----------
    env:
        The environment the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_defunct")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward reference
        self.env = env
        #: Callables invoked (with the event) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set when a failed event's exception has been handled somewhere.
        self.defused = False
        #: Tombstone flag: a cancelled scheduled event stays in the queue
        #: but is skipped (without running callbacks) when popped, so
        #: cancellation never rescans the heap.
        self._defunct = False

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; only valid once triggered."""
        if self._ok is None:
            raise AttributeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not available yet")
        return self._value

    # ------------------------------------------------------------- triggering
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # env.schedule(self) with the call inlined: succeed() runs once
        # per transfer completion and process wake-up.
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have ``exception`` thrown into
        it.  If nothing waits on the event and the exception is never
        defused, the environment re-raises it when the event is processed.
        """
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome (success/failure and value) of ``event``."""
        if event._ok is None:
            raise RuntimeError(f"{event!r} has not been triggered")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # ------------------------------------------------------------ composition
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_event, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the single most allocated event type (every
        # transfer reschedule creates one), so the base initializer is
        # inlined rather than chained through super().__init__.
        self.env = env
        self.callbacks = []
        self.defused = False
        self._defunct = False
        self._delay = delay
        self._ok = True
        self._value = value
        # env.schedule(self, delay=delay), inlined for the same reason.
        heappush(env._queue, (env._now + delay, NORMAL, next(env._eid), self))

    @property
    def delay(self) -> float:
        """The configured delay in simulated seconds."""
        return self._delay

    def cancel(self) -> None:
        """Withdraw the timeout before it fires (tombstone, O(1)).

        A cancelled timeout is skipped by the event loop: its callbacks
        never run.  Cancelling after processing is a no-op.
        """
        self._defunct = True

    def __repr__(self) -> str:
        return f"<Timeout(delay={self._delay}) at {id(self):#x}>"


class Initialize(Event):
    """Event that starts a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):  # noqa: F821
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Ordered mapping of the events that triggered in a condition.

    Behaves like a read-only dict keyed by event, preserving the order in
    which events were given to the condition.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        """Return a plain ``{event: value}`` dict."""
        return {event: event.value for event in self.events}

    def values(self):
        """Return the values of the triggered events, in insertion order."""
        return [event.value for event in self.events]

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event triggered when a predicate over sub-events holds.

    Used through the ``&`` / ``|`` operators on events or the
    :class:`AllOf` / :class:`AnyOf` helpers.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately check for already-processed events.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition) and event.triggered and event.ok:
                event._populate_value(value)
            elif event.callbacks is None and event not in value.events:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defused = True
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Predicate: all sub-events triggered."""
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        """Predicate: at least one sub-event triggered."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* given events have triggered."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of the given events triggers."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_event, events)
