"""Simulated processes.

A process wraps a Python generator.  The generator ``yield``-s events; the
process waits until each yielded event is processed and is then resumed
with the event's value (or has the event's exception thrown into it).  The
process itself is an event that triggers when the generator terminates,
carrying the generator's return value.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.des.events import Event, Initialize, Interrupt, PENDING, StopProcess, URGENT


class Process(Event):
    """An active simulation process driving a generator.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator yielding :class:`~repro.des.events.Event` instances.
    name:
        Optional human-readable name used in ``repr`` and error messages.
    """

    __slots__ = ("_generator", "name", "_target", "data")

    def __init__(self, env, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", type(generator).__name__)
        #: The event this process is currently waiting on (None if resumable).
        self._target: Optional[Event] = None
        #: Arbitrary caller payload (processes are slotted, so ad-hoc
        #: attributes are not available; attach metadata here instead).
        self.data: Any = None
        observer = env.observer
        if observer is not None:
            observer.process_started(self)
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, throwing :class:`Interrupt` into it.

        Interrupting a terminated process is an error.  A process cannot
        interrupt itself.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interruption = Event(self.env)
        interruption._ok = True
        interruption._value = Interrupt(cause)
        interruption.callbacks = [self._resume_interrupt]
        self.env.schedule(interruption, priority=URGENT)

    def _resume_interrupt(self, event: Event) -> None:
        # If the process already ended between scheduling and delivery of the
        # interrupt, silently drop it.
        if not self.is_alive:
            return
        # Remove the process from the event it is waiting on, then resume it
        # with the Interrupt exception.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._do_resume(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        if event._ok:
            self._do_resume(event._value, throw=False)
        else:
            event.defused = True
            self._do_resume(event._value, throw=True)

    def _do_resume(self, value: Any, *, throw: bool) -> None:
        env = self.env
        previous, env._active_process = env._active_process, self
        self._target = None
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._end(stop.value, ok=True)
            return
        except StopProcess as stop:
            self._end(stop.value, ok=True)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate as failed event
            self._end(exc, ok=False)
            return
        finally:
            env._active_process = previous

        if not isinstance(target, Event):
            raise RuntimeError(
                f"process {self.name!r} yielded a non-event object: {target!r}"
            )
        if target.callbacks is None:
            # Already processed: resume on the next urgent slot so that the
            # process does not starve other events scheduled "now".
            immediate = Event(env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks = [self._resume]
            env.schedule(immediate, priority=URGENT)
            self._target = immediate
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def _end(self, value: Any, *, ok: bool) -> None:
        self._ok = ok
        self._value = value
        if not ok and not isinstance(value, BaseException):  # pragma: no cover
            value = RuntimeError(repr(value))
            self._value = value
        observer = self.env.observer
        if observer is not None:
            observer.process_ended(self, ok)
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process({self.name}) {state} at {id(self):#x}>"
