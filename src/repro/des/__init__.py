"""Discrete-event simulation kernel.

This subpackage provides a small but complete process-oriented
discrete-event simulation engine in the spirit of SimPy, written from
scratch.  It plays the role that SimGrid plays for WRENCH in the original
paper: an event queue, simulated processes implemented as Python
generators, composite events, and contention-aware shared resources.

Typical usage::

    from repro.des import Environment

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    env = Environment()
    ...
    env.run()
"""

from repro.des.events import (
    Event,
    Timeout,
    Condition,
    AllOf,
    AnyOf,
    Interrupt,
    StopProcess,
    PENDING,
)
from repro.des.process import Process
from repro.des.environment import Environment, EmptySchedule
from repro.des.resources import (
    Resource,
    Request,
    Release,
    PriorityResource,
    Container,
    Store,
    Lock,
)

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "StopProcess",
    "PENDING",
    "Process",
    "Resource",
    "Request",
    "Release",
    "PriorityResource",
    "Container",
    "Store",
    "Lock",
]
