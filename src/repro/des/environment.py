"""The simulation environment: clock, event queue and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, List, Optional, Tuple, Union

from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    Timeout,
)
from repro.des.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class _StopSimulation(Exception):
    """Internal signal used to end :meth:`Environment.run` at ``until``."""


class Environment:
    """Execution environment for a simulation.

    The environment owns the simulated clock and the priority queue of
    triggered events.  Processes are created with :meth:`process` and the
    simulation is advanced with :meth:`run` or :meth:`step`.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Nullable telemetry hook (a :class:`repro.obs.spans.Observer`).
        #: ``None`` (the default) keeps the event loop on its uninstrumented
        #: fast path; attaching an observer routes :meth:`run` through the
        #: counting loop and lets processes, flows and I/O controllers emit
        #: spans.  The hook only observes — it never schedules events — so
        #: attaching it cannot change simulated results.
        self.observer = None

    # ----------------------------------------------------------------- state
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def queue_size(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._queue)

    # ------------------------------------------------------------- factories
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator and return it."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a new untriggered event."""
        return Event(self)

    def all_of(self, events) -> AllOf:
        """Return an event triggered when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Return an event triggered when any of ``events`` triggers."""
        return AnyOf(self, events)

    # ------------------------------------------------------------ scheduling
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` seconds."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event without rescanning the queue (O(1)).

        The event is tombstoned: it stays in the heap but is skipped (its
        callbacks never run) when popped.  Cancelling an already processed
        event is a no-op.
        """
        event._defunct = True

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf``."""
        queue = self._queue
        # Lazily reap tombstoned (cancelled) entries from the front.
        while queue and queue[0][3]._defunct:
            heapq.heappop(queue)
        if not queue:
            return float("inf")
        return queue[0][0]

    def step(self) -> None:
        """Process the next event.

        Raises
        ------
        EmptySchedule
            If no events remain in the queue.
        """
        pop = heapq.heappop
        observer = self.observer
        try:
            while True:
                now, _, _, event = pop(self._queue)
                if not event._defunct:
                    break
                if observer is not None:
                    observer.des_tombstones += 1
        except IndexError:
            raise EmptySchedule() from None
        self._now = now
        if observer is not None:
            counts = observer.des_event_counts
            name = type(event).__name__
            counts[name] = counts.get(name, 0) + 1

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event.defused:
            # Nobody handled the failure: surface it to the caller of run().
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted;
            * a number — run until the simulated clock reaches that time;
            * an :class:`Event` — run until that event is processed and
              return its value.

        Returns
        -------
        The value of the ``until`` event, if one was given.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(
                    f"until ({at}) must not be earlier than the current time ({self._now})"
                )
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, priority=NORMAL, delay=at - self._now)

        if isinstance(until, Event):
            if until.callbacks is None:
                if until.ok:
                    return until.value
                raise until.value
            until.callbacks.append(_stop_simulation)

        if self.observer is not None:
            return self._run_observed(until)

        # Fast path: the body of step() inlined with the queue and heappop
        # bound locally.  The event loop is the single hottest function of
        # any simulation; avoiding the method call, attribute lookups and
        # per-event exception frames is worth the duplication with step().
        # When a telemetry observer is attached the loop above hands off to
        # :meth:`_run_observed` instead, so the disabled path pays exactly
        # one extra ``is None`` check per :meth:`run` call, not per event.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                now, _, _, event = pop(queue)
                if event._defunct:
                    continue
                self._now = now
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event.defused:
                    # Nobody handled the failure: surface it to the caller.
                    raise event._value
        except _StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            event.defused = True
            raise event._value
        # The queue drained (EmptySchedule in step() terms).
        if isinstance(until, Event) and until._value is PENDING:
            raise RuntimeError(
                "simulation ended before the awaited event was triggered"
            )
        return None

    def _run_observed(self, until: Optional[Event]) -> Any:
        """The event loop with DES introspection counters.

        Identical control flow to the fast loop in :meth:`run` (the
        ``until`` event has already been normalized by the caller), plus
        per-event-class counting and tombstone accounting on the attached
        observer.  Counting is pure observation: the loop processes the
        same events in the same order as the fast path.
        """
        observer = self.observer
        counts = observer.des_event_counts
        counts_get = counts.get
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                now, _, _, event = pop(queue)
                if event._defunct:
                    observer.des_tombstones += 1
                    continue
                self._now = now
                name = type(event).__name__
                counts[name] = counts_get(name, 0) + 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event.defused:
                    # Nobody handled the failure: surface it to the caller.
                    raise event._value
        except _StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            event.defused = True
            raise event._value
        if isinstance(until, Event) and until._value is PENDING:
            raise RuntimeError(
                "simulation ended before the awaited event was triggered"
            )
        return None


def _stop_simulation(event: Event) -> None:
    raise _StopSimulation(event)
