"""Page cache configuration.

Collects the kernel tunables the model depends on, with defaults matching a
stock Linux kernel (the values used on the paper's CentOS 8.1 cluster):

* ``vm.dirty_ratio`` = 20 % — foreground writes block once dirty data
  exceeds this fraction of memory;
* ``vm.dirty_background_ratio`` = 10 % — background writeback starts at
  this fraction (used only by the higher-fidelity reference model);
* ``vm.dirty_expire_centisecs`` = 3000 (30 s) — age after which dirty data
  is flushed by the periodical flusher;
* ``vm.dirty_writeback_centisecs`` = 500 (5 s) — period of the flusher
  thread.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import MB

_UNSET = object()


@dataclass
class PageCacheConfig:
    """Tunables of the simulated page cache.

    Attributes
    ----------
    dirty_ratio:
        Maximum fraction of memory that may hold dirty data before
        foreground writes must flush (``vm.dirty_ratio``).
    dirty_background_ratio:
        Fraction of memory above which background writeback kicks in.  The
        coarse model of the paper does not use it; the calibrated reference
        model does.
    dirty_expire:
        Age in seconds after which dirty blocks are flushed by the
        periodical flusher (``vm.dirty_expire_centisecs`` / 100).
    writeback_interval:
        Period in seconds of the flusher thread
        (``vm.dirty_writeback_centisecs`` / 100).
    chunk_size:
        Default granularity of simulated file accesses (bytes).
    dirty_threshold_base:
        ``"total"`` computes the dirty threshold against total memory (a
        horizontal line, as plotted in Fig. 4b); ``"available"`` computes it
        against free + reclaimable memory, closer to the kernel formula.
    evict_from_active:
        If true, eviction may spill to the active list when the inactive
        list holds no more clean blocks.  The paper's model only evicts from
        the inactive list; enabling this avoids memory exhaustion in corner
        cases and is used by the reference model.
    protect_written_files:
        If true, eviction skips blocks of files that are currently being
        written.  This reproduces the kernel idiosyncrasy the paper reports
        being unable to model easily (File 3 staying fully cached after
        Write 2 in Exp 1 / 100 GB); it is enabled in the calibrated
        reference model and disabled in the paper-faithful simulators.
    periodic_flushing:
        Whether to run the background periodical-flush process.
    active_to_inactive_ratio:
        Maximum allowed ratio between the active and inactive list sizes
        (the kernel keeps the active list at most twice the inactive list).
    balance_lists:
        Whether to enforce ``active_to_inactive_ratio`` after cache updates.
    eviction_policy:
        Victim-selection policy of the cache: a registered name (``"lru"``,
        ``"arc"``, ``"2q"``, ``"clock-pro"``, ``"priority"``), an
        :class:`~repro.pagecache.policy.EvictionPolicy` instance
        (single-host simulations only — instances bind to exactly one
        memory manager), a policy subclass, or a zero-argument factory.
        The default ``"lru"`` reproduces the pre-policy cache
        bit-identically (pinned by the parity suite).

    The former ``coalesce_extents`` knob is gone: the extent-native cache
    coalesces losslessly and always.  Constructing with
    ``coalesce_extents=...`` (directly or through :meth:`with_updates`)
    still works — the kwarg is dropped with a :class:`DeprecationWarning`.
    """

    dirty_ratio: float = 0.20
    dirty_background_ratio: float = 0.10
    dirty_expire: float = 30.0
    writeback_interval: float = 5.0
    chunk_size: float = 100 * MB
    dirty_threshold_base: str = "total"
    evict_from_active: bool = False
    protect_written_files: bool = False
    periodic_flushing: bool = True
    active_to_inactive_ratio: float = 2.0
    balance_lists: bool = True
    #: Eviction-policy spec: a registered name, an ``EvictionPolicy``
    #: instance, a subclass, or a zero-argument factory.
    eviction_policy: object = "lru"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any field is inconsistent."""
        if not (0.0 < self.dirty_ratio <= 1.0):
            raise ConfigurationError(
                f"dirty_ratio must be in (0, 1], got {self.dirty_ratio}"
            )
        if not (0.0 <= self.dirty_background_ratio <= self.dirty_ratio):
            raise ConfigurationError(
                "dirty_background_ratio must be within [0, dirty_ratio], got "
                f"{self.dirty_background_ratio}"
            )
        if self.dirty_expire < 0:
            raise ConfigurationError("dirty_expire must be >= 0")
        if self.writeback_interval <= 0:
            raise ConfigurationError("writeback_interval must be positive")
        if self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.dirty_threshold_base not in ("total", "available"):
            raise ConfigurationError(
                "dirty_threshold_base must be 'total' or 'available', got "
                f"{self.dirty_threshold_base!r}"
            )
        if self.active_to_inactive_ratio <= 0:
            raise ConfigurationError("active_to_inactive_ratio must be positive")
        # Imported lazily: policy.py pulls in the LRU machinery, which the
        # configuration module must not load at import time.
        from repro.pagecache.policy import validate_policy_spec

        validate_policy_spec(self.eviction_policy)

    def with_updates(self, **kwargs) -> "PageCacheConfig":
        """Return a copy of the configuration with some fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def linux_default(cls) -> "PageCacheConfig":
        """Configuration of a stock Linux kernel (paper's cluster)."""
        return cls()

    @classmethod
    def reference(cls) -> "PageCacheConfig":
        """Higher-fidelity configuration used by the calibrated reference model."""
        return cls(
            dirty_threshold_base="available",
            evict_from_active=True,
            protect_written_files=True,
        )

    @classmethod
    def no_periodic_flush(cls) -> "PageCacheConfig":
        """Configuration with the background flusher disabled (for tests)."""
        return cls(periodic_flushing=False)


# The ``coalesce_extents`` field is gone (it selected nothing since the
# extent-native cache landed), but old call sites — including
# ``with_updates(coalesce_extents=...)`` copies, which ``dataclasses.replace``
# routes through ``__init__`` — must keep constructing.  Wrap the generated
# ``__init__`` with a shim that warns and drops the kwarg.
_generated_init = PageCacheConfig.__init__


def _init_with_coalesce_shim(self, *args, coalesce_extents=_UNSET, **kwargs):
    if coalesce_extents is not _UNSET and coalesce_extents is not None:
        warnings.warn(
            "PageCacheConfig(coalesce_extents=...) is deprecated and "
            "ignored: the page cache stores extent runs natively and "
            "coalescing is lossless and always on",
            DeprecationWarning,
            stacklevel=2,
        )
    _generated_init(self, *args, **kwargs)


_init_with_coalesce_shim.__wrapped__ = _generated_init
PageCacheConfig.__init__ = _init_with_coalesce_shim
