"""Cache statistics counters.

The counters are purely observational: they never influence simulated time.
They are used by the test-suite to check invariants (e.g. bytes served from
cache + bytes served from disk == bytes requested) and by the experiment
reports to explain *why* a simulation behaves the way it does (hit ratios,
flushed volume, evicted volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from typing import Dict

try:  # Protocol is typing-only sugar; Python >= 3.8 has it.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object

    def runtime_checkable(cls):
        return cls


@runtime_checkable
class StatsSource(Protocol):
    """The convention every stats surface follows.

    Anything handed to :func:`repro.obs.registry.publish` — cache counters,
    extent occupancy, scheduler metrics, per-policy stats — implements
    ``as_dict()`` returning a flat mapping of scalar metric values keyed by
    snake_case names.  ``publish`` maps each numeric entry to a gauge named
    ``{prefix}.{key}``; non-numeric values are skipped, so ``as_dict`` may
    include descriptive strings, but the numeric core is the contract.
    The conformance test in ``tests/test_pagecache_stats.py`` checks every
    published surface against this protocol.
    """

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping of scalar metrics (snake_case key -> value)."""
        ...  # pragma: no cover - protocol definition


@dataclass
class EvictionPolicyStats:
    """Counters of one eviction policy's decision state.

    The counters are observational (published under ``cache.policy.*``):
    they describe how the policy classified files, never the byte
    accounting (that stays in :class:`CacheStatistics`).  Policies that do
    not use a concept leave its counter at zero — e.g. only ghost-keeping
    policies (ARC/2Q/CLOCK-Pro) move ``ghost_hits``.
    """

    #: Files the policy currently tracks as cache-resident.
    tracked_files: int = 0
    #: Files remembered in ghost/history lists (evicted but not forgotten).
    ghost_files: int = 0
    #: Insert events observed (new data entering the cache).
    inserts: int = 0
    #: Access events observed (cache hits).
    accesses: int = 0
    #: Files whose last cached byte was evicted.
    full_evictions: int = 0
    #: Files dropped by invalidation (deletion) while tracked.
    invalidations: int = 0
    #: Re-inserts that hit a ghost/history entry.
    ghost_hits: int = 0
    #: Files upgraded to a longer-retention tier (T2 / Am / hot / un-demoted).
    promotions: int = 0
    #: Files downgraded (hot residents evicted, preemption penalties).
    demotions: int = 0
    #: Job dispatch events forwarded by the scheduler.
    job_dispatches: int = 0
    #: Job preemption events forwarded by the scheduler.
    job_preemptions: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary."""
        return {
            "tracked_files": self.tracked_files,
            "ghost_files": self.ghost_files,
            "inserts": self.inserts,
            "accesses": self.accesses,
            "full_evictions": self.full_evictions,
            "invalidations": self.invalidations,
            "ghost_hits": self.ghost_hits,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "job_dispatches": self.job_dispatches,
            "job_preemptions": self.job_preemptions,
        }


@dataclass
class ExtentOccupancy:
    """Point-in-time structure of a page cache's extent runs.

    ``runs`` is the number of LRU-list nodes the cache pays for; with the
    extent representation it tracks the number of distinct access streams
    rather than ``bytes / chunk_size``.  ``fragments`` is the number of
    exact-byte fragments held inside those runs (the accounting
    granularity, unchanged by coalescing), and ``merges`` counts the
    fragments that joined an existing run instead of becoming a node of
    their own.  ``fragments_per_run`` is the structural win: how many
    list/index/heap entries each run is standing in for.
    """

    runs: int
    fragments: int
    merges: int

    @classmethod
    def of(cls, lists) -> "ExtentOccupancy":
        """Snapshot the occupancy of a :class:`PageCacheLists` pair."""
        return cls(
            runs=lists.run_count,
            fragments=lists.fragment_count,
            merges=lists.merge_count,
        )

    @property
    def fragments_per_run(self) -> float:
        """Mean fragments per run (1.0 = no coalescing happening)."""
        if self.runs <= 0:
            return 0.0
        return self.fragments / self.runs

    def as_dict(self) -> Dict[str, float]:
        """Return the occupancy as a plain dictionary."""
        return {
            "runs": self.runs,
            "fragments": self.fragments,
            "merges": self.merges,
            "fragments_per_run": self.fragments_per_run,
        }


@dataclass
class CacheStatistics:
    """Byte and operation counters for a simulated page cache."""

    #: Bytes served from the page cache (cache hits).
    cache_hit_bytes: float = 0.0
    #: Bytes read from the underlying storage device (cache misses).
    cache_miss_bytes: float = 0.0
    #: Bytes written to the page cache (writeback writes).
    cache_write_bytes: float = 0.0
    #: Bytes written directly to storage (writethrough or direct I/O).
    direct_write_bytes: float = 0.0
    #: Bytes of dirty data flushed to storage (foreground flushes).
    flushed_bytes: float = 0.0
    #: Bytes of dirty data flushed by the periodical background flusher.
    background_flushed_bytes: float = 0.0
    #: Bytes of clean data evicted from the cache.
    evicted_bytes: float = 0.0
    #: Number of chunk read operations.
    read_ops: int = 0
    #: Number of chunk write operations.
    write_ops: int = 0
    #: Number of foreground flush invocations that flushed at least one byte.
    flush_ops: int = 0
    #: Number of eviction invocations that evicted at least one byte.
    evict_ops: int = 0
    #: Per-file bytes served from cache.
    per_file_hits: Dict[str, float] = field(default_factory=dict)
    #: Per-file bytes read from storage.
    per_file_misses: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------- api
    def record_hit(self, filename: str, amount: float) -> None:
        """Record ``amount`` bytes of ``filename`` served from the cache."""
        self.cache_hit_bytes += amount
        self.per_file_hits[filename] = self.per_file_hits.get(filename, 0.0) + amount

    def record_miss(self, filename: str, amount: float) -> None:
        """Record ``amount`` bytes of ``filename`` read from storage."""
        self.cache_miss_bytes += amount
        self.per_file_misses[filename] = (
            self.per_file_misses.get(filename, 0.0) + amount
        )

    @property
    def total_read_bytes(self) -> float:
        """Total bytes served to applications by read operations."""
        return self.cache_hit_bytes + self.cache_miss_bytes

    @property
    def total_write_bytes(self) -> float:
        """Total bytes written by applications."""
        return self.cache_write_bytes + self.direct_write_bytes

    @property
    def hit_ratio(self) -> float:
        """Fraction of read bytes served from the cache, in ``[0, 1]``.

        Returns 0.0 when no bytes were read, and stays well-defined on
        degenerate counters: a non-finite total (a simulated unbounded
        stream) or float drift pushing a counter slightly negative
        yields a clamped ratio instead of a NaN or a value outside the
        unit interval.
        """
        total = self.total_read_bytes
        if not isfinite(total) or total <= 0.0:
            return 0.0
        ratio = self.cache_hit_bytes / total
        if not isfinite(ratio):
            return 0.0
        return min(1.0, max(0.0, ratio))

    def as_dict(self) -> Dict[str, float]:
        """Return the scalar counters as a plain dictionary."""
        return {
            "cache_hit_bytes": self.cache_hit_bytes,
            "cache_miss_bytes": self.cache_miss_bytes,
            "cache_write_bytes": self.cache_write_bytes,
            "direct_write_bytes": self.direct_write_bytes,
            "flushed_bytes": self.flushed_bytes,
            "background_flushed_bytes": self.background_flushed_bytes,
            "evicted_bytes": self.evicted_bytes,
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "flush_ops": self.flush_ops,
            "evict_ops": self.evict_ops,
            "hit_ratio": self.hit_ratio,
        }

    def __repr__(self) -> str:
        return (
            f"<CacheStatistics hits={self.cache_hit_bytes:.0f}B "
            f"misses={self.cache_miss_bytes:.0f}B "
            f"flushed={self.flushed_bytes + self.background_flushed_bytes:.0f}B "
            f"evicted={self.evicted_bytes:.0f}B>"
        )
