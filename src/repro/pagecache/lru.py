"""Two-list LRU structure of the Linux page cache.

The kernel flags pages for eviction with a two-list strategy: newly
accessed data enters the *inactive* list; data accessed again is promoted
to the *active* list; the active list is kept at most twice the size of the
inactive list by demoting its least recently used entries.  Only clean data
on the inactive list is eligible for eviction.

:class:`LRUList` is a single list of :class:`~repro.pagecache.block.Block`
objects ordered by last access time (oldest first);
:class:`PageCacheLists` pairs an inactive and an active list and implements
promotion, demotion and balancing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import CacheConsistencyError
from repro.pagecache.block import Block

#: Accounting tolerance in bytes.
_EPSILON = 1e-6

#: Tolerance of the negative-accounting guard.  Sizes are bytes, so totals
#: reach 1e9-1e12; one float64 ulp at that magnitude is ~1e-6-1e-4 bytes
#: and add/remove cycles accumulate a few of them.  1e-3 bytes matches the
#: drift tolerance of :meth:`LRUList.assert_consistent` while still being
#: vastly below any real block size.
_NEGATIVE_TOLERANCE = 1e-3


class LRUList:
    """An LRU-ordered list of data blocks.

    Blocks are kept ordered by last access time, oldest first.  Appending a
    block with a monotonically increasing access time keeps the order
    without sorting; out-of-order insertions (e.g. demotions from the
    active list) fall back to an insertion by key.
    """

    def __init__(self, name: str = "lru"):
        self.name = name
        self._blocks: List[Block] = []
        self._size = 0.0
        self._dirty = 0.0
        self._per_file: Dict[str, float] = {}

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total bytes held by the list."""
        return self._size

    @property
    def dirty_size(self) -> float:
        """Bytes of dirty data held by the list."""
        return self._dirty

    @property
    def clean_size(self) -> float:
        """Bytes of clean (evictable) data held by the list."""
        return max(0.0, self._size - self._dirty)

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __contains__(self, block: Block) -> bool:
        return block in self._blocks

    @property
    def blocks(self) -> List[Block]:
        """The blocks in LRU order (oldest first).  Do not mutate."""
        return self._blocks

    # ------------------------------------------------------------ accounting
    def _account_add(self, block: Block) -> None:
        self._size += block.size
        if block.dirty:
            self._dirty += block.size
        self._per_file[block.filename] = (
            self._per_file.get(block.filename, 0.0) + block.size
        )

    def _account_remove(self, block: Block) -> None:
        self._size -= block.size
        if block.dirty:
            self._dirty -= block.size
        remaining = self._per_file.get(block.filename, 0.0) - block.size
        if remaining <= _EPSILON:
            self._per_file.pop(block.filename, None)
        else:
            self._per_file[block.filename] = remaining
        if self._size < -_NEGATIVE_TOLERANCE or self._dirty < -_NEGATIVE_TOLERANCE:
            raise CacheConsistencyError(
                f"negative accounting in LRU list {self.name!r}: "
                f"size={self._size}, dirty={self._dirty}"
            )
        self._size = max(0.0, self._size)
        self._dirty = max(0.0, self._dirty)

    # ------------------------------------------------------------- mutations
    def append(self, block: Block) -> None:
        """Add ``block`` as the most recently used entry."""
        if self._blocks and block.last_access < self._blocks[-1].last_access:
            self.insert_ordered(block)
            return
        self._blocks.append(block)
        self._account_add(block)

    def insert_ordered(self, block: Block) -> None:
        """Insert ``block`` keeping the list ordered by last access time."""
        index = 0
        for index, existing in enumerate(self._blocks):  # noqa: B007
            if existing.last_access > block.last_access:
                break
        else:
            index = len(self._blocks)
        self._blocks.insert(index, block)
        self._account_add(block)

    def remove(self, block: Block) -> None:
        """Remove ``block`` from the list."""
        self._blocks.remove(block)
        self._account_remove(block)

    def pop_lru(self) -> Block:
        """Remove and return the least recently used block."""
        if not self._blocks:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        block = self._blocks.pop(0)
        self._account_remove(block)
        return block

    def mark_clean(self, block: Block) -> None:
        """Clear the dirty flag of ``block``, fixing the dirty accounting."""
        if block not in self._blocks:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        if block.dirty:
            block.dirty = False
            self._dirty = max(0.0, self._dirty - block.size)

    def clear(self) -> List[Block]:
        """Remove all blocks and return them."""
        blocks, self._blocks = self._blocks, []
        self._size = 0.0
        self._dirty = 0.0
        self._per_file = {}
        return blocks

    # --------------------------------------------------------------- queries
    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` held by the list."""
        return self._per_file.get(filename, 0.0)

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` for this list."""
        return dict(self._per_file)

    def blocks_of_file(self, filename: str) -> List[Block]:
        """Blocks of ``filename``, in LRU order."""
        return [block for block in self._blocks if block.filename == filename]

    def dirty_blocks(self, exclude_file: Optional[str] = None) -> List[Block]:
        """Dirty blocks in LRU order, optionally excluding one file."""
        return [
            block
            for block in self._blocks
            if block.dirty and block.filename != exclude_file
        ]

    def clean_blocks(self, exclude_files: Iterable[str] = ()) -> List[Block]:
        """Clean blocks in LRU order, optionally excluding some files."""
        excluded = set(exclude_files)
        return [
            block
            for block in self._blocks
            if not block.dirty and block.filename not in excluded
        ]

    def expired_blocks(self, now: float, expiration: float) -> List[Block]:
        """Dirty blocks whose entry time is older than ``expiration`` seconds."""
        return [block for block in self._blocks if block.is_expired(now, expiration)]

    def assert_consistent(self) -> None:
        """Validate the internal accounting against the block contents."""
        total = sum(block.size for block in self._blocks)
        dirty = sum(block.size for block in self._blocks if block.dirty)
        if abs(total - self._size) > 1e-3 or abs(dirty - self._dirty) > 1e-3:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} accounting drift: "
                f"size {self._size} vs {total}, dirty {self._dirty} vs {dirty}"
            )

    def __repr__(self) -> str:
        return (
            f"<LRUList {self.name!r} blocks={len(self._blocks)} "
            f"size={self._size:.0f} dirty={self._dirty:.0f}>"
        )


class PageCacheLists:
    """The paired inactive/active LRU lists with kernel-style balancing."""

    def __init__(self, active_to_inactive_ratio: float = 2.0,
                 balance: bool = True):
        self.inactive = LRUList("inactive")
        self.active = LRUList("active")
        self.active_to_inactive_ratio = active_to_inactive_ratio
        self.balance_enabled = balance

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total cached bytes across both lists."""
        return self.inactive.size + self.active.size

    @property
    def dirty_size(self) -> float:
        """Total dirty bytes across both lists."""
        return self.inactive.dirty_size + self.active.dirty_size

    @property
    def clean_size(self) -> float:
        """Total clean bytes across both lists."""
        return self.inactive.clean_size + self.active.clean_size

    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` cached across both lists."""
        return (
            self.inactive.cached_of_file(filename)
            + self.active.cached_of_file(filename)
        )

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` across both lists."""
        merged = self.inactive.files()
        for filename, size in self.active.files().items():
            merged[filename] = merged.get(filename, 0.0) + size
        return merged

    def all_blocks(self) -> List[Block]:
        """All blocks, inactive list first (the order data is read back)."""
        return list(self.inactive) + list(self.active)

    # ------------------------------------------------------------- mutations
    def add_to_inactive(self, block: Block) -> None:
        """Insert a newly cached block (first access) and rebalance."""
        self.inactive.append(block)
        self.balance()

    def add_to_active(self, block: Block) -> None:
        """Insert a re-accessed block into the active list and rebalance."""
        self.active.append(block)
        self.balance()

    def promote(self, block: Block, now: float) -> None:
        """Move ``block`` from the inactive to the active list (re-access)."""
        self.inactive.remove(block)
        block.touch(now)
        self.active.append(block)
        self.balance()

    def remove(self, block: Block) -> None:
        """Remove ``block`` from whichever list holds it."""
        if block in self.inactive:
            self.inactive.remove(block)
        elif block in self.active:
            self.active.remove(block)
        else:
            raise CacheConsistencyError(f"{block!r} is not cached")

    def balance(self) -> float:
        """Demote LRU active data until active <= ratio x inactive.

        Exactly the excess is demoted (the last demoted block is split if
        needed), so the structural invariant ``active <= ratio x inactive``
        holds after every cache update, matching the kernel's steady state
        where the active list is kept at most twice the inactive list.
        Returns the number of bytes demoted.
        """
        if not self.balance_enabled:
            return 0.0
        ratio = self.active_to_inactive_ratio
        excess = self.active.size - ratio * self.inactive.size
        if excess <= _EPSILON:
            return 0.0
        # Demoting x bytes must yield active - x <= ratio * (inactive + x).
        to_demote = excess / (1.0 + ratio)
        demoted = 0.0
        while demoted < to_demote - _EPSILON and len(self.active) > 0:
            block = self.active.blocks[0]  # least recently used
            needed = to_demote - demoted
            if block.size <= needed + _EPSILON:
                self.active.remove(block)
                self.inactive.insert_ordered(block)
                demoted += block.size
            else:
                self.active.remove(block)
                demoted_part, kept_part = block.split(needed)
                self.inactive.insert_ordered(demoted_part)
                self.active.insert_ordered(kept_part)
                demoted += needed
        return demoted

    def assert_consistent(self) -> None:
        """Validate accounting of both lists."""
        self.inactive.assert_consistent()
        self.active.assert_consistent()

    def __repr__(self) -> str:
        return (
            f"<PageCacheLists inactive={self.inactive.size:.0f}B "
            f"active={self.active.size:.0f}B dirty={self.dirty_size:.0f}B>"
        )
