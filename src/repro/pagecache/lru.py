"""Two-list LRU structure of the Linux page cache, stored as extent runs.

The kernel flags pages for eviction with a two-list strategy: newly
accessed data enters the *inactive* list; data accessed again is promoted
to the *active* list; the active list is kept at most twice the size of the
inactive list by demoting its least recently used entries.  Only clean data
on the inactive list is eligible for eviction.

:class:`LRUList` keeps :class:`~repro.pagecache.block.Block` fragments
ordered by last access time (oldest first), grouped into
:class:`~repro.pagecache.extents.ExtentRun` rows: maximal sequences of
consecutive same-file, same-state fragments.  The run is the node of the
intrusive doubly-linked list, the unit held by the per-file index and the
unit enqueued in the flush/eviction state heaps, so the structural cost of
the cache scales with the number of *streams* the workload keeps live, not
with ``bytes / chunk_size``:

* appending a fragment that continues the tail run (the sequential
  read/write hot path) touches no list links, no index and no heap — it is
  a single list append plus accounting;
* the flush/eviction cursors carve fragments off the front of one run at a
  time, with heap traffic per *run*, not per fragment;
* the read path walks only the touched file's runs through a lazy cursor
  (:meth:`LRUList.file_cursor`), so a chunked re-read of a cached file
  costs the fragments it consumes instead of a per-chunk snapshot of every
  cached block of the file (the pre-extent implementation's remaining
  quadratic regime).

Ordering invariant.  Fragments are totally ordered by
``(last_access, stamp)``, where the per-list monotone *stamp* is assigned
at every insertion and breaks last-access ties in insertion order; a run
occupies a contiguous range of that order, and runs never overlap.  This
is exactly the order the pre-extent implementation maintained one list
node per block, which is what the parity suite
(``tests/test_pagecache_parity.py``) pins.

Losslessness.  Runs coalesce — a fragment joining the tail of an existing
run, flush splits re-joining their clean neighbours — by *moving
fragments between rows*, never by summing their sizes.  Fragment sizes,
and therefore every byte amount any operation observes or any accounting
total accumulates, are bit-identical to the one-block-per-node
representation.  PR 3's opt-in ``coalesce_extents`` merged blocks by
adding their sizes, which re-associated float additions and could flip
discrete scheduling decisions at paper scale; that mode is gone, and the
run representation is default-on because there is no arithmetic to lose.

:class:`PageCacheLists` pairs an inactive and an active list and implements
promotion, demotion and balancing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import CacheConsistencyError
from repro.pagecache.block import Block
from repro.pagecache.extents import (
    _COMPACT_THRESHOLD,
    ExtentRun,
    FileCursor,
    RunIndex,
    StateCursor,
    StateHeap,
)
from repro.pagecache.tolerances import (
    BYTE_EPSILON,
    DRIFT_TOLERANCE,
    NEGATIVE_TOLERANCE,
)


class LRUList:
    """An LRU-ordered list of data-block fragments, stored as extent runs.

    Appending a fragment with a monotonically increasing access time is
    O(1); out-of-order insertions (e.g. demotions from the active list)
    fall back to a position scan over *runs* from whichever end is closer
    in time, plus a binary search inside the located run.  Removal of a
    run-front fragment and LRU pops are O(1) amortized; per-file and
    clean/dirty queries return their answers in exact list order.
    """

    __slots__ = ("name", "merges", "_head", "_tail", "_length", "_size",
                 "_dirty", "_per_file", "_file_runs", "_dirty_heap",
                 "_clean_heap", "_next_stamp", "_run_count",
                 "_pending_repush", "_run_pool")

    def __init__(self, name: str = "lru"):
        self.name = name
        #: Number of fragments that joined an existing run instead of
        #: becoming a list node of their own (observability/benchmarks).
        self.merges = 0
        self._head: Optional[ExtentRun] = None
        self._tail: Optional[ExtentRun] = None
        self._length = 0
        self._run_count = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file: Dict[str, float] = {}
        #: filename -> index of its runs in this list.
        self._file_runs: Dict[str, RunIndex] = {}
        #: Lazy-deletion heaps serving "next dirty/clean run in LRU
        #: order" to the flush and eviction paths.
        self._dirty_heap = StateHeap(self, True)
        self._clean_heap = StateHeap(self, False)
        #: Runs whose front key changed since their last heap push; they
        #: are re-pushed in bulk before the next heap consumer runs, so
        #: front carving costs no per-fragment heap traffic.  A dict is
        #: used as an insertion-ordered set to keep runs deterministic.
        self._pending_repush: Dict[ExtentRun, None] = {}
        #: Dead run objects kept for reuse: runs are the cache's highest-
        #: churn allocation (one per stream boundary), and pooling them
        #: halves the garbage-collector traffic of chunk-heavy runs.
        #: Stale references are fenced by the per-run ``_epoch`` bumped
        #: at death.  Pools are per list so fragment stamps stay unique.
        self._run_pool: List[ExtentRun] = []
        self._next_stamp = 0

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total bytes held by the list."""
        return self._size

    @property
    def dirty_size(self) -> float:
        """Bytes of dirty data held by the list."""
        return self._dirty

    @property
    def clean_size(self) -> float:
        """Bytes of clean (evictable) data held by the list."""
        return max(0.0, self._size - self._dirty)

    @property
    def run_count(self) -> int:
        """Number of extent runs (list nodes) currently held."""
        return self._run_count

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Block]:
        run = self._head
        while run is not None:
            # Capture the link and the live fragments before yielding so
            # callers may consume the current fragment while iterating.
            succ = run._next
            for frag in run.frags[run.head:]:
                yield frag
            run = succ

    def __contains__(self, block: object) -> bool:
        run = getattr(block, "_run", None)
        return run is not None and run._list is self

    @property
    def blocks(self) -> List[Block]:
        """The fragments in LRU order (oldest first).  O(n) snapshot."""
        return list(self)

    def runs(self) -> List[ExtentRun]:
        """The extent runs in LRU order (oldest first).  O(runs) snapshot."""
        result = []
        run = self._head
        while run is not None:
            result.append(run)
            run = run._next
        return result

    # ------------------------------------------------------------ accounting
    def _account_add(self, block: Block) -> None:
        self._size += block.size
        if block.dirty:
            self._dirty += block.size
        self._per_file[block.filename] = (
            self._per_file.get(block.filename, 0.0) + block.size
        )

    # ----------------------------------------------------------- run plumbing
    def _alloc_run(self, filename: str, dirty: bool) -> ExtentRun:
        """A fresh (or recycled) unlinked run for ``filename``."""
        pool = self._run_pool
        if pool:
            run = pool.pop()
            run.filename = filename
            run.dirty = dirty
            return run
        return ExtentRun(filename, dirty)

    def _link_run(self, run: ExtentRun, pred: Optional[ExtentRun],
                  succ: Optional[ExtentRun], *, newest: bool) -> None:
        """Link a freshly built, non-empty run between ``pred`` and ``succ``."""
        run._prev = pred
        run._next = succ
        if pred is not None:
            pred._next = run
        else:
            self._head = run
        if succ is not None:
            succ._prev = run
        else:
            self._tail = run
        run._list = self
        self._run_count += 1
        index = self._file_runs.get(run.filename)
        if index is None:
            index = self._file_runs[run.filename] = RunIndex()
        if newest:
            index.add_newest(run)
        else:
            index.add(run, self)
        heap = self._dirty_heap if run.dirty else self._clean_heap
        heap.live += 1
        # The heap entry is deferred to the pending set: consumers flush
        # it before popping, and a run consumed to death by the read path
        # in the meantime never touches the heap at all.
        self._pending_repush[run] = None

    def _kill_run(self, run: ExtentRun) -> None:
        """Unlink an exhausted run; its heap entries die lazily."""
        pred, succ = run._prev, run._next
        if pred is not None:
            pred._next = succ
        else:
            self._head = succ
        if succ is not None:
            succ._prev = pred
        else:
            self._tail = pred
        run._prev = run._next = None
        run._list = None
        self._run_count -= 1
        index = self._file_runs.get(run.filename)
        if index is not None:
            index.discard(run, self)
            if not index:
                del self._file_runs[run.filename]
        heap = self._dirty_heap if run.dirty else self._clean_heap
        heap.live -= 1
        self._pending_repush.pop(run, None)
        # Retire the object: the epoch bump turns every outstanding
        # reference (index entries, cursors) into a tombstone, so the
        # object can be reused immediately.
        run._epoch += 1
        if run.frags:
            run.frags.clear()
        run.head = 0
        pool = self._run_pool
        if len(pool) < 512:
            pool.append(run)

    def _split_run(self, run: ExtentRun, idx: int) -> ExtentRun:
        """Move ``run.frags[idx:]`` into a new run linked right after it.

        ``idx`` must be strictly inside the live fragment range, so both
        halves stay non-empty.  The left half keeps its front (and its
        heap entries); the right half is a new run with its own entry.
        """
        right = self._alloc_run(run.filename, run.dirty)
        moved = run.frags[idx:]
        right.frags = moved
        for frag in moved:
            frag._run = right
        del run.frags[idx:]
        self._link_run(right, run, run._next, newest=False)
        return right

    def _flush_pending(self) -> None:
        """Re-push runs whose front key changed since their last push."""
        pending = self._pending_repush
        if not pending:
            return
        dirty_heap, clean_heap = self._dirty_heap, self._clean_heap
        for run in pending:
            if run._list is self and run.head < len(run.frags):
                (dirty_heap if run.dirty else clean_heap).push(run)
        pending.clear()

    # ------------------------------------------------------------- insertion
    def _place_in_gap(self, block: Block, pred: Optional[ExtentRun],
                      succ: Optional[ExtentRun]) -> None:
        """Link ``block`` between two runs, joining a compatible neighbour."""
        block._stamp = self._next_stamp
        self._next_stamp += 1
        if (pred is not None and pred.filename == block.filename
                and pred.dirty is block.dirty):
            pred.frags.append(block)
            block._run = pred
            self.merges += 1
        elif (succ is not None and succ.filename == block.filename
                and succ.dirty is block.dirty):
            # The block becomes the new front of the successor run.
            if succ.head:
                succ.head -= 1
                succ.frags[succ.head] = block
            else:
                succ.frags.insert(0, block)
            block._run = succ
            self._pending_repush[succ] = None
            self.merges += 1
        else:
            run = self._alloc_run(block.filename, block.dirty)
            run.frags.append(block)
            block._run = run
            self._link_run(run, pred, succ, newest=False)
        self._length += 1
        self._account_add(block)

    def _place_inside(self, block: Block, run: ExtentRun, key: float) -> None:
        """Link ``block`` at its ordered position inside ``run``'s span."""
        frags = run.frags
        lo, hi = run.head, len(frags)
        while lo < hi:
            mid = (lo + hi) // 2
            if frags[mid].last_access <= key:
                lo = mid + 1
            else:
                hi = mid
        # run.front() <= key < run.back() guarantees an interior position,
        # so neither the run's front nor its heap entries change.
        block._stamp = self._next_stamp
        self._next_stamp += 1
        if run.filename == block.filename and run.dirty is block.dirty:
            frags.insert(lo, block)
            block._run = run
            self.merges += 1
        else:
            right = self._split_run(run, lo)
            single = self._alloc_run(block.filename, block.dirty)
            single.frags.append(block)
            block._run = single
            self._link_run(single, run, right, newest=False)
        self._length += 1
        self._account_add(block)

    def _insert_positioned(self, block: Block) -> None:
        """Insert at the ordered position, scanning from the closer end."""
        key = block.last_access
        head_run, tail_run = self._head, self._tail
        if (key - head_run.front().last_access) <= (
                tail_run.back().last_access - key):
            # Scan forward for the first run reaching strictly past `key`.
            run = head_run
            while run.back().last_access <= key:
                run = run._next  # cannot fall off: tail.back() > key
            if run.front().last_access > key:
                self._place_in_gap(block, run._prev, run)
            else:
                self._place_inside(block, run, key)
        else:
            # Scan backward for the last run starting at or before `key`.
            run = tail_run
            while run is not None and run.front().last_access > key:
                run = run._prev
            if run is None:
                self._place_in_gap(block, None, self._head)
            elif run.back().last_access <= key:
                self._place_in_gap(block, run, run._next)
            else:
                self._place_inside(block, run, key)

    # ------------------------------------------------------------- mutations
    def append(self, block: Block) -> None:
        """Add ``block`` at its ordered position (O(1) at the tail).

        The block lands after every fragment with ``last_access`` less
        than or equal to its own (ties resolve to insertion order); an
        out-of-order block falls back to a position scan over runs from
        whichever end of the list is closer in time.  This is the
        hottest structural operation of the simulator, so the tail path
        is fully inlined: join the tail run or link a fresh one, then
        account — no helper calls.
        """
        if block._run is not None:
            raise CacheConsistencyError(
                f"block {block!r} is already in an LRU list"
            )
        tail = self._tail
        if tail is not None and block.last_access < tail.frags[-1].last_access:
            self._insert_positioned(block)
            return
        block._stamp = self._next_stamp
        self._next_stamp += 1
        dirty = block.dirty
        filename = block.filename
        if (tail is not None and tail.filename == filename
                and tail.dirty is dirty):
            tail.frags.append(block)
            block._run = tail
            self.merges += 1
        else:
            pool = self._run_pool
            if pool:
                run = pool.pop()
                run.filename = filename
                run.dirty = dirty
            else:
                run = ExtentRun(filename, dirty)
            run.frags.append(block)
            block._run = run
            run._prev = tail
            if tail is not None:
                tail._next = run
            else:
                self._head = run
            self._tail = run
            run._list = self
            self._run_count += 1
            index = self._file_runs.get(filename)
            if index is None:
                index = self._file_runs[filename] = RunIndex()
            index.runs.append(run)
            index.epochs.append(run._epoch)
            index.live += 1
            heap = self._dirty_heap if dirty else self._clean_heap
            heap.live += 1
            self._pending_repush[run] = None
        self._length += 1
        size = block.size
        self._size += size
        if dirty:
            self._dirty += size
        per_file = self._per_file
        per_file[filename] = per_file.get(filename, 0.0) + size

    #: ``insert_ordered`` is the historical name of the ordered insert;
    #: the tail-append fast path and the ordered fallback live in
    #: :meth:`append`, which implements both.
    insert_ordered = append

    def _detach(self, block: Block, *, account: bool = True) -> None:
        run = block._run
        if run is None or run._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        frags = run.frags
        head = run.head
        if frags[head] is block:
            frags[head] = None
            head += 1
            run.head = head
            if head >= len(frags):
                self._kill_run(run)
            else:
                if head >= _COMPACT_THRESHOLD and head * 2 >= len(frags):
                    run.compact()
                self._pending_repush[run] = None
        elif frags[-1] is block:
            frags.pop()
        else:
            idx = frags.index(block, head + 1, len(frags) - 1)
            del frags[idx]
        block._run = None
        self._length -= 1
        if account:
            size = block.size
            self._size -= size
            if block.dirty:
                self._dirty -= size
            filename = block.filename
            per_file = self._per_file
            remaining = per_file.get(filename, 0.0) - size
            if remaining <= BYTE_EPSILON:
                per_file.pop(filename, None)
            else:
                per_file[filename] = remaining
            if (self._size < -NEGATIVE_TOLERANCE
                    or self._dirty < -NEGATIVE_TOLERANCE):
                raise CacheConsistencyError(
                    f"negative accounting in LRU list {self.name!r}: "
                    f"size={self._size}, dirty={self._dirty}"
                )
            self._size = max(0.0, self._size)
            self._dirty = max(0.0, self._dirty)

    def remove(self, block: Block) -> None:
        """Remove ``block`` from the list (O(1) at a run boundary)."""
        self._detach(block)

    def pop_lru(self) -> Block:
        """Remove and return the least recently used fragment (O(1))."""
        run = self._head
        if run is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        block = run.frags[run.head]
        self._detach(block)
        return block

    def peek_lru(self) -> Block:
        """The least recently used fragment, without removing it (O(1))."""
        if self._head is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        return self._head.front()

    def mark_clean(self, block: Block) -> None:
        """Clear the dirty flag of ``block``, fixing the dirty accounting.

        The fragment keeps its exact position and stamp in the LRU order
        — only its state changes.  Structurally it moves out of its dirty
        run into the adjacent clean run when one borders it (the
        background flusher cleaning a run front-to-back grows one clean
        run instead of shredding the list), or into a clean run of its
        own, splitting the dirty run when it sat in the middle (a true
        state boundary).
        """
        run = block._run
        if run is None or run._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        if not block.dirty:
            return
        block.dirty = False
        self._dirty = max(0.0, self._dirty - block.size)
        frags = run.frags
        head = run.head
        if len(frags) - head == 1:
            prev = run._prev
            if (prev is not None and prev.filename == run.filename
                    and not prev.dirty):
                prev.frags.append(block)
                block._run = prev
                self._kill_run(run)
                self.merges += 1
            else:
                run.dirty = False
                self._dirty_heap.live -= 1
                self._clean_heap.live += 1
                self._pending_repush[run] = None
        elif frags[head] is block:
            frags[head] = None
            run.head = head + 1
            self._pending_repush[run] = None
            prev = run._prev
            if (prev is not None and prev.filename == run.filename
                    and not prev.dirty):
                prev.frags.append(block)
                block._run = prev
                self.merges += 1
            else:
                clean = self._alloc_run(run.filename, False)
                clean.frags.append(block)
                block._run = clean
                self._link_run(clean, prev, run, newest=False)
        elif frags[-1] is block:
            frags.pop()
            succ = run._next
            if (succ is not None and succ.filename == run.filename
                    and not succ.dirty):
                if succ.head:
                    succ.head -= 1
                    succ.frags[succ.head] = block
                else:
                    succ.frags.insert(0, block)
                block._run = succ
                self._pending_repush[succ] = None
                self.merges += 1
            else:
                clean = self._alloc_run(run.filename, False)
                clean.frags.append(block)
                block._run = clean
                self._link_run(clean, run, run._next, newest=False)
        else:
            idx = frags.index(block, head + 1, len(frags) - 1)
            right = self._split_run(run, idx + 1)
            frags.pop()  # `block`, now the left half's back
            clean = self._alloc_run(run.filename, False)
            clean.frags.append(block)
            block._run = clean
            self._link_run(clean, run, right, newest=False)

    def clear(self) -> List[Block]:
        """Remove all fragments and return them."""
        blocks = []
        run = self._head
        while run is not None:
            succ = run._next
            for frag in run.frags[run.head:]:
                frag._run = None
                blocks.append(frag)
            run._prev = run._next = None
            run._list = None
            run = succ
        self._head = self._tail = None
        self._length = 0
        self._run_count = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file = {}
        self._file_runs = {}
        self._dirty_heap = StateHeap(self, True)
        self._clean_heap = StateHeap(self, False)
        self._pending_repush = {}
        return blocks

    # --------------------------------------------------------------- queries
    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` held by the list (O(1))."""
        return self._per_file.get(filename, 0.0)

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` for this list."""
        return dict(self._per_file)

    def runs_of_file(self, filename: str) -> List[ExtentRun]:
        """Runs of ``filename``, in LRU order (O(k) in the answer)."""
        index = self._file_runs.get(filename)
        if index is None:
            return []
        return index.ordered(self)

    def blocks_of_file(self, filename: str) -> List[Block]:
        """Fragments of ``filename``, in LRU order (O(k) in the answer)."""
        blocks: List[Block] = []
        for run in self.runs_of_file(filename):
            blocks.extend(run.frags[run.head:])
        return blocks

    def dirty_blocks(self, exclude_file: Optional[str] = None) -> List[Block]:
        """Dirty fragments in LRU order, optionally excluding one file."""
        self._flush_pending()
        blocks: List[Block] = []
        for run in self._dirty_heap.ordered_live():
            if run.filename != exclude_file:
                blocks.extend(run.frags[run.head:])
        return blocks

    def clean_blocks(self, exclude_files: Iterable[str] = ()) -> List[Block]:
        """Clean fragments in LRU order, optionally excluding some files."""
        self._flush_pending()
        excluded = set(exclude_files)
        blocks: List[Block] = []
        for run in self._clean_heap.ordered_live():
            if run.filename not in excluded:
                blocks.extend(run.frags[run.head:])
        return blocks

    def expired_blocks(self, now: float, expiration: float) -> List[Block]:
        """Dirty fragments whose entry time is older than ``expiration``."""
        self._flush_pending()
        blocks: List[Block] = []
        for run in self._dirty_heap.ordered_live():
            for frag in run.frags[run.head:]:
                if (now - frag.entry_time) >= expiration:
                    blocks.append(frag)
        return blocks

    # --------------------------------------------------------------- cursors
    def clean_cursor(self, exclude_files: Iterable[str] = ()) -> StateCursor:
        """Consuming cursor over clean fragments in LRU order (eviction).

        Every fragment the cursor returns must be removed from the list
        (or re-inserted after a split) before requesting the next one;
        call ``close()`` when done so excluded runs return to the heap.
        """
        self._flush_pending()
        return StateCursor(self._clean_heap, frozenset(exclude_files))

    def dirty_cursor(self, exclude_file: Optional[str] = None) -> StateCursor:
        """Consuming cursor over dirty fragments in LRU order (flushing)."""
        self._flush_pending()
        excluded = frozenset() if exclude_file is None else frozenset((exclude_file,))
        return StateCursor(self._dirty_heap, excluded)

    def file_cursor(self, filename: str) -> FileCursor:
        """Consuming cursor over one file's fragments in LRU order (reads).

        Snapshot semantics: fragments linked after the cursor's creation
        (re-accessed data appended to the list, split remainders) are not
        returned, exactly as with an eager snapshot of the file's blocks,
        but the cost is proportional to the fragments actually consumed.
        """
        index = self._file_runs.get(filename)
        if index is not None:
            # Re-establish list order now (no cursor is live yet); the
            # walk itself then never needs to look at ordering again.
            index.ensure_sorted(self)
        return FileCursor(self, index, self._next_stamp)

    # ------------------------------------------------------------ validation
    def assert_consistent(self) -> None:
        """Validate accounting, run structure, indexes and heap liveness."""
        total = 0.0
        dirty = 0.0
        per_file: Dict[str, float] = {}
        count = 0
        run_count = 0
        dirty_runs = 0
        previous_key = None
        run = self._head
        while run is not None:
            if run._list is not self:
                raise CacheConsistencyError(
                    f"run {run!r} linked into {self.name!r} but owned elsewhere"
                )
            if run._next is not None and run._next._prev is not run:
                raise CacheConsistencyError(
                    f"LRU list {self.name!r} link violation at {run!r}"
                )
            frags = run.frags
            if run.head >= len(frags):
                raise CacheConsistencyError(
                    f"empty run {run!r} stored in LRU list {self.name!r}"
                )
            index = self._file_runs.get(run.filename)
            if index is None or run not in index:
                raise CacheConsistencyError(
                    f"run {run!r} missing from the per-file index of "
                    f"{self.name!r}"
                )
            for frag in frags[run.head:]:
                if frag is None or frag._run is not run:
                    raise CacheConsistencyError(
                        f"fragment ownership violation in run {run!r} of "
                        f"{self.name!r}"
                    )
                if frag.filename != run.filename or frag.dirty is not run.dirty:
                    raise CacheConsistencyError(
                        f"non-homogeneous run {run!r} in {self.name!r}: "
                        f"{frag!r}"
                    )
                if frag.size <= 0:
                    raise CacheConsistencyError(
                        f"non-positive fragment size in {self.name!r}: {frag!r}"
                    )
                key = (frag.last_access, frag._stamp)
                if previous_key is not None and key <= previous_key:
                    raise CacheConsistencyError(
                        f"LRU list {self.name!r} ordering violation at {frag!r}"
                    )
                previous_key = key
                total += frag.size
                if frag.dirty:
                    dirty += frag.size
                per_file[frag.filename] = (
                    per_file.get(frag.filename, 0.0) + frag.size
                )
                count += 1
            run_count += 1
            if run.dirty:
                dirty_runs += 1
            run = run._next
        if count != self._length:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} length drift: {self._length} vs {count}"
            )
        if run_count != self._run_count:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} run-count drift: "
                f"{self._run_count} vs {run_count}"
            )
        if sum(len(index) for index in self._file_runs.values()) != run_count:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} per-file index drift"
            )
        if (self._dirty_heap.live != dirty_runs
                or self._clean_heap.live != run_count - dirty_runs):
            raise CacheConsistencyError(
                f"LRU list {self.name!r} state-heap live-count drift"
            )
        # Every run must stay reachable by the flush/eviction paths: a
        # current-front heap entry, or a pending re-push that will create
        # one before the next consumer runs.
        reachable = set()
        for heap in (self._dirty_heap, self._clean_heap):
            for entry in heap.heap:
                if heap._is_live(entry):
                    reachable.add(id(entry[3]))
        node = self._head
        while node is not None:
            if id(node) not in reachable and node not in self._pending_repush:
                raise CacheConsistencyError(
                    f"run {node!r} unreachable from the state heaps of "
                    f"{self.name!r}"
                )
            node = node._next
        if abs(total - self._size) > DRIFT_TOLERANCE or \
                abs(dirty - self._dirty) > DRIFT_TOLERANCE:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} accounting drift: "
                f"size {self._size} vs {total}, dirty {self._dirty} vs {dirty}"
            )
        for filename, expected in per_file.items():
            if abs(self._per_file.get(filename, 0.0) - expected) > DRIFT_TOLERANCE:
                raise CacheConsistencyError(
                    f"LRU list {self.name!r} per-file drift on {filename!r}"
                )

    def __repr__(self) -> str:
        return (
            f"<LRUList {self.name!r} fragments={self._length} "
            f"runs={self._run_count} size={self._size:.0f} "
            f"dirty={self._dirty:.0f}>"
        )


class PageCacheLists:
    """The paired inactive/active LRU lists with kernel-style balancing."""

    __slots__ = ("inactive", "active", "active_to_inactive_ratio",
                 "balance_enabled")

    def __init__(self, active_to_inactive_ratio: float = 2.0,
                 balance: bool = True):
        self.inactive = LRUList("inactive")
        self.active = LRUList("active")
        self.active_to_inactive_ratio = active_to_inactive_ratio
        self.balance_enabled = balance

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total cached bytes across both lists."""
        return self.inactive._size + self.active._size

    @property
    def dirty_size(self) -> float:
        """Total dirty bytes across both lists."""
        return self.inactive._dirty + self.active._dirty

    @property
    def clean_size(self) -> float:
        """Total clean bytes across both lists."""
        return self.inactive.clean_size + self.active.clean_size

    @property
    def merge_count(self) -> int:
        """Fragments absorbed into existing runs, across both lists."""
        return self.inactive.merges + self.active.merges

    @property
    def run_count(self) -> int:
        """Extent runs held across both lists."""
        return self.inactive._run_count + self.active._run_count

    @property
    def fragment_count(self) -> int:
        """Fragments held across both lists."""
        return self.inactive._length + self.active._length

    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` cached across both lists."""
        return (
            self.inactive.cached_of_file(filename)
            + self.active.cached_of_file(filename)
        )

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` across both lists."""
        merged = self.inactive.files()
        for filename, size in self.active.files().items():
            merged[filename] = merged.get(filename, 0.0) + size
        return merged

    def all_blocks(self) -> List[Block]:
        """All fragments, inactive list first (the order data is read back)."""
        return list(self.inactive) + list(self.active)

    # ------------------------------------------------------------- mutations
    def add_to_inactive(self, block: Block) -> None:
        """Insert a newly cached block (first access) and rebalance."""
        self.inactive.append(block)
        self.balance()

    def add_to_active(self, block: Block) -> None:
        """Insert a re-accessed block into the active list and rebalance."""
        self.active.append(block)
        self.balance()

    def promote(self, block: Block, now: float) -> None:
        """Move ``block`` from the inactive to the active list (re-access)."""
        self.inactive.remove(block)
        block.touch(now)
        self.active.append(block)
        self.balance()

    def remove(self, block: Block) -> None:
        """Remove ``block`` from whichever list holds it."""
        if block in self.inactive:
            self.inactive.remove(block)
        elif block in self.active:
            self.active.remove(block)
        else:
            raise CacheConsistencyError(f"{block!r} is not cached")

    def balance(self) -> float:
        """Demote LRU active data until active <= ratio x inactive.

        Exactly the excess is demoted (the last demoted block is split if
        needed), so the structural invariant ``active <= ratio x inactive``
        holds after every cache update, matching the kernel's steady state
        where the active list is kept at most twice the inactive list.
        Returns the number of bytes demoted.
        """
        if not self.balance_enabled:
            return 0.0
        ratio = self.active_to_inactive_ratio
        excess = self.active._size - ratio * self.inactive._size
        if excess <= BYTE_EPSILON:
            return 0.0
        # Demoting x bytes must yield active - x <= ratio * (inactive + x).
        to_demote = excess / (1.0 + ratio)
        demoted = 0.0
        while demoted < to_demote - BYTE_EPSILON and len(self.active) > 0:
            block = self.active.peek_lru()
            needed = to_demote - demoted
            if block.size <= needed + BYTE_EPSILON:
                self.active.remove(block)
                self.inactive.insert_ordered(block)
                demoted += block.size
            else:
                self.active.remove(block)
                demoted_part, kept_part = block.split(needed)
                self.inactive.insert_ordered(demoted_part)
                self.active.insert_ordered(kept_part)
                demoted += needed
        return demoted

    def assert_consistent(self) -> None:
        """Validate accounting of both lists."""
        self.inactive.assert_consistent()
        self.active.assert_consistent()

    def __repr__(self) -> str:
        return (
            f"<PageCacheLists inactive={self.inactive.size:.0f}B "
            f"active={self.active.size:.0f}B dirty={self.dirty_size:.0f}B>"
        )
