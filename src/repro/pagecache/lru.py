"""Two-list LRU structure of the Linux page cache.

The kernel flags pages for eviction with a two-list strategy: newly
accessed data enters the *inactive* list; data accessed again is promoted
to the *active* list; the active list is kept at most twice the size of the
inactive list by demoting its least recently used entries.  Only clean data
on the inactive list is eligible for eviction.

:class:`LRUList` keeps :class:`~repro.pagecache.block.Block` objects ordered
by last access time (oldest first) on an **intrusive doubly-linked list**:
membership tests, removals, appends and LRU pops are O(1), and per-file /
per-state (clean vs dirty) index sets make the queries the hot I/O paths
issue — "the blocks of *this file*", "the dirty blocks", "the evictable
clean blocks" — proportional to the size of their answer instead of the
size of the cache.  The pre-PR-3 implementation stored blocks in a plain
Python list, making every one of those operations O(n) in the number of
cached blocks and the simulation quadratic in cache churn.

Ordering invariant.  The list is always sorted by ``last_access``
(non-decreasing); ties are broken by insertion order into the list, which
the implementation materialises as a per-list monotone *stamp* assigned at
every insertion.  The total order is therefore ``(last_access, stamp)``,
and the index sets can recover exact list order by sorting on that key —
this is what guarantees the rewrite is observationally identical to the
old list walk (the parity suite in ``tests/test_pagecache_parity.py``
replays golden traces recorded from the old implementation).

Extent coalescing (opt-in).  Workflow I/O shreds files into many blocks
(one per chunk, plus flush/eviction splits).  With ``coalesce=True``,
adjacent blocks of the same file merge back into a single *extent* node
when doing so is *byte-level* unobservable: both clean (dirty blocks keep
their identity so the background flusher writes them back individually),
same backing storage, and equal ``last_access`` (equal position keys —
merging cannot reorder them relative to any other block, present or
future).  The merged extent keeps the earlier block's position and stamp
and the minimum ``entry_time`` (matching how cache hits merge clean
data).  Flush splits, eviction splits and same-tick insertions re-merge
this way, bounding the fragmentation those paths create.

Coalescing defaults to **off** because it is byte-equivalent but not
*float-exact*: consuming one merged extent of ``a + b`` bytes performs
different float arithmetic than consuming ``a`` then ``b`` (addition is
not associative), and the resulting last-ulp differences in transfer
sizes can — on chaotic, heavily tied workloads such as paper-scale trace
replays — flip a discrete scheduling decision and visibly shift
makespans.  The parity suite replays golden traces with coalescing both
off (bit-identical) and on (byte-equivalent); enable it via
``PageCacheConfig(coalesce_extents=True)`` when replay stability matters
less than memory/speed on fragmentation-heavy workloads.

:class:`PageCacheLists` pairs an inactive and an active list and implements
promotion, demotion and balancing.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.errors import CacheConsistencyError
from repro.pagecache.block import Block
from repro.pagecache.tolerances import (
    BYTE_EPSILON,
    DRIFT_TOLERANCE,
    NEGATIVE_TOLERANCE,
)


def _order_key(block: Block):
    """Exact list-position key of a block within its list."""
    return (block.last_access, block._stamp)


class _OrderedIndex:
    """A set of blocks that can recover exact list order lazily.

    Backed by an insertion-ordered dict.  Appends of the newest block keep
    the dict in list order for free; only a genuinely out-of-order insert
    (a demotion or split re-insert landing before an indexed block) marks
    the index stale, and the next ordered query re-sorts once.  In steady
    state ordered queries are therefore O(k) in the answer size, with no
    per-query sorting.
    """

    __slots__ = ("entries", "stale")

    def __init__(self):
        self.entries: Dict[Block, None] = {}
        self.stale = False

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, block: object) -> bool:
        return block in self.entries

    def add_newest(self, block: Block) -> None:
        """Index a block known to follow every member in list order."""
        self.entries[block] = None

    def add(self, block: Block) -> None:
        """Index a block at an arbitrary list position."""
        entries = self.entries
        if entries and not self.stale:
            last = next(reversed(entries))
            if (block.last_access, block._stamp) < (last.last_access,
                                                    last._stamp):
                self.stale = True
        entries[block] = None

    def discard(self, block: Block) -> None:
        self.entries.pop(block, None)

    def ordered(self) -> List[Block]:
        """The indexed blocks in exact list order (snapshot)."""
        if self.stale:
            self.entries = dict.fromkeys(sorted(self.entries, key=_order_key))
            self.stale = False
        return list(self.entries)


class _StateHeap:
    """Lazy-deletion priority queue over one state (dirty or clean).

    Entries are ``(last_access, stamp, block)`` — the exact list-position
    key — pushed at insertion/state-change time.  An entry is *live* while
    the block is still in the owning list, still carries the entry's stamp
    (re-insertion assigns a fresh stamp) and still has the heap's state;
    everything else is a tombstone, skipped on pop and swept out when
    tombstones outnumber live entries.  This gives the flush/eviction
    paths the next dirty/clean block in exact LRU order in O(log n)
    without scanning the cache or re-sorting an index.

    ``live`` counts the blocks currently in this state (maintained by the
    owning list at membership changes, not by heap operations).
    """

    __slots__ = ("owner", "dirty", "heap", "live")

    def __init__(self, owner: "LRUList", dirty: bool):
        self.owner = owner
        self.dirty = dirty
        self.heap: List[Tuple[float, int, Block]] = []
        self.live = 0

    def _is_live(self, entry: Tuple[float, int, Block]) -> bool:
        block = entry[2]
        return (block._list is self.owner and block._stamp == entry[1]
                and block.dirty is self.dirty)

    def push(self, block: Block) -> None:
        heappush(self.heap, (block.last_access, block._stamp, block))
        # Sweep tombstones once they dominate; keeps the heap O(live).
        if len(self.heap) > 2 * self.live + 64:
            self.heap = [e for e in self.heap if self._is_live(e)]
            heapify(self.heap)

    def pop_live(self) -> Optional[Tuple[float, int, Block]]:
        """Pop and return the least recently used live entry, if any."""
        heap = self.heap
        while heap:
            entry = heappop(heap)
            if self._is_live(entry):
                return entry
        return None

    def ordered_live(self) -> List[Block]:
        """Live blocks in exact list order (snapshot; O(n log n))."""
        return [e[2] for e in sorted(self.heap) if self._is_live(e)]


class _StateCursor:
    """Consuming LRU-order cursor over a :class:`_StateHeap`.

    ``next()`` pops the next live block that is not excluded; excluded
    blocks are held aside and pushed back on ``close()`` (their entries
    are unchanged, so they stay valid).  The caller must *consume* every
    returned block — remove it from the list or flip its state — before
    asking for the next one; that is what keeps popped entries dead.
    """

    __slots__ = ("state", "excluded", "held")

    def __init__(self, state: _StateHeap, excluded: FrozenSet[str]):
        self.state = state
        self.excluded = excluded
        self.held: List[Tuple[float, int, Block]] = []

    def next(self) -> Optional[Block]:
        excluded = self.excluded
        while True:
            entry = self.state.pop_live()
            if entry is None:
                return None
            if entry[2].filename in excluded:
                self.held.append(entry)
                continue
            return entry[2]

    def close(self) -> None:
        heap = self.state.heap
        for entry in self.held:
            heappush(heap, entry)
        self.held = []


class LRUList:
    """An LRU-ordered intrusive list of data blocks (oldest first).

    Appending a block with a monotonically increasing access time is O(1);
    out-of-order insertions (e.g. demotions from the active list) fall
    back to a position scan from whichever end is closer in time.
    Removal, membership and LRU pops are O(1); per-file and clean/dirty
    queries return their answers in exact list order via the index sets.
    """

    __slots__ = ("name", "coalesce", "merges", "_head", "_tail", "_length",
                 "_size", "_dirty", "_per_file", "_file_blocks",
                 "_dirty_heap", "_clean_heap", "_next_stamp")

    def __init__(self, name: str = "lru", coalesce: bool = False):
        self.name = name
        #: Whether adjacent indistinguishable clean blocks merge into extents.
        self.coalesce = coalesce
        #: Number of extent merges performed (observability/benchmarks).
        self.merges = 0
        self._head: Optional[Block] = None
        self._tail: Optional[Block] = None
        self._length = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file: Dict[str, float] = {}
        #: filename -> index of its blocks in this list.
        self._file_blocks: Dict[str, _OrderedIndex] = {}
        #: Lazy-deletion heaps serving "next dirty/clean block in LRU
        #: order" to the flush and eviction paths.
        self._dirty_heap = _StateHeap(self, True)
        self._clean_heap = _StateHeap(self, False)
        self._next_stamp = 0

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total bytes held by the list."""
        return self._size

    @property
    def dirty_size(self) -> float:
        """Bytes of dirty data held by the list."""
        return self._dirty

    @property
    def clean_size(self) -> float:
        """Bytes of clean (evictable) data held by the list."""
        return max(0.0, self._size - self._dirty)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Block]:
        node = self._head
        while node is not None:
            # Capture the link before yielding so callers may remove the
            # current block while iterating.
            succ = node._next
            yield node
            node = succ

    def __contains__(self, block: object) -> bool:
        return getattr(block, "_list", None) is self

    @property
    def blocks(self) -> List[Block]:
        """The blocks in LRU order (oldest first).  O(n) snapshot."""
        return list(self)

    # ------------------------------------------------------------ accounting
    def _account_add(self, block: Block) -> None:
        self._size += block.size
        if block.dirty:
            self._dirty += block.size
        self._per_file[block.filename] = (
            self._per_file.get(block.filename, 0.0) + block.size
        )

    def _account_remove(self, block: Block) -> None:
        self._size -= block.size
        if block.dirty:
            self._dirty -= block.size
        remaining = self._per_file.get(block.filename, 0.0) - block.size
        if remaining <= BYTE_EPSILON:
            self._per_file.pop(block.filename, None)
        else:
            self._per_file[block.filename] = remaining
        if self._size < -NEGATIVE_TOLERANCE or self._dirty < -NEGATIVE_TOLERANCE:
            raise CacheConsistencyError(
                f"negative accounting in LRU list {self.name!r}: "
                f"size={self._size}, dirty={self._dirty}"
            )
        self._size = max(0.0, self._size)
        self._dirty = max(0.0, self._dirty)

    # -------------------------------------------------------------- indexing
    def _index_add(self, block: Block, *, newest: bool) -> None:
        per_file = self._file_blocks.get(block.filename)
        if per_file is None:
            per_file = self._file_blocks[block.filename] = _OrderedIndex()
        if newest:
            per_file.add_newest(block)
        else:
            per_file.add(block)
        state = self._dirty_heap if block.dirty else self._clean_heap
        state.live += 1
        state.push(block)

    def _index_remove(self, block: Block) -> None:
        per_file = self._file_blocks.get(block.filename)
        if per_file is not None:
            per_file.discard(block)
            if not per_file:
                del self._file_blocks[block.filename]
        # The heap entry dies lazily; only the live count is updated.
        if block.dirty:
            self._dirty_heap.live -= 1
        else:
            self._clean_heap.live -= 1

    # --------------------------------------------------------------- linking
    def _link_between(self, block: Block, pred: Optional[Block],
                      succ: Optional[Block]) -> None:
        if block._list is not None:
            raise CacheConsistencyError(
                f"block {block!r} is already in LRU list {block._list.name!r}"
            )
        block._prev = pred
        block._next = succ
        if pred is not None:
            pred._next = block
        else:
            self._head = block
        if succ is not None:
            succ._prev = block
        else:
            self._tail = block
        block._list = self
        block._stamp = self._next_stamp
        self._next_stamp += 1
        self._length += 1
        self._account_add(block)
        # A block linked at the tail is the newest in list order, so every
        # index can append it without going stale.
        self._index_add(block, newest=succ is None)

    def _unlink(self, block: Block, *, account: bool = True) -> None:
        if block._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        pred, succ = block._prev, block._next
        if pred is not None:
            pred._next = succ
        else:
            self._head = succ
        if succ is not None:
            succ._prev = pred
        else:
            self._tail = pred
        block._prev = block._next = None
        block._list = None
        self._length -= 1
        self._index_remove(block)
        if account:
            self._account_remove(block)

    # ------------------------------------------------------------ coalescing
    def _mergeable(self, first: Block, second: Block) -> bool:
        """True when two adjacent blocks are observationally one extent.

        Equal ``last_access`` means equal position keys: merging cannot
        change the order of any present or future block relative to the
        pair.  Clean-only keeps the background flusher's per-block
        write-back pattern (and dirty expiration) untouched; the merged
        ``entry_time`` takes the minimum, exactly as cache hits do when
        they merge clean data.
        """
        return (
            not first.dirty
            and not second.dirty
            and first.filename == second.filename
            and first.last_access == second.last_access
            and first.storage is second.storage
        )

    def _try_merge_with_prev(self, block: Block) -> Block:
        """Absorb ``block`` into its predecessor if indistinguishable.

        Returns the surviving block (the predecessor after a merge, else
        ``block``).  Byte totals and per-file accounting are unchanged by
        construction.
        """
        if not self.coalesce:
            return block
        pred = block._prev
        if pred is None or not self._mergeable(pred, block):
            return block
        self._unlink(block, account=False)
        pred.size += block.size
        if block.entry_time < pred.entry_time:
            pred.entry_time = block.entry_time
        self.merges += 1
        return pred

    # ------------------------------------------------------------- mutations
    def append(self, block: Block) -> None:
        """Add ``block`` as the most recently used entry (O(1))."""
        tail = self._tail
        if tail is not None and block.last_access < tail.last_access:
            self.insert_ordered(block)
            return
        self._link_between(block, tail, None)
        self._try_merge_with_prev(block)

    def insert_ordered(self, block: Block) -> None:
        """Insert ``block`` keeping the list ordered by last access time.

        The block lands after every block with ``last_access`` less than
        or equal to its own (ties resolve to insertion order), scanning
        from whichever end of the list is closer in access time.
        """
        key = block.last_access
        head, tail = self._head, self._tail
        if head is None or key >= tail.last_access:
            self._link_between(block, tail, None)
        elif (key - head.last_access) <= (tail.last_access - key):
            # Scan forward for the first block strictly newer than `key`.
            succ = head
            while succ is not None and succ.last_access <= key:
                succ = succ._next
            self._link_between(block, succ._prev if succ else self._tail, succ)
        else:
            # Scan backward for the last block at or before `key`.
            pred = tail
            while pred is not None and pred.last_access > key:
                pred = pred._prev
            self._link_between(block, pred, pred._next if pred else self._head)
        self._try_merge_with_prev(block)

    def remove(self, block: Block) -> None:
        """Remove ``block`` from the list (O(1))."""
        self._unlink(block)

    def pop_lru(self) -> Block:
        """Remove and return the least recently used block (O(1))."""
        block = self._head
        if block is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        self._unlink(block)
        return block

    def peek_lru(self) -> Block:
        """The least recently used block, without removing it (O(1))."""
        if self._head is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        return self._head

    def mark_clean(self, block: Block) -> None:
        """Clear the dirty flag of ``block``, fixing the dirty accounting.

        The freshly cleaned block may coalesce with an adjacent clean
        extent; callers that need the block's pre-merge size must read it
        before calling.
        """
        if block._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        if block.dirty:
            block.dirty = False
            self._dirty = max(0.0, self._dirty - block.size)
            self._dirty_heap.live -= 1
            self._clean_heap.live += 1
            self._clean_heap.push(block)
            # The freshly cleaned block may now be indistinguishable from
            # either neighbour; merging the successor into the survivor is
            # the same operation as merging the survivor into its
            # predecessor, viewed from the successor.
            survivor = self._try_merge_with_prev(block)
            succ = survivor._next
            if succ is not None:
                self._try_merge_with_prev(succ)

    def clear(self) -> List[Block]:
        """Remove all blocks and return them."""
        blocks = []
        node = self._head
        while node is not None:
            succ = node._next
            node._prev = node._next = None
            node._list = None
            blocks.append(node)
            node = succ
        self._head = self._tail = None
        self._length = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file = {}
        self._file_blocks = {}
        self._dirty_heap = _StateHeap(self, True)
        self._clean_heap = _StateHeap(self, False)
        return blocks

    # --------------------------------------------------------------- queries
    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` held by the list (O(1))."""
        return self._per_file.get(filename, 0.0)

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` for this list."""
        return dict(self._per_file)

    def blocks_of_file(self, filename: str) -> List[Block]:
        """Blocks of ``filename``, in LRU order (O(k) in the answer)."""
        per_file = self._file_blocks.get(filename)
        if per_file is None:
            return []
        return per_file.ordered()

    def dirty_blocks(self, exclude_file: Optional[str] = None) -> List[Block]:
        """Dirty blocks in LRU order, optionally excluding one file."""
        blocks = self._dirty_heap.ordered_live()
        if exclude_file is None:
            return blocks
        return [block for block in blocks if block.filename != exclude_file]

    def clean_blocks(self, exclude_files: Iterable[str] = ()) -> List[Block]:
        """Clean blocks in LRU order, optionally excluding some files."""
        excluded = set(exclude_files)
        blocks = self._clean_heap.ordered_live()
        if not excluded:
            return blocks
        return [block for block in blocks if block.filename not in excluded]

    def expired_blocks(self, now: float, expiration: float) -> List[Block]:
        """Dirty blocks whose entry time is older than ``expiration`` seconds."""
        return [
            block
            for block in self._dirty_heap.ordered_live()
            if block.is_expired(now, expiration)
        ]

    # --------------------------------------------------------------- cursors
    def clean_cursor(self, exclude_files: Iterable[str] = ()) -> _StateCursor:
        """Consuming cursor over clean blocks in LRU order (eviction).

        Every block the cursor returns must be removed from the list (or
        re-inserted after a split) before requesting the next one; call
        ``close()`` when done so excluded blocks return to the heap.
        """
        return _StateCursor(self._clean_heap, frozenset(exclude_files))

    def dirty_cursor(self, exclude_file: Optional[str] = None) -> _StateCursor:
        """Consuming cursor over dirty blocks in LRU order (flushing)."""
        excluded = frozenset() if exclude_file is None else frozenset((exclude_file,))
        return _StateCursor(self._dirty_heap, excluded)

    def assert_consistent(self) -> None:
        """Validate accounting, link structure and index sets."""
        total = 0.0
        dirty = 0.0
        per_file: Dict[str, float] = {}
        count = 0
        previous: Optional[Block] = None
        for block in self:
            if block._list is not self:
                raise CacheConsistencyError(
                    f"block {block!r} linked into {self.name!r} but owned "
                    f"elsewhere"
                )
            if previous is not None and (
                block.last_access < previous.last_access
                or block._prev is not previous
            ):
                raise CacheConsistencyError(
                    f"LRU list {self.name!r} ordering/link violation at "
                    f"{block!r}"
                )
            if block not in self._file_blocks.get(block.filename, ()):
                raise CacheConsistencyError(
                    f"block {block!r} missing from the per-file index of "
                    f"{self.name!r}"
                )
            total += block.size
            if block.dirty:
                dirty += block.size
            per_file[block.filename] = per_file.get(block.filename, 0.0) + block.size
            count += 1
            previous = block
        if count != self._length:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} length drift: {self._length} vs {count}"
            )
        if sum(len(index) for index in self._file_blocks.values()) != count:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} per-file index drift"
            )
        dirty_count = sum(1 for block in self if block.dirty)
        if (self._dirty_heap.live != dirty_count
                or self._clean_heap.live != count - dirty_count):
            raise CacheConsistencyError(
                f"LRU list {self.name!r} state-heap live-count drift"
            )
        if abs(total - self._size) > DRIFT_TOLERANCE or \
                abs(dirty - self._dirty) > DRIFT_TOLERANCE:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} accounting drift: "
                f"size {self._size} vs {total}, dirty {self._dirty} vs {dirty}"
            )
        for filename, expected in per_file.items():
            if abs(self._per_file.get(filename, 0.0) - expected) > DRIFT_TOLERANCE:
                raise CacheConsistencyError(
                    f"LRU list {self.name!r} per-file drift on {filename!r}"
                )

    def __repr__(self) -> str:
        return (
            f"<LRUList {self.name!r} blocks={self._length} "
            f"size={self._size:.0f} dirty={self._dirty:.0f}>"
        )


class PageCacheLists:
    """The paired inactive/active LRU lists with kernel-style balancing."""

    __slots__ = ("inactive", "active", "active_to_inactive_ratio",
                 "balance_enabled")

    def __init__(self, active_to_inactive_ratio: float = 2.0,
                 balance: bool = True, coalesce: bool = False):
        self.inactive = LRUList("inactive", coalesce=coalesce)
        self.active = LRUList("active", coalesce=coalesce)
        self.active_to_inactive_ratio = active_to_inactive_ratio
        self.balance_enabled = balance

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total cached bytes across both lists."""
        return self.inactive.size + self.active.size

    @property
    def dirty_size(self) -> float:
        """Total dirty bytes across both lists."""
        return self.inactive.dirty_size + self.active.dirty_size

    @property
    def clean_size(self) -> float:
        """Total clean bytes across both lists."""
        return self.inactive.clean_size + self.active.clean_size

    @property
    def merge_count(self) -> int:
        """Extent merges performed across both lists."""
        return self.inactive.merges + self.active.merges

    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` cached across both lists."""
        return (
            self.inactive.cached_of_file(filename)
            + self.active.cached_of_file(filename)
        )

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` across both lists."""
        merged = self.inactive.files()
        for filename, size in self.active.files().items():
            merged[filename] = merged.get(filename, 0.0) + size
        return merged

    def all_blocks(self) -> List[Block]:
        """All blocks, inactive list first (the order data is read back)."""
        return list(self.inactive) + list(self.active)

    # ------------------------------------------------------------- mutations
    def add_to_inactive(self, block: Block) -> None:
        """Insert a newly cached block (first access) and rebalance."""
        self.inactive.append(block)
        self.balance()

    def add_to_active(self, block: Block) -> None:
        """Insert a re-accessed block into the active list and rebalance."""
        self.active.append(block)
        self.balance()

    def promote(self, block: Block, now: float) -> None:
        """Move ``block`` from the inactive to the active list (re-access)."""
        self.inactive.remove(block)
        block.touch(now)
        self.active.append(block)
        self.balance()

    def remove(self, block: Block) -> None:
        """Remove ``block`` from whichever list holds it."""
        if block in self.inactive:
            self.inactive.remove(block)
        elif block in self.active:
            self.active.remove(block)
        else:
            raise CacheConsistencyError(f"{block!r} is not cached")

    def balance(self) -> float:
        """Demote LRU active data until active <= ratio x inactive.

        Exactly the excess is demoted (the last demoted block is split if
        needed), so the structural invariant ``active <= ratio x inactive``
        holds after every cache update, matching the kernel's steady state
        where the active list is kept at most twice the inactive list.
        Returns the number of bytes demoted.
        """
        if not self.balance_enabled:
            return 0.0
        ratio = self.active_to_inactive_ratio
        excess = self.active.size - ratio * self.inactive.size
        if excess <= BYTE_EPSILON:
            return 0.0
        # Demoting x bytes must yield active - x <= ratio * (inactive + x).
        to_demote = excess / (1.0 + ratio)
        demoted = 0.0
        while demoted < to_demote - BYTE_EPSILON and len(self.active) > 0:
            block = self.active.peek_lru()
            needed = to_demote - demoted
            if block.size <= needed + BYTE_EPSILON:
                self.active.remove(block)
                self.inactive.insert_ordered(block)
                demoted += block.size
            else:
                self.active.remove(block)
                demoted_part, kept_part = block.split(needed)
                self.inactive.insert_ordered(demoted_part)
                self.active.insert_ordered(kept_part)
                demoted += needed
        return demoted

    def assert_consistent(self) -> None:
        """Validate accounting of both lists."""
        self.inactive.assert_consistent()
        self.active.assert_consistent()

    def __repr__(self) -> str:
        return (
            f"<PageCacheLists inactive={self.inactive.size:.0f}B "
            f"active={self.active.size:.0f}B dirty={self.dirty_size:.0f}B>"
        )
