"""Two-list LRU structure of the Linux page cache, stored as extent runs.

The kernel flags pages for eviction with a two-list strategy: newly
accessed data enters the *inactive* list; data accessed again is promoted
to the *active* list; the active list is kept at most twice the size of the
inactive list by demoting its least recently used entries.  Only clean data
on the inactive list is eligible for eviction.

:class:`LRUList` keeps :class:`~repro.pagecache.block.Block` fragments
totally ordered by ``(last_access, stamp)`` — the per-list monotone
*stamp* breaks last-access ties in insertion order, exactly as the
pre-extent one-block-per-list-node implementation did (this is the order
the parity suite in ``tests/test_pagecache_parity.py`` pins).  Storage is
by :class:`~repro.pagecache.extents.ExtentRun`: one sorted fragment row
per (file, state), so the structural cost of the cache scales with the
number of live streams, not with ``bytes / chunk_size``:

* appending a fragment (the sequential read/write hot path) is a list
  append into its file's run — no list-node, index or heap traffic, no
  matter how many concurrent streams interleave their chunks;
* the flush/eviction cursors carve fragments off run fronts, switching
  runs through the state heaps only when streams genuinely interleave in
  LRU order (where the old implementation paid a heap operation on every
  block regardless);
* the read path walks only the touched file's two runs through a merging
  cursor (:meth:`LRUList.file_cursor`), so a chunked re-read of a cached
  file costs the fragments it consumes instead of a per-chunk snapshot of
  every cached block of the file.

Losslessness.  Runs coalesce by *moving fragments between sorted rows*,
never by summing their sizes.  Fragment sizes — and therefore every byte
amount any operation observes or any accounting total accumulates — are
bit-identical to the one-block-per-node representation.  PR 3's opt-in
``coalesce_extents`` merged blocks by adding their sizes, which
re-associated float additions and could flip discrete scheduling
decisions at paper scale; that mode is gone, and the run representation
is default-on because there is no arithmetic to lose.

:class:`PageCacheLists` pairs an inactive and an active list and implements
promotion, demotion and balancing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import CacheConsistencyError
from repro.pagecache.block import Block
from repro.pagecache.extents import (
    _COMPACT_THRESHOLD,
    ExtentRun,
    FileCursor,
    RunIndex,
    StateCursor,
    StateHeap,
)
from repro.pagecache.tolerances import (
    BYTE_EPSILON,
    DRIFT_TOLERANCE,
    NEGATIVE_TOLERANCE,
)


def _order_key(block: Block):
    """Exact LRU-position key of a fragment within its list."""
    return (block.last_access, block._stamp)


class LRUList:
    """An LRU-ordered collection of data-block fragments in extent runs.

    Appending a fragment with a monotonically increasing access time is
    O(1); an out-of-order insertion (e.g. a demotion from the active
    list) binary-searches its file's run.  Removal of a run-front
    fragment is O(1) amortized; LRU pops and the flush/eviction paths
    interleave the runs through lazy-deletion state heaps; per-file and
    clean/dirty queries return their answers in exact LRU order.
    """

    __slots__ = ("name", "merges", "_length", "_size", "_dirty", "_per_file",
                 "_file_runs", "_dirty_heap", "_clean_heap", "_next_stamp",
                 "_run_count", "_pending_repush", "_run_pool")

    def __init__(self, name: str = "lru"):
        self.name = name
        #: Number of fragments that joined an existing run instead of
        #: founding one (observability/benchmarks).
        self.merges = 0
        self._length = 0
        self._run_count = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file: Dict[str, float] = {}
        #: filename -> its (clean, dirty) runs in this list.
        self._file_runs: Dict[str, RunIndex] = {}
        #: Lazy-deletion heaps serving "next dirty/clean fragment in LRU
        #: order" to the flush and eviction paths.
        self._dirty_heap = StateHeap(self, True)
        self._clean_heap = StateHeap(self, False)
        #: Runs whose front key changed since their last heap push; they
        #: are re-pushed in bulk before the next heap consumer runs, so
        #: front carving costs no per-fragment heap traffic.  A dict is
        #: used as an insertion-ordered set to keep runs deterministic.
        self._pending_repush: Dict[ExtentRun, None] = {}
        #: Dead run objects kept for reuse; stale references are fenced
        #: by the per-run ``_epoch`` bumped at death.  Pools are per list
        #: so fragment stamps stay unique per heap.
        self._run_pool: List[ExtentRun] = []
        self._next_stamp = 0

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total bytes held by the list."""
        return self._size

    @property
    def dirty_size(self) -> float:
        """Bytes of dirty data held by the list."""
        return self._dirty

    @property
    def clean_size(self) -> float:
        """Bytes of clean (evictable) data held by the list."""
        return max(0.0, self._size - self._dirty)

    @property
    def run_count(self) -> int:
        """Number of extent runs currently held."""
        return self._run_count

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __contains__(self, block: object) -> bool:
        run = getattr(block, "_run", None)
        return run is not None and run._list is self

    @property
    def blocks(self) -> List[Block]:
        """The fragments in LRU order (oldest first).  O(n log n) snapshot."""
        frags: List[Block] = []
        for index in self._file_runs.values():
            for run in (index.clean, index.dirty):
                if run is not None:
                    frags.extend(run.frags[run.head:])
        frags.sort(key=_order_key)
        return frags

    def runs(self) -> List[ExtentRun]:
        """The live extent runs, ordered by their front key (snapshot)."""
        result = []
        for index in self._file_runs.values():
            for run in (index.clean, index.dirty):
                if run is not None:
                    result.append(run)
        result.sort(key=lambda run: _order_key(run.frags[run.head]))
        return result

    # ----------------------------------------------------------- run plumbing
    def _new_run(self, index: RunIndex, filename: str, dirty: bool) -> ExtentRun:
        """A fresh (or recycled) run registered for ``filename``."""
        pool = self._run_pool
        if pool:
            run = pool.pop()
            run.filename = filename
            run.dirty = dirty
        else:
            run = ExtentRun(filename, dirty)
        run._list = self
        if dirty:
            index.dirty = run
            self._dirty_heap.live += 1
        else:
            index.clean = run
            self._clean_heap.live += 1
        self._run_count += 1
        self._pending_repush[run] = None
        return run

    def _kill_run(self, run: ExtentRun) -> None:
        """Retire an exhausted run; its heap entries die lazily."""
        run._list = None
        self._run_count -= 1
        filename = run.filename
        index = self._file_runs.get(filename)
        if index is not None:
            if run.dirty:
                if index.dirty is run:
                    index.dirty = None
            elif index.clean is run:
                index.clean = None
            if index.clean is None and index.dirty is None:
                del self._file_runs[filename]
        heap = self._dirty_heap if run.dirty else self._clean_heap
        heap.live -= 1
        self._pending_repush.pop(run, None)
        # The epoch bump turns every outstanding reference (cursors) into
        # a tombstone, so the object can be reused immediately.
        run._epoch += 1
        if run.frags:
            run.frags.clear()
        run.head = 0
        pool = self._run_pool
        if len(pool) < 512:
            pool.append(run)

    def _flush_pending(self) -> None:
        """Re-push runs whose front key changed since their last push."""
        pending = self._pending_repush
        if not pending:
            return
        dirty_heap, clean_heap = self._dirty_heap, self._clean_heap
        for run in pending:
            if run._list is self and run.head < len(run.frags):
                (dirty_heap if run.dirty else clean_heap).push(run)
        pending.clear()

    # ------------------------------------------------------------- insertion
    def _join_run(self, run: ExtentRun, block: Block, last_access: float,
                  full_key: bool) -> None:
        """Insert ``block`` at its sorted position in ``run``'s row.

        With ``full_key=False`` the block carries a fresher stamp than
        every fragment in the list, so ties on ``last_access`` resolve to
        "after" and the search compares access times only (the historical
        ``insert_ordered`` contract).  With ``full_key=True`` the block
        keeps an old stamp (a state change moving it between runs) and
        the search compares the complete ``(last_access, stamp)`` key.
        """
        frags = run.frags
        back = frags[-1]
        if (last_access > back.last_access
                or (last_access == back.last_access
                    and (not full_key or block._stamp > back._stamp))):
            frags.append(block)
        else:
            lo, hi = run.head, len(frags)
            if full_key:
                key = (last_access, block._stamp)
                while lo < hi:
                    mid = (lo + hi) // 2
                    entry = frags[mid]
                    if (entry.last_access, entry._stamp) <= key:
                        lo = mid + 1
                    else:
                        hi = mid
            else:
                while lo < hi:
                    mid = (lo + hi) // 2
                    if frags[mid].last_access <= last_access:
                        lo = mid + 1
                    else:
                        hi = mid
            if lo == run.head:
                # New front: reuse a consumed slot when one is available.
                if run.head:
                    run.head -= 1
                    frags[run.head] = block
                else:
                    frags.insert(0, block)
                self._pending_repush[run] = None
            else:
                frags.insert(lo, block)
        block._run = run

    def append(self, block: Block) -> None:
        """Add ``block`` at its ordered position (O(1) at its run's tail).

        The block lands after every fragment with ``last_access`` less
        than or equal to its own (ties resolve to insertion order).  This
        is the hottest structural operation of the simulator: continuing
        a stream is a single list append into the file's run.
        """
        if block._run is not None:
            raise CacheConsistencyError(
                f"block {block!r} is already in an LRU list"
            )
        block._stamp = self._next_stamp
        self._next_stamp += 1
        dirty = block.dirty
        filename = block.filename
        index = self._file_runs.get(filename)
        if index is None:
            index = self._file_runs[filename] = RunIndex()
        run = index.dirty if dirty else index.clean
        if run is None:
            run = self._new_run(index, filename, dirty)
            run.frags.append(block)
            block._run = run
        else:
            self._join_run(run, block, block.last_access, False)
            self.merges += 1
        self._length += 1
        size = block.size
        self._size += size
        if dirty:
            self._dirty += size
        per_file = self._per_file
        per_file[filename] = per_file.get(filename, 0.0) + size

    #: ``insert_ordered`` is the historical name of the ordered insert;
    #: :meth:`append` implements both the tail fast path and the ordered
    #: fallback.
    insert_ordered = append

    # --------------------------------------------------------------- removal
    def _carve_out(self, block: Block) -> None:
        """Structurally remove ``block`` from its run (no accounting).

        Front removals advance the run's head slot (O(1) amortized, with
        compaction and a deferred heap re-push); back and middle
        removals edit the row in place; an emptied run is retired.  The
        caller validates ownership and settles the byte accounting.
        """
        run = block._run
        frags = run.frags
        head = run.head
        if frags[head] is block:
            frags[head] = None
            head += 1
            run.head = head
            if head >= len(frags):
                self._kill_run(run)
            else:
                if head >= _COMPACT_THRESHOLD and head * 2 >= len(frags):
                    run.compact()
                self._pending_repush[run] = None
        elif frags[-1] is block:
            frags.pop()
        else:
            idx = frags.index(block, head + 1, len(frags) - 1)
            del frags[idx]
        block._run = None

    def _detach(self, block: Block) -> None:
        run = block._run
        if run is None or run._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        self._carve_out(block)
        self._length -= 1
        size = block.size
        self._size -= size
        if block.dirty:
            self._dirty -= size
        filename = block.filename
        per_file = self._per_file
        remaining = per_file.get(filename, 0.0) - size
        if remaining <= BYTE_EPSILON:
            per_file.pop(filename, None)
        else:
            per_file[filename] = remaining
        if (self._size < -NEGATIVE_TOLERANCE
                or self._dirty < -NEGATIVE_TOLERANCE):
            raise CacheConsistencyError(
                f"negative accounting in LRU list {self.name!r}: "
                f"size={self._size}, dirty={self._dirty}"
            )
        self._size = max(0.0, self._size)
        self._dirty = max(0.0, self._dirty)

    def remove(self, block: Block) -> None:
        """Remove ``block`` from the list (O(1) at a run boundary)."""
        self._detach(block)

    def _front_entry(self):
        """The live global-minimum heap entry, or ``None`` when empty."""
        self._flush_pending()
        dirty = self._dirty_heap.skim()
        clean = self._clean_heap.skim()
        if dirty is None:
            return clean
        if clean is None:
            return dirty
        if (dirty[0], dirty[1]) < (clean[0], clean[1]):
            return dirty
        return clean

    def pop_lru(self) -> Block:
        """Remove and return the least recently used fragment."""
        entry = self._front_entry()
        if entry is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        run = entry[3]
        block = run.frags[run.head]
        self._detach(block)
        return block

    def peek_lru(self) -> Block:
        """The least recently used fragment, without removing it."""
        entry = self._front_entry()
        if entry is None:
            raise CacheConsistencyError(f"LRU list {self.name!r} is empty")
        run = entry[3]
        return run.frags[run.head]

    # ---------------------------------------------------------- state change
    def mark_clean(self, block: Block) -> None:
        """Clear the dirty flag of ``block``, fixing the dirty accounting.

        The fragment keeps its exact position key in the LRU order —
        only its state changes.  Structurally it moves from its file's
        dirty run into the file's clean run (founding it if needed) at
        its sorted position; a flusher cleaning dirty data front to back
        therefore grows one clean extent instead of shredding the cache
        into per-block nodes.
        """
        run = block._run
        if run is None or run._list is not self:
            raise CacheConsistencyError(
                f"block {block!r} is not in LRU list {self.name!r}"
            )
        if not block.dirty:
            return
        block.dirty = False
        self._dirty = max(0.0, self._dirty - block.size)
        # Carve out of the dirty run (no byte accounting: the bytes stay
        # cached) and rejoin the clean run at the same position key (the
        # stamp is old, so the search uses the complete key).
        self._carve_out(block)
        filename = block.filename
        index = self._file_runs.get(filename)
        if index is None:
            index = self._file_runs[filename] = RunIndex()
        clean = index.clean
        if clean is None:
            clean = self._new_run(index, filename, False)
            clean.frags.append(block)
            block._run = clean
        else:
            # A state change, not a coalescing event: `merges` unchanged.
            self._join_run(clean, block, block.last_access, True)

    def clear(self) -> List[Block]:
        """Remove all fragments and return them (LRU order)."""
        blocks = self.blocks
        for block in blocks:
            block._run = None
        self._length = 0
        self._run_count = 0
        self._size = 0.0
        self._dirty = 0.0
        self._per_file = {}
        self._file_runs = {}
        self._dirty_heap = StateHeap(self, True)
        self._clean_heap = StateHeap(self, False)
        self._pending_repush = {}
        self._run_pool = []
        return blocks

    # --------------------------------------------------------------- queries
    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` held by the list (O(1))."""
        return self._per_file.get(filename, 0.0)

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` for this list."""
        return dict(self._per_file)

    def runs_of_file(self, filename: str) -> List[ExtentRun]:
        """The file's live runs (clean first), unordered pair."""
        index = self._file_runs.get(filename)
        if index is None:
            return []
        return [run for run in (index.clean, index.dirty) if run is not None]

    def blocks_of_file(self, filename: str) -> List[Block]:
        """Fragments of ``filename``, in LRU order (O(k) in the answer)."""
        index = self._file_runs.get(filename)
        if index is None:
            return []
        clean = index.clean.fragments() if index.clean is not None else []
        dirty = index.dirty.fragments() if index.dirty is not None else []
        if not dirty:
            return clean
        if not clean:
            return dirty
        merged = clean + dirty
        merged.sort(key=_order_key)
        return merged

    def _state_blocks(self, dirty: bool,
                      excluded: Iterable[str] = ()) -> List[Block]:
        blocks: List[Block] = []
        for filename, index in self._file_runs.items():
            if filename in excluded:
                continue
            run = index.dirty if dirty else index.clean
            if run is not None:
                blocks.extend(run.frags[run.head:])
        blocks.sort(key=_order_key)
        return blocks

    def dirty_blocks(self, exclude_file: Optional[str] = None) -> List[Block]:
        """Dirty fragments in LRU order, optionally excluding one file."""
        excluded = () if exclude_file is None else (exclude_file,)
        return self._state_blocks(True, excluded)

    def clean_blocks(self, exclude_files: Iterable[str] = ()) -> List[Block]:
        """Clean fragments in LRU order, optionally excluding some files."""
        return self._state_blocks(False, set(exclude_files))

    def expired_blocks(self, now: float, expiration: float) -> List[Block]:
        """Dirty fragments older than ``expiration``, in LRU order."""
        blocks: List[Block] = []
        for index in self._file_runs.values():
            run = index.dirty
            if run is not None:
                for frag in run.frags[run.head:]:
                    if (now - frag.entry_time) >= expiration:
                        blocks.append(frag)
        blocks.sort(key=_order_key)
        return blocks

    # --------------------------------------------------------------- cursors
    def clean_cursor(self, exclude_files: Iterable[str] = ()) -> StateCursor:
        """Consuming cursor over clean fragments in LRU order (eviction).

        Every fragment the cursor returns must be removed from the list
        (or re-inserted after a split) before requesting the next one;
        call ``close()`` when done so excluded runs return to the heap.
        """
        self._flush_pending()
        return StateCursor(self._clean_heap, frozenset(exclude_files))

    def dirty_cursor(self, exclude_file: Optional[str] = None) -> StateCursor:
        """Consuming cursor over dirty fragments in LRU order (flushing)."""
        self._flush_pending()
        excluded = frozenset() if exclude_file is None else frozenset((exclude_file,))
        return StateCursor(self._dirty_heap, excluded)

    def file_cursor(self, filename: str) -> FileCursor:
        """Consuming cursor over one file's fragments in LRU order (reads).

        Snapshot semantics: fragments linked after the cursor's creation
        (re-accessed data, split remainders) are not returned, exactly as
        with an eager snapshot of the file's blocks, but the cost is
        proportional to the fragments actually consumed.
        """
        return FileCursor(self, self._file_runs.get(filename),
                          self._next_stamp)

    # ------------------------------------------------------------ validation
    def assert_consistent(self) -> None:
        """Validate accounting, run structure, indexes and heap liveness."""
        total = 0.0
        dirty = 0.0
        per_file: Dict[str, float] = {}
        count = 0
        run_count = 0
        dirty_runs = 0
        keys = set()
        for filename, index in self._file_runs.items():
            if index.clean is None and index.dirty is None:
                raise CacheConsistencyError(
                    f"empty file index for {filename!r} in {self.name!r}"
                )
            for run in (index.clean, index.dirty):
                if run is None:
                    continue
                if run._list is not self:
                    raise CacheConsistencyError(
                        f"run {run!r} indexed by {self.name!r} but owned "
                        f"elsewhere"
                    )
                if run.filename != filename:
                    raise CacheConsistencyError(
                        f"run {run!r} filed under {filename!r} in "
                        f"{self.name!r}"
                    )
                frags = run.frags
                if run.head >= len(frags):
                    raise CacheConsistencyError(
                        f"empty run {run!r} stored in LRU list {self.name!r}"
                    )
                previous_key = None
                for frag in frags[run.head:]:
                    if frag is None or frag._run is not run:
                        raise CacheConsistencyError(
                            f"fragment ownership violation in run {run!r} "
                            f"of {self.name!r}"
                        )
                    if (frag.filename != filename
                            or frag.dirty is not run.dirty):
                        raise CacheConsistencyError(
                            f"non-homogeneous run {run!r} in {self.name!r}: "
                            f"{frag!r}"
                        )
                    if frag.size <= 0:
                        raise CacheConsistencyError(
                            f"non-positive fragment size in {self.name!r}: "
                            f"{frag!r}"
                        )
                    key = (frag.last_access, frag._stamp)
                    if previous_key is not None and key <= previous_key:
                        raise CacheConsistencyError(
                            f"run {run!r} of {self.name!r} out of order at "
                            f"{frag!r}"
                        )
                    if key in keys:
                        raise CacheConsistencyError(
                            f"duplicate position key {key} in {self.name!r}"
                        )
                    keys.add(key)
                    previous_key = key
                    total += frag.size
                    if frag.dirty:
                        dirty += frag.size
                    per_file[filename] = per_file.get(filename, 0.0) + frag.size
                    count += 1
                run_count += 1
                if run.dirty:
                    dirty_runs += 1
        if count != self._length:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} length drift: {self._length} vs {count}"
            )
        if run_count != self._run_count:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} run-count drift: "
                f"{self._run_count} vs {run_count}"
            )
        if (self._dirty_heap.live != dirty_runs
                or self._clean_heap.live != run_count - dirty_runs):
            raise CacheConsistencyError(
                f"LRU list {self.name!r} state-heap live-count drift"
            )
        # Every run must stay reachable by the flush/eviction paths: a
        # current-front heap entry, or a pending re-push that will create
        # one before the next consumer runs.
        reachable = set()
        for heap in (self._dirty_heap, self._clean_heap):
            for entry in heap.heap:
                if heap._is_live(entry):
                    reachable.add(id(entry[3]))
        for index in self._file_runs.values():
            for run in (index.clean, index.dirty):
                if run is None:
                    continue
                if id(run) not in reachable and run not in self._pending_repush:
                    raise CacheConsistencyError(
                        f"run {run!r} unreachable from the state heaps of "
                        f"{self.name!r}"
                    )
        if abs(total - self._size) > DRIFT_TOLERANCE or \
                abs(dirty - self._dirty) > DRIFT_TOLERANCE:
            raise CacheConsistencyError(
                f"LRU list {self.name!r} accounting drift: "
                f"size {self._size} vs {total}, dirty {self._dirty} vs {dirty}"
            )
        for filename, expected in per_file.items():
            if abs(self._per_file.get(filename, 0.0) - expected) > DRIFT_TOLERANCE:
                raise CacheConsistencyError(
                    f"LRU list {self.name!r} per-file drift on {filename!r}"
                )

    def __repr__(self) -> str:
        return (
            f"<LRUList {self.name!r} fragments={self._length} "
            f"runs={self._run_count} size={self._size:.0f} "
            f"dirty={self._dirty:.0f}>"
        )


class PageCacheLists:
    """The paired inactive/active LRU lists with kernel-style balancing."""

    __slots__ = ("inactive", "active", "active_to_inactive_ratio",
                 "balance_enabled")

    def __init__(self, active_to_inactive_ratio: float = 2.0,
                 balance: bool = True):
        self.inactive = LRUList("inactive")
        self.active = LRUList("active")
        self.active_to_inactive_ratio = active_to_inactive_ratio
        self.balance_enabled = balance

    # ----------------------------------------------------------------- sizes
    @property
    def size(self) -> float:
        """Total cached bytes across both lists."""
        return self.inactive._size + self.active._size

    @property
    def dirty_size(self) -> float:
        """Total dirty bytes across both lists."""
        return self.inactive._dirty + self.active._dirty

    @property
    def clean_size(self) -> float:
        """Total clean bytes across both lists."""
        return self.inactive.clean_size + self.active.clean_size

    @property
    def merge_count(self) -> int:
        """Fragments absorbed into existing runs, across both lists."""
        return self.inactive.merges + self.active.merges

    @property
    def run_count(self) -> int:
        """Extent runs held across both lists."""
        return self.inactive._run_count + self.active._run_count

    @property
    def fragment_count(self) -> int:
        """Fragments held across both lists."""
        return self.inactive._length + self.active._length

    def cached_of_file(self, filename: str) -> float:
        """Bytes of ``filename`` cached across both lists."""
        return (
            self.inactive.cached_of_file(filename)
            + self.active.cached_of_file(filename)
        )

    def files(self) -> Dict[str, float]:
        """Mapping ``filename -> cached bytes`` across both lists."""
        merged = self.inactive.files()
        for filename, size in self.active.files().items():
            merged[filename] = merged.get(filename, 0.0) + size
        return merged

    def all_blocks(self) -> List[Block]:
        """All fragments, inactive list first (the order data is read back)."""
        return self.inactive.blocks + self.active.blocks

    # ------------------------------------------------------------- mutations
    def add_to_inactive(self, block: Block) -> None:
        """Insert a newly cached block (first access) and rebalance."""
        self.inactive.append(block)
        self.balance()

    def add_to_active(self, block: Block) -> None:
        """Insert a re-accessed block into the active list and rebalance."""
        self.active.append(block)
        self.balance()

    def promote(self, block: Block, now: float) -> None:
        """Move ``block`` from the inactive to the active list (re-access)."""
        self.inactive.remove(block)
        block.touch(now)
        self.active.append(block)
        self.balance()

    def remove(self, block: Block) -> None:
        """Remove ``block`` from whichever list holds it."""
        if block in self.inactive:
            self.inactive.remove(block)
        elif block in self.active:
            self.active.remove(block)
        else:
            raise CacheConsistencyError(f"{block!r} is not cached")

    def balance(self) -> float:
        """Demote LRU active data until active <= ratio x inactive.

        Exactly the excess is demoted (the last demoted block is split if
        needed), so the structural invariant ``active <= ratio x inactive``
        holds after every cache update, matching the kernel's steady state
        where the active list is kept at most twice the inactive list.
        Returns the number of bytes demoted.
        """
        if not self.balance_enabled:
            return 0.0
        ratio = self.active_to_inactive_ratio
        excess = self.active._size - ratio * self.inactive._size
        if excess <= BYTE_EPSILON:
            return 0.0
        # Demoting x bytes must yield active - x <= ratio * (inactive + x).
        to_demote = excess / (1.0 + ratio)
        demoted = 0.0
        while demoted < to_demote - BYTE_EPSILON and len(self.active) > 0:
            block = self.active.peek_lru()
            needed = to_demote - demoted
            if block.size <= needed + BYTE_EPSILON:
                self.active.remove(block)
                self.inactive.insert_ordered(block)
                demoted += block.size
            else:
                self.active.remove(block)
                demoted_part, kept_part = block.split(needed)
                self.inactive.insert_ordered(demoted_part)
                self.active.insert_ordered(kept_part)
                demoted += needed
        return demoted

    def assert_consistent(self) -> None:
        """Validate accounting of both lists."""
        self.inactive.assert_consistent()
        self.active.assert_consistent()

    def __repr__(self) -> str:
        return (
            f"<PageCacheLists inactive={self.inactive.size:.0f}B "
            f"active={self.active.size:.0f}B dirty={self.dirty_size:.0f}B>"
        )
