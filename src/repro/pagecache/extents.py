"""Extent runs: the storage representation of the page-cache LRU lists.

An :class:`ExtentRun` is the row of *fragments*
(:class:`~repro.pagecache.block.Block` objects) one file keeps in one
state (dirty or clean) in one LRU list, sorted by LRU position.  The run
— not the fragment — is the unit enqueued in the flush/eviction state
heaps and referenced by the per-file index, so the structural cost of
the cache scales with the number of live (file, state) streams, not with
``bytes / chunk_size``.

Ordering is *by key, not by links*.  Every fragment carries its total
LRU position ``(last_access, stamp)`` — the stamp is a per-list monotone
counter that breaks last-access ties in insertion order, exactly as the
historical one-block-per-list-node implementation did.  Since that key
defines the complete order, the global linked list of the old
implementation is redundant: each run keeps its own fragments sorted,
and consumers that need the global order (eviction, flushing, the
balance demotion loop) interleave runs through the state heaps by
comparing front keys.  Runs of one file and state never split — a
fragment whose key falls inside the row is inserted at its sorted
position, and consumption carves the front — so a cache holds at most
``files x 2`` runs per list no matter how many concurrent streams
interleave their chunks.

Losslessness.  Fragments keep their exact, individually recorded byte
sizes and metadata; joining a run moves a fragment, it never sums sizes.
Every byte quantity an operation observes (accounting totals,
flush/evict/read consumption, background write-back sizes) is produced
by the same float operations in the same order as the historical
representation, so simulation results are bit-identical — the property
that PR 3's opt-in extent merging (which summed merged block sizes,
re-associating float additions) could not give, and the reason it had
to default off while this representation is default-on (and the only
mode).

Consumption model.  All hot-path consumption carves fragments off the
*front* of runs: ``frags[head]`` with a moving ``head`` cursor and
periodic compaction, so consuming a fragment is O(1) amortized.  Run
objects are pooled by their owning list (see ``LRUList._run_pool``);
stale references held by heaps are fenced by fragment stamps, and
everything else by the per-run ``_epoch``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import FrozenSet, List, Optional, Tuple

from repro.pagecache.block import Block

#: Compact a run's fragment row once this many consumed slots accumulate
#: at its front (and they outnumber the live fragments).
_COMPACT_THRESHOLD = 32


class ExtentRun:
    """One file's fragments in one state, sorted by LRU position.

    The fragment row ``frags[head:]`` holds the live fragments, oldest
    first; slots before ``head`` are consumed (cleared to ``None``) and
    reclaimed in bulk.  ``_list`` is the owning
    :class:`~repro.pagecache.lru.LRUList` (``None`` while dead) and
    ``_epoch`` the incarnation counter fencing pooled reuse.
    """

    __slots__ = ("filename", "dirty", "frags", "head", "_list", "_epoch")

    def __init__(self, filename: str, dirty: bool):
        self.filename = filename
        self.dirty = dirty
        self.frags: List[Optional[Block]] = []
        self.head = 0
        self._list = None
        self._epoch = 0

    # ------------------------------------------------------------------ views
    def front(self) -> Block:
        """The least recently used live fragment."""
        return self.frags[self.head]

    def back(self) -> Block:
        """The most recently used live fragment."""
        return self.frags[-1]

    def fragment_count(self) -> int:
        """Number of live fragments in the run."""
        return len(self.frags) - self.head

    def fragments(self) -> List[Block]:
        """Snapshot of the live fragments, oldest first."""
        return self.frags[self.head:]

    def length(self) -> float:
        """Run length in bytes: the left-to-right sum of fragment sizes.

        With fragments recorded at exact sizes this is the byte range the
        run covers; unit tests assert the list totals are exactly the sum
        of run lengths on integer-sized workloads.
        """
        total = 0.0
        for index in range(self.head, len(self.frags)):
            total += self.frags[index].size
        return total

    def compact(self) -> None:
        """Reclaim the consumed slots at the front of the fragment row."""
        if self.head:
            del self.frags[:self.head]
            self.head = 0

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return (
            f"<ExtentRun {self.filename!r} {state} "
            f"frags={self.fragment_count()}>"
        )


class RunIndex:
    """The (at most) two runs — clean and dirty — of one file."""

    __slots__ = ("clean", "dirty")

    def __init__(self):
        self.clean: Optional[ExtentRun] = None
        self.dirty: Optional[ExtentRun] = None

    def get(self, dirty: bool) -> Optional[ExtentRun]:
        return self.dirty if dirty else self.clean

    def set(self, dirty: bool, run: Optional[ExtentRun]) -> None:
        if dirty:
            self.dirty = run
        else:
            self.clean = run

    def __bool__(self) -> bool:
        return self.clean is not None or self.dirty is not None


class StateHeap:
    """Lazy-deletion priority queue over the runs of one state.

    Entries are ``(last_access, stamp, seq, run)`` — the run's *front*
    key at push time plus a monotone sequence number so duplicate pushes
    never fall through to comparing runs.  An entry is live while the run
    is still in the owning list, still in the heap's state and still
    fronted by the fragment the entry was pushed for (fragment stamps are
    never reused within a list, so no epoch is needed); everything else
    is a tombstone, skipped on pop and swept out when tombstones
    outnumber live runs.  Front advances do not touch the heap eagerly:
    the owning list collects runs whose front moved in a pending set and
    re-pushes them in bulk the next time a consumer needs the heap.

    ``live`` counts the runs currently in this state (maintained by the
    owning list at run creation/death/state flips).
    """

    __slots__ = ("owner", "dirty", "heap", "live", "_seq")

    def __init__(self, owner, dirty: bool):
        self.owner = owner
        self.dirty = dirty
        self.heap: List[Tuple[float, int, int, ExtentRun]] = []
        self.live = 0
        self._seq = 0

    def _is_live(self, entry: Tuple[float, int, int, ExtentRun]) -> bool:
        run = entry[3]
        if run._list is not self.owner or run.dirty is not self.dirty:
            return False
        frags = run.frags
        if run.head >= len(frags):
            return False
        front = frags[run.head]
        return front._stamp == entry[1] and front.last_access == entry[0]

    def push(self, run: ExtentRun) -> None:
        front = run.frags[run.head]
        seq = self._seq
        self._seq = seq + 1
        heappush(self.heap, (front.last_access, front._stamp, seq, run))
        # Sweep tombstones once they dominate; keeps the heap O(live).
        if len(self.heap) > 2 * self.live + 64:
            self.heap = [e for e in self.heap if self._is_live(e)]
            heapify(self.heap)

    def skim(self) -> Optional[Tuple[float, int, int, ExtentRun]]:
        """The live minimum entry, leaving it in the heap (dead entries
        at the top are discarded along the way)."""
        heap = self.heap
        while heap:
            entry = heap[0]
            if self._is_live(entry):
                return entry
            heappop(heap)
        return None

    def pop_live(self) -> Optional[ExtentRun]:
        """Pop and return the least recently used live run, if any."""
        heap = self.heap
        while heap:
            entry = heappop(heap)
            if self._is_live(entry):
                return entry[3]
        return None

class StateCursor:
    """Consuming cursor over one state's fragments in exact LRU order.

    ``next()`` returns the globally least recently used live fragment of
    the state whose file is not excluded; the caller must *consume* the
    fragment — remove it, flip its state or split it out — before asking
    for the next one.  The cursor keeps carving the same run while its
    front remains the state's minimum, so a sequential stream costs no
    per-fragment heap traffic; when another run's front becomes older
    (interleaved streams), the cursor re-enqueues the current run and
    switches — the same per-fragment heap cost the one-block-per-node
    implementation paid on every block.  Excluded runs are held aside
    and returned to the heap on ``close()``.
    """

    __slots__ = ("heap", "excluded", "held", "run", "run_epoch", "limit")

    def __init__(self, heap: StateHeap, excluded: FrozenSet[str]):
        self.heap = heap
        self.excluded = excluded
        self.held: List[ExtentRun] = []
        self.run: Optional[ExtentRun] = None
        self.run_epoch = 0
        #: Key of the next-oldest enqueued run at acquisition time: the
        #: cursor may stream its current run without consulting the heap
        #: while the front key stays below it.  Valid for the cursor's
        #: lifetime because nothing pushes a smaller key mid-consumption:
        #: front advances go to the owner's pending set (flushed only at
        #: cursor creation), and the split/re-insert paths end the
        #: caller's loop by contract.
        self.limit: Optional[Tuple[float, int]] = None

    def next(self) -> Optional[Block]:
        heap = self.heap
        run = self.run
        if run is not None:
            if (run._list is heap.owner and run.dirty is heap.dirty
                    and run._epoch == self.run_epoch
                    and run.head < len(run.frags)):
                front = run.frags[run.head]
                limit = self.limit
                if limit is None or (front.last_access, front._stamp) < limit:
                    return front
                # Another run's front is older: re-enqueue and switch.
                heap.push(run)
            self.run = None
        excluded = self.excluded
        while True:
            run = heap.pop_live()
            if run is None:
                return None
            if run.filename in excluded:
                self.held.append(run)
                continue
            self.run = run
            self.run_epoch = run._epoch
            top = heap.skim()
            self.limit = None if top is None else (top[0], top[1])
            return run.frags[run.head]

    def close(self) -> None:
        heap = self.heap
        pending = heap.owner._pending_repush
        for run in self.held:
            if run._list is heap.owner and run.head < len(run.frags):
                pending[run] = None
        self.held = []
        run = self.run
        if run is not None:
            if (run._list is heap.owner and run._epoch == self.run_epoch
                    and run.head < len(run.frags)):
                pending[run] = None
            self.run = None


class FileCursor:
    """Consuming cursor over one file's fragments in exact LRU order.

    Replays the semantics of iterating a snapshot of the file's blocks
    (the pre-extent read path) at O(fragments touched) cost: the file
    holds at most one clean and one dirty run per list, and the cursor
    merges the two rows by front key.  A stamp bound captured from the
    owning list excludes fragments linked after creation — a fragment
    appended, promoted or re-inserted *while* the cursor is draining is
    invisible to it, exactly as it was invisible to the old eager
    snapshot.

    The caller must consume each returned fragment before requesting the
    next one, and must stop iterating after re-inserting a split
    remainder (the read path's "partial last block" case always does).
    """

    __slots__ = ("owner", "clean", "clean_epoch", "dirty", "dirty_epoch",
                 "stamp_bound")

    def __init__(self, owner, index: Optional[RunIndex], stamp_bound: int):
        self.owner = owner
        self.clean = index.clean if index is not None else None
        self.clean_epoch = self.clean._epoch if self.clean is not None else 0
        self.dirty = index.dirty if index is not None else None
        self.dirty_epoch = self.dirty._epoch if self.dirty is not None else 0
        self.stamp_bound = stamp_bound

    def _front(self, run: Optional[ExtentRun], epoch: int) -> Optional[Block]:
        if run is None:
            return None
        if run._list is not self.owner or run._epoch != epoch:
            return None
        frags = run.frags
        if run.head >= len(frags):
            return None
        front = frags[run.head]
        if front._stamp >= self.stamp_bound:
            return None
        return front

    def next(self) -> Optional[Block]:
        clean_front = self._front(self.clean, self.clean_epoch)
        if clean_front is None:
            self.clean = None
        dirty_front = self._front(self.dirty, self.dirty_epoch)
        if dirty_front is None:
            self.dirty = None
        if clean_front is None:
            return dirty_front
        if dirty_front is None:
            return clean_front
        if (clean_front.last_access, clean_front._stamp) <= (
                dirty_front.last_access, dirty_front._stamp):
            return clean_front
        return dirty_front
