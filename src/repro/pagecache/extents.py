"""Extent runs: the storage representation of the page-cache LRU lists.

An :class:`ExtentRun` is a maximal-by-construction row of *fragments*
(:class:`~repro.pagecache.block.Block` objects) that are

* consecutive in the global LRU order of their list,
* of the same file, and
* in the same state (all dirty or all clean).

The run — not the fragment — is the node of the intrusive LRU list, the
unit indexed by the per-file index and the unit enqueued in the
flush/eviction state heaps.  A sequential multi-gigabyte stream therefore
costs one list node, one index entry and one heap entry instead of
``size / chunk_size`` of each, which is what makes fine-chunk workloads
(Exp 5 ablations, Fig. 8 scaling) cheap.

Losslessness.  Fragments keep their exact, individually recorded byte
sizes and metadata; *coalescing two runs concatenates their fragment
rows and performs no arithmetic at all*.  Every byte quantity an
operation observes (accounting totals, flush/evict/read consumption,
background write-back sizes) is produced by the same float operations in
the same order as the historical one-``Block``-per-list-node
representation, so simulation results are bit-identical — this is the
property that PR 3's opt-in extent merging (which *summed* the sizes of
merged blocks, re-associating float additions) could not give, and the
reason it had to default off while this representation is default-on
(and the only mode).

Consumption model.  All hot-path consumption (eviction, flushing, cache
reads) carves fragments off the *front* of runs: ``frags[head]`` with a
moving ``head`` cursor and periodic compaction, so consuming a fragment
is O(1) amortized.  Interior surgery (a background flush cleaning an
expired fragment in the middle of a dirty run, an out-of-order insert
landing inside a run's time span) splits the run at a true state
boundary; adjacent runs of the same file and state re-join eagerly where
that is O(1) (absorbing a single fragment), keeping fragmentation
bounded without ever moving large fragment rows around.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.pagecache.block import Block

#: Compact a run's fragment row once this many consumed slots accumulate
#: at its front (and they outnumber the live fragments).
_COMPACT_THRESHOLD = 32


class ExtentRun:
    """A contiguous row of same-file, same-state fragments in LRU order.

    The fragment row ``frags[head:]`` holds the live fragments, oldest
    first; slots before ``head`` are consumed (cleared to ``None``) and
    reclaimed in bulk.  ``_prev``/``_next``/``_list`` are the intrusive
    LRU-list links, owned by :class:`~repro.pagecache.lru.LRUList`.
    """

    __slots__ = ("filename", "dirty", "frags", "head", "_prev", "_next",
                 "_list", "_epoch")

    def __init__(self, filename: str, dirty: bool):
        self.filename = filename
        self.dirty = dirty
        self.frags: List[Optional[Block]] = []
        self.head = 0
        self._prev: Optional["ExtentRun"] = None
        self._next: Optional["ExtentRun"] = None
        self._list = None
        # Incarnation counter: dead runs are pooled and reused by their
        # owning list (they are the cache's highest-churn allocation);
        # every structure that may hold a stale reference — index
        # entries, cursors — records the epoch it saw and treats a
        # mismatch as a tombstone.  Heap entries need no epoch: they are
        # keyed by fragment stamps, which are never reused within a list.
        self._epoch = 0

    # ------------------------------------------------------------------ views
    def front(self) -> Block:
        """The least recently used live fragment."""
        return self.frags[self.head]

    def back(self) -> Block:
        """The most recently used live fragment."""
        return self.frags[-1]

    def fragment_count(self) -> int:
        """Number of live fragments in the run."""
        return len(self.frags) - self.head

    def fragments(self) -> List[Block]:
        """Snapshot of the live fragments, oldest first."""
        return self.frags[self.head:]

    def length(self) -> float:
        """Run length in bytes: the left-to-right sum of fragment sizes.

        With fragments recorded at exact sizes this is the byte range the
        run covers; unit tests assert the list totals are exactly the sum
        of run lengths on integer-sized workloads.
        """
        total = 0.0
        for index in range(self.head, len(self.frags)):
            total += self.frags[index].size
        return total

    def compact(self) -> None:
        """Reclaim the consumed slots at the front of the fragment row."""
        if self.head:
            del self.frags[:self.head]
            self.head = 0

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return (
            f"<ExtentRun {self.filename!r} {state} "
            f"frags={self.fragment_count()}>"
        )


class RunIndex:
    """The runs of one file, recoverable in exact list order.

    Backed by an append-only list with lazy deletion: dead runs (no
    longer in any list, or re-homed to another file index — they never
    are) stay as tombstones, skipped on iteration and purged when they
    outnumber the live runs.  Runs created at the list tail append in
    order for free; a run created at an interior position (an
    out-of-order insert or a run split) marks the index stale, and the
    next ordered access purges and re-sorts once by the runs' *current*
    front keys.  Front keys advance as fronts are consumed, but
    consumption never reorders disjoint runs, so a sorted index stays
    sorted until the next interior insertion.

    The point of the list representation is the read path: a
    :class:`FileCursor` walks the index *in place* by position, so a
    chunked read of a many-run file touches only the entries it consumes
    instead of materializing a fresh snapshot per chunk.  To keep live
    cursors coherent, tombstones are physically reclaimed only from the
    dead *prefix* of the list (``dropped`` counts reclaimed entries, so a
    cursor's virtual position survives the shift); a full purge-and-sort
    happens only in :meth:`ensure_sorted`, which bumps ``version`` — a
    cursor observing a version change fails loudly instead of walking a
    reordered list.
    """

    __slots__ = ("runs", "epochs", "live", "stale", "dropped", "version")

    def __init__(self):
        self.runs: List[ExtentRun] = []
        #: ``epochs[i]`` is ``runs[i]._epoch`` at indexing time; a
        #: mismatch means the run died and its object was reused.
        self.epochs: List[int] = []
        self.live = 0
        self.stale = False
        #: Dead-prefix entries physically removed so far (cursor offset).
        self.dropped = 0
        #: Bumped on any restructuring that invalidates positions.
        self.version = 0

    def __len__(self) -> int:
        return self.live

    def __contains__(self, run: object) -> bool:
        for index, entry in enumerate(self.runs):
            if entry is run and self.epochs[index] == entry._epoch:
                return True
        return False

    def _entry_live(self, index: int, owner) -> bool:
        run = self.runs[index]
        return run._list is owner and self.epochs[index] == run._epoch

    def add_newest(self, run: ExtentRun) -> None:
        """Index a run known to follow every live member in list order."""
        self.runs.append(run)
        self.epochs.append(run._epoch)
        self.live += 1

    def add(self, run: ExtentRun, owner) -> None:
        """Index a run at an arbitrary list position."""
        runs = self.runs
        if not self.stale:
            front = run.front()
            key = (front.last_access, front._stamp)
            for index in range(len(runs) - 1, -1, -1):
                if self._entry_live(index, owner):
                    last_front = runs[index].front()
                    if key < (last_front.last_access, last_front._stamp):
                        self.stale = True
                    break
        runs.append(run)
        self.epochs.append(run._epoch)
        self.live += 1

    def discard(self, run: ExtentRun, owner) -> None:
        """Drop a run; it must already be unlinked from the owner list.

        The entry stays as a tombstone; once tombstones dominate, the
        dead prefix is reclaimed (runs die front-first in LRU workloads,
        so this keeps the index O(live) without disturbing cursors).
        """
        self.live -= 1
        runs = self.runs
        if len(runs) > 2 * self.live + 8:
            dead = 0
            n = len(runs)
            while dead < n and not self._entry_live(dead, owner):
                dead += 1
            if dead:
                del runs[:dead]
                del self.epochs[:dead]
                self.dropped += dead

    def ensure_sorted(self, owner) -> None:
        """Re-establish list order after interior insertions.

        Must not run under a live :class:`FileCursor` (cursors detect
        the restructuring via ``version`` and raise).
        """
        if self.stale:
            live = [
                self.runs[index]
                for index in range(len(self.runs))
                if self._entry_live(index, owner)
            ]
            live.sort(
                key=lambda run: (run.front().last_access,
                                 run.front()._stamp),
            )
            self.runs = live
            self.epochs = [run._epoch for run in live]
            self.stale = False
            self.version += 1

    def ordered(self, owner) -> List[ExtentRun]:
        """The live indexed runs in exact list order (snapshot)."""
        self.ensure_sorted(owner)
        return [
            self.runs[index]
            for index in range(len(self.runs))
            if self._entry_live(index, owner)
        ]


class StateHeap:
    """Lazy-deletion priority queue over the runs of one state.

    Entries are ``(last_access, stamp, run)`` — the run's *front* key at
    push time.  An entry is live while the run is still in the owning
    list, still in the heap's state and still fronted by the fragment the
    entry was pushed for; everything else is a tombstone, skipped on pop
    and swept out when tombstones outnumber live runs.  Front advances do
    not touch the heap eagerly: the owning list collects runs whose front
    moved in a pending set and re-pushes them in bulk the next time a
    consumer (cursor or ordered query) needs the heap — so a stream of
    appends or a long front-carving read costs zero heap traffic.

    ``live`` counts the runs currently in this state (maintained by the
    owning list at run creation/death/state flips).
    """

    __slots__ = ("owner", "dirty", "heap", "live", "_seq")

    def __init__(self, owner, dirty: bool):
        self.owner = owner
        self.dirty = dirty
        # Entries carry a monotone sequence number so duplicate pushes of
        # the same front key (a run re-enqueued unconsumed) never fall
        # through to comparing runs; it has no semantic meaning — the pop
        # order is fully determined by (last_access, stamp), which is
        # unique per fragment.
        self.heap: List[Tuple[float, int, int, ExtentRun]] = []
        self.live = 0
        self._seq = 0

    def _is_live(self, entry: Tuple[float, int, int, ExtentRun]) -> bool:
        run = entry[3]
        if run._list is not self.owner or run.dirty is not self.dirty:
            return False
        frags = run.frags
        if run.head >= len(frags):
            return False
        front = frags[run.head]
        return front._stamp == entry[1] and front.last_access == entry[0]

    def push(self, run: ExtentRun) -> None:
        front = run.front()
        seq = self._seq
        self._seq = seq + 1
        heappush(self.heap, (front.last_access, front._stamp, seq, run))
        # Sweep tombstones once they dominate; keeps the heap O(live).
        if len(self.heap) > 2 * self.live + 64:
            self.heap = [e for e in self.heap if self._is_live(e)]
            heapify(self.heap)

    def pop_live(self) -> Optional[ExtentRun]:
        """Pop and return the least recently used live run, if any.

        A run enqueued more than once (a re-push after an unconsumed
        cursor hold) can surface as consecutive live-looking duplicates;
        besides tombstones, the pop therefore also drops entries whose
        run already left the heap via an earlier duplicate — callers
        always consume or hold what they are handed, which advances the
        front and kills the remaining duplicates.
        """
        heap = self.heap
        while heap:
            entry = heappop(heap)
            if self._is_live(entry):
                return entry[3]
        return None

    def ordered_live(self) -> List[ExtentRun]:
        """Live runs in exact list order (snapshot; O(n log n))."""
        runs = []
        seen = set()
        for entry in sorted(self.heap):
            if self._is_live(entry):
                run = entry[3]
                if id(run) not in seen:
                    seen.add(id(run))
                    runs.append(run)
        return runs


class StateCursor:
    """Consuming LRU-order cursor over one state's runs.

    ``next()`` returns the front fragment of the least recently used
    live run whose file is not excluded; the caller must *consume* the
    fragment — remove it, flip its state or split it out — before asking
    for the next one.  Consumption advances the run's front (or kills
    the run), and the cursor keeps carving the same run until it is
    exhausted, leaves the state or the caller stops: fragments stream
    out of a long run with no per-fragment heap traffic.  Excluded runs
    are held aside and returned to the heap on ``close()``.
    """

    __slots__ = ("heap", "excluded", "held", "run", "run_epoch")

    def __init__(self, heap: StateHeap, excluded: FrozenSet[str]):
        self.heap = heap
        self.excluded = excluded
        self.held: List[ExtentRun] = []
        self.run: Optional[ExtentRun] = None
        self.run_epoch = 0

    def next(self) -> Optional[Block]:
        heap = self.heap
        run = self.run
        if run is not None:
            if (run._list is heap.owner and run.dirty is heap.dirty
                    and run._epoch == self.run_epoch
                    and run.head < len(run.frags)):
                return run.frags[run.head]
            self.run = None
        excluded = self.excluded
        while True:
            run = heap.pop_live()
            if run is None:
                return None
            if run.filename in excluded:
                self.held.append(run)
                continue
            self.run = run
            self.run_epoch = run._epoch
            return run.frags[run.head]

    def close(self) -> None:
        heap = self.heap
        pending = heap.owner._pending_repush
        for run in self.held:
            if run._list is heap.owner and run.head < len(run.frags):
                pending[run] = None
        self.held = []
        run = self.run
        if run is not None:
            if run._list is heap.owner and run.head < len(run.frags):
                pending[run] = None
            self.run = None


class FileCursor:
    """Consuming cursor over one file's fragments in exact list order.

    Replays the semantics of iterating a snapshot of the file's blocks
    (the pre-extent read path) at O(fragments touched) cost — no
    per-chunk snapshot is materialized:

    * the cursor walks the file's :class:`RunIndex` in place by virtual
      position, skipping tombstones; prefix reclamation shifts positions
      by a counted offset, and any other restructuring trips the index
      ``version`` guard (a :class:`CursorInvalidated` is raised rather
      than walking a reordered list);
    * a stamp bound captured from the owning list excludes fragments
      linked after creation — a fragment appended, promoted or
      re-inserted *while* the cursor is draining is invisible to it,
      exactly as it was invisible to the old eager snapshot.

    The caller must consume each returned fragment before requesting the
    next one, and must stop iterating after re-inserting a split
    remainder (the read path's "partial last block" case always does).
    """

    __slots__ = ("owner", "index", "vpos", "version", "run", "run_epoch",
                 "stamp_bound")

    def __init__(self, owner, index: Optional[RunIndex], stamp_bound: int):
        self.owner = owner
        self.index = index
        self.vpos = index.dropped if index is not None else 0
        self.version = index.version if index is not None else 0
        self.run: Optional[ExtentRun] = None
        self.run_epoch = 0
        self.stamp_bound = stamp_bound

    def next(self) -> Optional[Block]:
        owner = self.owner
        bound = self.stamp_bound
        run = self.run
        while True:
            if (run is not None and run._list is owner
                    and run._epoch == self.run_epoch):
                frags = run.frags
                if run.head < len(frags):
                    front = frags[run.head]
                    if front._stamp < bound:
                        return front
            index = self.index
            if index is None:
                return None
            if index.version != self.version:
                raise CursorInvalidated(
                    "file index restructured under a live cursor"
                )
            pos = self.vpos - index.dropped
            if pos < 0:
                # Reclamation only ever removes dead entries, so every
                # skipped position was a tombstone anyway.
                pos = 0
            runs = index.runs
            epochs = index.epochs
            n = len(runs)
            while pos < n:
                run = runs[pos]
                if run._list is owner and epochs[pos] == run._epoch:
                    break
                pos += 1
            if pos >= n:
                self.run = None
                self.index = None
                return None
            self.run = run
            self.run_epoch = run._epoch
            self.vpos = pos + 1 + index.dropped


class CursorInvalidated(RuntimeError):
    """A :class:`FileCursor` observed its index being restructured."""
