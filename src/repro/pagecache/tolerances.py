"""Byte-accounting tolerances of the page-cache model, in one place.

Every quantity the page cache tracks is a float64 number of *bytes*.
Simulated hosts cache gigabytes to terabytes (1e9-1e12 bytes), and one
float64 ulp at that magnitude is 1e-7 to 1e-4 bytes; each add/remove or
split cycle can accumulate a few ulps of drift.  Three tolerances cover
the three ways that drift can surface — use these constants instead of
module-local ``_EPSILON`` copies.

The extent-run rebuild made the *structure* exact: fragments keep their
individually recorded sizes through coalescing, state changes and pooled
reuse (no arithmetic is performed on a merge), so on integer-sized
workloads the totals are exactly the sum of the run lengths and the unit
tests assert ``==`` with no slack (``tests/test_pagecache_extents.py``).
What remains float-inexact is the *accumulation order* of the
incrementally maintained totals versus a from-scratch recomputation —
bit-for-bit the same stream of additions and subtractions as the
historical one-block-per-node code, which is what keeps replays
golden-identical.

``BYTE_EPSILON`` (1e-6 bytes)
    Comparison slack for *single-operation* arithmetic: loop guards like
    "is there anything left to evict/flush/read" and the per-file
    accounting cleanup.  One operation contributes at most a few ulps, so
    a millionth of a byte cleanly separates "residual float noise" from
    "real bytes remaining" while being far below any real block size.
    This constant participates in control flow, so changing it changes
    simulation results; it is part of the parity contract.

``NEGATIVE_TOLERANCE`` (1e-3 bytes)
    The negative-accounting guard of the LRU lists, checked on the
    consumption hot path at paper scale (terabyte magnitudes, where one
    ulp is already 1e-4 bytes).  Instrumented runs of the heaviest
    committed workloads (the fine-chunk Exp 5 point and the Exp 7 golden
    replay) observe no negative excursion at all, but the guard must
    tolerate the worst case the arithmetic allows at magnitudes the test
    scale cannot probe; a thousandth of a byte still catches any real
    accounting bug (the smallest real inconsistency is a whole block).

``DRIFT_TOLERANCE`` (1e-4 bytes)
    Allowed divergence between the incrementally maintained totals and a
    from-scratch recomputation in ``assert_consistent``.  Tightened from
    1e-3 with the extent rebuild: the worst drift observed across the
    randomized parity workloads (4 GB scale, thousands of operations) is
    3e-6 bytes, thirty times below this bound, and the old value's extra
    slack only reflected per-block index bookkeeping that no longer
    exists.
"""

from __future__ import annotations

#: Comparison slack for single-operation byte arithmetic.
BYTE_EPSILON = 1e-6

#: Tolerance of the negative-accounting guard (whole-simulation drift).
NEGATIVE_TOLERANCE = 1e-3

#: Allowed divergence between incremental and recomputed totals.
DRIFT_TOLERANCE = 1e-4
