"""Byte-accounting tolerances of the page-cache model, in one place.

Every quantity the page cache tracks is a float64 number of *bytes*.
Simulated hosts cache gigabytes to terabytes (1e9-1e12 bytes), and one
float64 ulp at that magnitude is 1e-7 to 1e-4 bytes; each add/remove or
split/merge cycle can accumulate a few ulps of drift.  Three tolerances,
in increasing order of magnitude, cover the three ways that drift can
surface — use these constants instead of module-local ``_EPSILON`` copies
(historically ``lru.py``, ``memory_manager.py`` and ``io_controller.py``
each declared their own, and a stale ``1e-6`` survived in ``lru.py`` long
after the negative-accounting guard moved to ``1e-3``):

``BYTE_EPSILON`` (1e-6 bytes)
    Comparison slack for *single-operation* arithmetic: loop guards like
    "is there anything left to evict/flush/read" and the per-file
    accounting cleanup.  One operation contributes at most a few ulps, so
    a millionth of a byte cleanly separates "residual float noise" from
    "real bytes remaining" while being far below any real block size.

``NEGATIVE_TOLERANCE`` (1e-3 bytes)
    The negative-accounting guard of the LRU lists.  Totals accumulate
    drift over the *whole simulation* (millions of operations), so the
    guard that turns "slightly negative total" into a hard
    :class:`~repro.errors.CacheConsistencyError` must tolerate the
    accumulated worst case.  A thousandth of a byte is ~10 ulps of
    headroom at terabyte magnitudes yet still catches any real accounting
    bug (the smallest real inconsistency is a whole block).

``DRIFT_TOLERANCE`` (1e-3 bytes)
    The same bound applied symmetrically by ``assert_consistent`` when
    comparing incrementally maintained totals against a from-scratch
    recomputation.
"""

from __future__ import annotations

#: Comparison slack for single-operation byte arithmetic.
BYTE_EPSILON = 1e-6

#: Tolerance of the negative-accounting guard (whole-simulation drift).
NEGATIVE_TOLERANCE = 1e-3

#: Allowed divergence between incremental and recomputed totals.
DRIFT_TOLERANCE = 1e-3
