"""Pluggable eviction policies over extent runs.

The extent-native page cache (:mod:`repro.pagecache.lru`) stores fragment
rows and owns all byte accounting; an :class:`EvictionPolicy` owns *victim
selection*: given the cache's LRU lists, in what order should clean data be
reclaimed?  The split keeps the representation invariants (sorted runs,
state heaps, lossless coalescing) in one place while policies stay small
state machines over *filenames*:

* :class:`LRUPolicy` — the default.  Victim selection delegates verbatim to
  :meth:`LRUList.clean_cursor`, so the simulated byte streams are
  bit-identical to the pre-policy cache (pinned by the parity goldens in
  ``tests/test_pagecache_parity.py``).  No hooks fire on the hot paths.
* :class:`ARCPolicy` — Adaptive Replacement Cache (Megiddo & Modha, FAST
  '03) at file granularity: recency (T1) and frequency (T2) lists plus B1/B2
  ghost histories steering an adaptive target.
* :class:`TwoQPolicy` — 2Q (Johnson & Shasha, VLDB '94): a FIFO probation
  queue (A1in), a ghost queue (A1out) and a main LRU (Am); only files
  re-referenced after falling out of probation are promoted.
* :class:`ClockProPolicy` — a simplified file-granular CLOCK-Pro (Jiang,
  Chen & Zhang, USENIX '05): hot/cold residents with reference bits and
  test periods, non-resident cold files remembered as ghosts.
* :class:`PriorityWeightedPolicy` — scores files by recency + frequency +
  owner-job priority (+ optionally waiting time); preempted jobs' files are
  demoted so low-priority work loses residency first.  This is the policy
  that ties the scheduler to the cache: the scheduler feeds it dispatch and
  preemption events through :meth:`MemoryManager.notify_job_dispatch` /
  :meth:`MemoryManager.notify_job_preempted`.

Policies are file-granular: the cache's total LRU order *within* a file is
always preserved (a file's oldest clean bytes go first), the policy decides
the order *across* files.  Hooks are only invoked when a policy opts in via
``wants_events`` so the default LRU path pays nothing beyond one method
call per eviction pass.

Every policy also exposes ``predicted_survival(filename, horizon)`` — the
probability-like fraction of the file's cached bytes expected to still be
resident ``horizon`` seconds from now under the current eviction pressure.
This is the curve ``CacheLocalityPlacement`` needs to price future
residency at reservation time instead of issuing synchronous per-dispatch
residency queries (ROADMAP item 3).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pagecache.block import Block
from repro.pagecache.lru import LRUList
from repro.pagecache.stats import EvictionPolicyStats


class ScoredCursor:
    """Consuming cursor over clean fragments in a policy's victim order.

    Satisfies the same contract as :class:`~repro.pagecache.extents.
    StateCursor`: the caller must remove (or split-and-reinsert) each
    returned fragment before requesting the next one.  The cursor snapshots
    the *file* order at creation and re-fetches each file's live clean run
    on every step, so consuming a fragment (which may advance the run's
    head, kill the run, or re-pool the run object) can never leave the
    cursor holding a stale reference.  Within a file, fragments come out in
    exact LRU order (the run row is sorted); across files, the policy's
    ranking applies.
    """

    __slots__ = ("_lru", "_order", "_index")

    def __init__(self, lru: LRUList, ordered_files: List[str]):
        self._lru = lru
        self._order = ordered_files
        self._index = 0

    def next(self) -> Optional[Block]:
        lru = self._lru
        file_runs = lru._file_runs
        order = self._order
        while self._index < len(order):
            index = file_runs.get(order[self._index])
            run = index.clean if index is not None else None
            if run is None or run._list is not lru or run.head >= len(run.frags):
                self._index += 1
                continue
            return run.frags[run.head]
        return None

    def close(self) -> None:
        """Nothing to restore: the state heaps self-heal via pending re-push."""


class EvictionPolicy:
    """Base class of eviction policies.

    Subclasses implement :meth:`victim_order` (the cross-file ranking) and
    optionally the ``on_*`` hooks.  One policy instance serves exactly one
    :class:`~repro.pagecache.memory_manager.MemoryManager` — pass a name or
    a factory (not an instance) when configuring multi-host simulations.
    """

    #: Registry name (also reported in published metrics labels).
    name = "abstract"
    #: When False the manager skips every insert/access/evict hook call —
    #: the guard that keeps the default LRU path at zero policy overhead.
    wants_events = False
    #: When True the scheduler forwards job dispatch/preemption events.
    wants_job_events = False

    def __init__(self) -> None:
        self.stats = EvictionPolicyStats()
        self._manager = None

    # ------------------------------------------------------------ lifecycle
    def bind(self, manager) -> None:
        """Attach the policy to its memory manager (exactly one)."""
        if self._manager is not None and self._manager is not manager:
            raise ConfigurationError(
                f"eviction policy {self.name!r} is already bound to "
                f"{self._manager.name!r}; policy instances are per-manager "
                "— configure a policy name or factory for multi-host runs"
            )
        self._manager = manager

    # ------------------------------------------------------ victim selection
    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        """Filenames with clean data in ``lru``, most evictable first."""
        raise NotImplementedError

    def _evictable_files(self, lru: LRUList,
                         excluded: FrozenSet[str]) -> List[str]:
        """Files owning a live clean run in ``lru``, minus exclusions."""
        return [
            filename
            for filename, index in lru._file_runs.items()
            if index.clean is not None and filename not in excluded
        ]

    def clean_cursor(self, lru: LRUList, excluded: Iterable[str] = ()):
        """Consuming cursor over ``lru``'s clean fragments in victim order."""
        frozen = frozenset(excluded)
        return ScoredCursor(lru, self.victim_order(lru, frozen))

    def peek_victim(self, lru: LRUList,
                    excluded: Iterable[str] = ()) -> Optional[Block]:
        """The next fragment this policy would evict, without evicting it."""
        cursor = self.clean_cursor(lru, excluded)
        try:
            return cursor.next()
        finally:
            cursor.close()

    def pop_victim(self, lru: LRUList,
                   excluded: Iterable[str] = ()) -> Optional[Block]:
        """Remove and return the next victim fragment (``None`` when empty)."""
        cursor = self.clean_cursor(lru, excluded)
        try:
            block = cursor.next()
        finally:
            cursor.close()
        if block is not None:
            lru.remove(block)
        return block

    # ------------------------------------------------------------ cache hooks
    # Only called when ``wants_events`` is True.  ``amount`` is in bytes,
    # ``now`` is the simulation clock.
    def on_insert(self, filename: str, amount: float, now: float) -> None:
        """New data of ``filename`` entered the cache (read miss or write)."""

    def on_access(self, filename: str, amount: float, now: float) -> None:
        """Cached data of ``filename`` was served (cache hit)."""

    def on_evicted(self, filename: str, amount: float,
                   resident_after: float) -> None:
        """``amount`` bytes of ``filename`` were evicted; ``resident_after``
        is what remains cached (0 means the file fully left the cache)."""

    def on_invalidate(self, filename: str) -> None:
        """Every cached byte of ``filename`` was dropped (file deletion)."""

    # -------------------------------------------------------------- job hooks
    # Only called when ``wants_job_events`` is True; forwarded by the
    # scheduler through the memory manager.
    def on_job_dispatch(self, filenames: Iterable[str], priority: int,
                        wait: float = 0.0) -> None:
        """A job owning ``filenames`` started on this policy's host."""

    def on_job_preempted(self, filenames: Iterable[str]) -> None:
        """A job owning ``filenames`` was preempted (lost its cores)."""

    # ------------------------------------------------------------ forecasting
    def predicted_survival(self, filename: str, horizon: float) -> float:
        """Fraction of the file's cached bytes expected to survive ``horizon``.

        A closed-form forecast under the observed mean eviction pressure:
        the manager's lifetime eviction rate (evicted bytes per simulated
        second) drains clean bytes in this policy's victim order, so the
        file loses bytes only once the clean data ranked *ahead* of it is
        gone.  Returns 1.0 when there is no eviction pressure, 0.0 when
        nothing of the file is cached.  Purely observational — never
        consumes simulated time.
        """
        manager = self._manager
        if manager is None:
            return 0.0
        cached = manager.lists.cached_of_file(filename)
        if cached <= 0.0:
            return 0.0
        if horizon <= 0.0:
            return 1.0
        now = manager.env.now
        rate = manager.stats.evicted_bytes / now if now > 0.0 else 0.0
        if rate <= 0.0:
            return 1.0
        at_risk = rate * horizon - self._clean_bytes_ranked_ahead(filename)
        if at_risk <= 0.0:
            return 1.0
        surviving = max(0.0, cached - at_risk)
        return min(1.0, surviving / cached)

    def _clean_bytes_ranked_ahead(self, filename: str) -> float:
        """Clean bytes this policy would evict before touching ``filename``."""
        manager = self._manager
        lists: List[LRUList] = [manager.lists.inactive]
        if manager.config.evict_from_active:
            lists.append(manager.lists.active)
        ahead = 0.0
        for lru in lists:
            for name in self.victim_order(lru, frozenset()):
                if name == filename:
                    break
                index = lru._file_runs.get(name)
                run = index.clean if index is not None else None
                if run is not None:
                    ahead += run.length()
            # No break: the file has no clean run in this list, so all of
            # the list's clean bytes drain before eviction reaches it.
        return ahead


class LRUPolicy(EvictionPolicy):
    """Global least-recently-used eviction — the bit-identical default.

    ``clean_cursor`` returns the cache's own
    :class:`~repro.pagecache.extents.StateCursor` untouched, so the victim
    stream (and therefore every simulated byte amount) is exactly what the
    pre-policy cache produced; the parity goldens pin this.  No hooks fire.
    """

    name = "lru"
    wants_events = False

    def clean_cursor(self, lru: LRUList, excluded: Iterable[str] = ()):
        return lru.clean_cursor(excluded)

    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        # Only used by predicted_survival: rank files by the LRU position
        # of their oldest clean fragment (the interleaving across files is
        # coarser than the true fragment-level order, which is fine for a
        # forecast).
        files = self._evictable_files(lru, excluded)

        def front_key(name: str) -> Tuple[float, int]:
            run = lru._file_runs[name].clean
            front = run.frags[run.head]
            return (front.last_access, front._stamp)

        files.sort(key=front_key)
        return files


class ARCPolicy(EvictionPolicy):
    """Adaptive Replacement Cache at file granularity.

    Files seen once sit in the recency list T1; files re-referenced move to
    the frequency list T2.  Fully evicted files are remembered in the ghost
    histories B1/B2; a ghost hit on re-insertion adapts the target ``p``
    (how much of the cache recency deserves) and re-enters the file as
    frequent.  One-shot scans churn through T1 and its ghosts without ever
    displacing the re-referenced working set in T2 — the scan resistance
    LRU lacks.
    """

    name = "arc"
    wants_events = True

    def __init__(self, ghost_capacity: int = 256) -> None:
        super().__init__()
        if ghost_capacity < 1:
            raise ConfigurationError("ghost_capacity must be >= 1")
        self.ghost_capacity = ghost_capacity
        #: filename -> recency sequence (insertion-ordered dicts double as
        #: the LRU queues; larger sequence = more recently touched).
        self._t1: Dict[str, int] = {}
        self._t2: Dict[str, int] = {}
        self._b1: Dict[str, None] = {}
        self._b2: Dict[str, None] = {}
        #: Adaptive target size of T1, in files.
        self._p = 0.0
        self._seq = 0

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def _trim_ghost(self, ghost: Dict[str, None]) -> None:
        while len(ghost) > self.ghost_capacity:
            ghost.pop(next(iter(ghost)))

    def _refresh_gauges(self) -> None:
        self.stats.tracked_files = len(self._t1) + len(self._t2)
        self.stats.ghost_files = len(self._b1) + len(self._b2)

    def on_insert(self, filename: str, amount: float, now: float) -> None:
        self.stats.inserts += 1
        if filename in self._t1 or filename in self._t2:
            # More bytes of an already-tracked file: keep its tier.
            return
        if filename in self._b1:
            # Recency ghost hit: recency was undersized — grow p.
            self._p = min(
                self._p + max(1.0, len(self._b2) / max(1, len(self._b1))),
                float(len(self._t1) + len(self._t2) + 1),
            )
            del self._b1[filename]
            self._t2[filename] = self._tick()
            self.stats.ghost_hits += 1
            self.stats.promotions += 1
        elif filename in self._b2:
            # Frequency ghost hit: frequency was undersized — shrink p.
            self._p = max(
                0.0,
                self._p - max(1.0, len(self._b1) / max(1, len(self._b2))),
            )
            del self._b2[filename]
            self._t2[filename] = self._tick()
            self.stats.ghost_hits += 1
            self.stats.promotions += 1
        else:
            self._t1[filename] = self._tick()
        self._refresh_gauges()

    def on_access(self, filename: str, amount: float, now: float) -> None:
        self.stats.accesses += 1
        if filename in self._t1:
            del self._t1[filename]
            self._t2[filename] = self._tick()
            self.stats.promotions += 1
            self._refresh_gauges()
        elif filename in self._t2:
            self._t2[filename] = self._tick()

    def on_evicted(self, filename: str, amount: float,
                   resident_after: float) -> None:
        if resident_after > 0.0:
            return
        self.stats.full_evictions += 1
        if filename in self._t1:
            del self._t1[filename]
            self._b1[filename] = None
            self._trim_ghost(self._b1)
        elif filename in self._t2:
            del self._t2[filename]
            self._b2[filename] = None
            self._trim_ghost(self._b2)
        self._refresh_gauges()

    def on_invalidate(self, filename: str) -> None:
        self.stats.invalidations += 1
        self._t1.pop(filename, None)
        self._t2.pop(filename, None)
        self._b1.pop(filename, None)
        self._b2.pop(filename, None)
        self._refresh_gauges()

    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        files = self._evictable_files(lru, excluded)
        # ARC's replace(): take from T1 while it exceeds the adaptive
        # target, else from T2; within a tier, least recent first.  Files
        # the hooks never saw (placed directly by tests) rank first.
        t1_first = len(self._t1) > self._p
        t1, t2 = self._t1, self._t2

        def tier_key(name: str) -> Tuple[int, int, str]:
            if name in t1:
                tier = 1 if t1_first else 2
                return (tier, t1[name], name)
            if name in t2:
                tier = 2 if t1_first else 1
                return (tier, t2[name], name)
            return (0, 0, name)

        files.sort(key=tier_key)
        return files


class TwoQPolicy(EvictionPolicy):
    """2Q: FIFO probation (A1in), ghost history (A1out), main LRU (Am).

    First-touch files enter A1in and are evicted FIFO; only a file
    re-inserted *after* falling out of A1in (a ghost hit in A1out) earns a
    place in the long-term Am queue.  Accesses while still in probation do
    not promote — 2Q's defence against correlated references.
    """

    name = "2q"
    wants_events = True

    def __init__(self, ghost_capacity: int = 256) -> None:
        super().__init__()
        if ghost_capacity < 1:
            raise ConfigurationError("ghost_capacity must be >= 1")
        self.ghost_capacity = ghost_capacity
        self._a1in: Dict[str, int] = {}
        self._a1out: Dict[str, None] = {}
        self._am: Dict[str, int] = {}
        self._seq = 0

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def _refresh_gauges(self) -> None:
        self.stats.tracked_files = len(self._a1in) + len(self._am)
        self.stats.ghost_files = len(self._a1out)

    def on_insert(self, filename: str, amount: float, now: float) -> None:
        self.stats.inserts += 1
        if filename in self._am:
            self._am[filename] = self._tick()
            return
        if filename in self._a1in:
            # Still in probation: FIFO position is fixed at first insert.
            return
        if filename in self._a1out:
            del self._a1out[filename]
            self._am[filename] = self._tick()
            self.stats.ghost_hits += 1
            self.stats.promotions += 1
        else:
            self._a1in[filename] = self._tick()
        self._refresh_gauges()

    def on_access(self, filename: str, amount: float, now: float) -> None:
        self.stats.accesses += 1
        if filename in self._am:
            self._am[filename] = self._tick()
        # A hit while in A1in is deliberately ignored (correlated
        # references must not earn long-term residency).

    def on_evicted(self, filename: str, amount: float,
                   resident_after: float) -> None:
        if resident_after > 0.0:
            return
        self.stats.full_evictions += 1
        if filename in self._a1in:
            del self._a1in[filename]
            self._a1out[filename] = None
            while len(self._a1out) > self.ghost_capacity:
                self._a1out.pop(next(iter(self._a1out)))
        else:
            self._am.pop(filename, None)
        self._refresh_gauges()

    def on_invalidate(self, filename: str) -> None:
        self.stats.invalidations += 1
        self._a1in.pop(filename, None)
        self._a1out.pop(filename, None)
        self._am.pop(filename, None)
        self._refresh_gauges()

    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        files = self._evictable_files(lru, excluded)
        a1in, am = self._a1in, self._am

        def key(name: str) -> Tuple[int, int, str]:
            if name in a1in:
                return (1, a1in[name], name)  # probation drains first, FIFO
            if name in am:
                return (2, am[name], name)  # then the main queue, LRU
            return (0, 0, name)  # untracked files rank first

        files.sort(key=key)
        return files


class ClockProPolicy(EvictionPolicy):
    """Simplified file-granular CLOCK-Pro.

    Residents are *cold* (on probation, carrying a test period) or *hot*;
    every hit sets the file's reference bit.  The clock hand runs when
    eviction pressure arrives (at cursor creation): a referenced cold file
    in its test period is promoted to hot, a referenced cold file past its
    test gets a second chance (new test period, moved behind the hand), and
    referenced hot files just drop their bit.  A cold file evicted during
    its test period is remembered as a ghost; re-inserting a ghost brings
    it back hot — the reuse-distance test that lets CLOCK-Pro keep a
    working set a pure CLOCK would churn through.
    """

    name = "clock-pro"
    wants_events = True

    _HOT, _REF, _TEST, _SEQ = 0, 1, 2, 3

    def __init__(self, ghost_capacity: int = 256) -> None:
        super().__init__()
        if ghost_capacity < 1:
            raise ConfigurationError("ghost_capacity must be >= 1")
        self.ghost_capacity = ghost_capacity
        #: filename -> [hot, referenced, in_test, clock_seq]
        self._resident: Dict[str, list] = {}
        self._ghost: Dict[str, None] = {}
        self._seq = 0

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def _refresh_gauges(self) -> None:
        self.stats.tracked_files = len(self._resident)
        self.stats.ghost_files = len(self._ghost)

    def on_insert(self, filename: str, amount: float, now: float) -> None:
        self.stats.inserts += 1
        if filename in self._resident:
            # More chunks of a file still streaming in: NOT a re-reference
            # (re-reads of cached bytes arrive as accesses, which set the
            # bit); otherwise every multi-chunk scan looks hot on arrival.
            return
        if filename in self._ghost:
            # Reuse distance short enough to beat the test period: hot.
            del self._ghost[filename]
            self._resident[filename] = [True, False, False, self._tick()]
            self.stats.ghost_hits += 1
            self.stats.promotions += 1
        else:
            self._resident[filename] = [False, False, True, self._tick()]
        self._refresh_gauges()

    def on_access(self, filename: str, amount: float, now: float) -> None:
        self.stats.accesses += 1
        entry = self._resident.get(filename)
        if entry is not None:
            entry[self._REF] = True

    def on_evicted(self, filename: str, amount: float,
                   resident_after: float) -> None:
        if resident_after > 0.0:
            return
        self.stats.full_evictions += 1
        entry = self._resident.pop(filename, None)
        if entry is None:
            return
        if not entry[self._HOT] and entry[self._TEST]:
            self._ghost[filename] = None
            while len(self._ghost) > self.ghost_capacity:
                self._ghost.pop(next(iter(self._ghost)))
        elif entry[self._HOT]:
            self.stats.demotions += 1
        self._refresh_gauges()

    def on_invalidate(self, filename: str) -> None:
        self.stats.invalidations += 1
        self._resident.pop(filename, None)
        self._ghost.pop(filename, None)
        self._refresh_gauges()

    def _rotate_hand(self) -> None:
        """Advance the cold hand over every referenced cold resident."""
        hot, ref, test, seq = self._HOT, self._REF, self._TEST, self._SEQ
        cold = sorted(
            (entry[seq], name)
            for name, entry in self._resident.items()
            if not entry[hot]
        )
        for _, name in cold:
            entry = self._resident[name]
            if not entry[ref]:
                continue
            entry[ref] = False
            if entry[test]:
                entry[hot] = True
                entry[test] = False
                self.stats.promotions += 1
            else:
                # Second chance: new test period, moved behind the hand.
                entry[test] = True
                entry[seq] = self._tick()

    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        self._rotate_hand()
        files = self._evictable_files(lru, excluded)
        resident = self._resident
        hot, ref, seq = self._HOT, self._REF, self._SEQ

        def key(name: str) -> Tuple[int, int, int, str]:
            entry = resident.get(name)
            if entry is None:
                return (0, 0, 0, name)  # untracked files rank first
            tier = 2 if entry[hot] else 1  # cold residents drain first
            return (tier, 1 if entry[ref] else 0, entry[seq], name)

        files.sort(key=key)
        return files


class PriorityWeightedPolicy(EvictionPolicy):
    """Recency + frequency + owner-job-priority weighted eviction.

    Each file carries a score; the lowest scores are evicted first:

    ``score = w_r * 1/(1 + age) + w_f * log1p(hits) + w_p * priority
    + w_w * log1p(wait) - penalty_if_owner_preempted``

    Owner priority and waiting time arrive from the scheduler through the
    job hooks (:meth:`on_job_dispatch` / :meth:`on_job_preempted`); the
    wait term defaults to weight 0 and the scheduler clamps waits at zero
    (``repro.scheduler.metrics.clamped_wait``), so negative queueing
    artifacts can never leak into the score.  Preempting a job demotes its
    input files by a flat penalty — preempted low-priority work loses cache
    residency first, re-dispatching it lifts the penalty again.
    """

    name = "priority"
    wants_events = True
    wants_job_events = True

    def __init__(self, recency_weight: float = 1.0,
                 frequency_weight: float = 2.0,
                 priority_weight: float = 4.0,
                 wait_weight: float = 0.0,
                 preemption_penalty: float = 8.0) -> None:
        super().__init__()
        self.recency_weight = recency_weight
        self.frequency_weight = frequency_weight
        self.priority_weight = priority_weight
        self.wait_weight = wait_weight
        self.preemption_penalty = preemption_penalty
        #: filename -> (last_touch_time, hit_count)
        self._touches: Dict[str, Tuple[float, int]] = {}
        self._owner_priority: Dict[str, float] = {}
        self._owner_wait: Dict[str, float] = {}
        self._preempted: Dict[str, None] = {}

    def _touch(self, filename: str, now: float) -> None:
        entry = self._touches.get(filename)
        count = entry[1] + 1 if entry is not None else 1
        self._touches[filename] = (now, count)
        self.stats.tracked_files = len(self._touches)

    def on_insert(self, filename: str, amount: float, now: float) -> None:
        self.stats.inserts += 1
        entry = self._touches.get(filename)
        if entry is not None:
            # More chunks of a file streaming in: refresh recency only —
            # counting every chunk as a hit would make big one-shot files
            # look frequent.
            self._touches[filename] = (now, entry[1])
            return
        self._touch(filename, now)

    def on_access(self, filename: str, amount: float, now: float) -> None:
        self.stats.accesses += 1
        self._touch(filename, now)

    def on_evicted(self, filename: str, amount: float,
                   resident_after: float) -> None:
        if resident_after > 0.0:
            return
        self.stats.full_evictions += 1
        self._touches.pop(filename, None)
        self.stats.tracked_files = len(self._touches)

    def on_invalidate(self, filename: str) -> None:
        self.stats.invalidations += 1
        self._touches.pop(filename, None)
        self._owner_priority.pop(filename, None)
        self._owner_wait.pop(filename, None)
        self._preempted.pop(filename, None)
        self.stats.tracked_files = len(self._touches)

    def on_job_dispatch(self, filenames: Iterable[str], priority: int,
                        wait: float = 0.0) -> None:
        self.stats.job_dispatches += 1
        wait = max(0.0, wait)
        for filename in filenames:
            current = self._owner_priority.get(filename)
            if current is None or priority > current:
                self._owner_priority[filename] = float(priority)
            previous_wait = self._owner_wait.get(filename, 0.0)
            if wait > previous_wait:
                self._owner_wait[filename] = wait
            if filename in self._preempted:
                del self._preempted[filename]
                self.stats.promotions += 1

    def on_job_preempted(self, filenames: Iterable[str]) -> None:
        self.stats.job_preemptions += 1
        for filename in filenames:
            if filename not in self._preempted:
                self._preempted[filename] = None
                self.stats.demotions += 1

    def score(self, filename: str, now: float) -> float:
        """The file's retention score (higher = keep longer)."""
        value = 0.0
        entry = self._touches.get(filename)
        if entry is not None:
            last, count = entry
            value += self.recency_weight / (1.0 + max(0.0, now - last))
            value += self.frequency_weight * math.log1p(count)
        priority = self._owner_priority.get(filename)
        if priority is not None:
            value += self.priority_weight * priority
        if self.wait_weight:
            value += self.wait_weight * math.log1p(
                max(0.0, self._owner_wait.get(filename, 0.0))
            )
        if filename in self._preempted:
            value -= self.preemption_penalty
        return value

    def victim_order(self, lru: LRUList,
                     excluded: FrozenSet[str]) -> List[str]:
        files = self._evictable_files(lru, excluded)
        manager = self._manager
        now = manager.env.now if manager is not None else 0.0
        files.sort(key=lambda name: (self.score(name, now), name))
        return files


#: Registered policy names (the values accepted by
#: ``PageCacheConfig(eviction_policy="...")``).  Aliases share a class.
POLICIES: Dict[str, type] = {
    "lru": LRUPolicy,
    "arc": ARCPolicy,
    "2q": TwoQPolicy,
    "twoq": TwoQPolicy,
    "clock-pro": ClockProPolicy,
    "clockpro": ClockProPolicy,
    "priority": PriorityWeightedPolicy,
    "priority-weighted": PriorityWeightedPolicy,
}


def make_eviction_policy(spec=None) -> EvictionPolicy:
    """Build an :class:`EvictionPolicy` from a configuration value.

    Accepts a registered name (``"lru"``, ``"arc"``, ``"2q"``,
    ``"clock-pro"``, ``"priority"`` or an alias), an
    :class:`EvictionPolicy` instance (single-manager simulations only), an
    :class:`EvictionPolicy` subclass, or a zero-argument factory returning
    an instance.  ``None`` selects the default LRU policy.
    """
    if spec is None:
        return LRUPolicy()
    if isinstance(spec, EvictionPolicy):
        return spec
    if isinstance(spec, str):
        cls = POLICIES.get(spec)
        if cls is None:
            raise ConfigurationError(
                f"unknown eviction policy {spec!r}; "
                f"registered: {', '.join(sorted(POLICIES))}"
            )
        return cls()
    if isinstance(spec, type) and issubclass(spec, EvictionPolicy):
        return spec()
    if callable(spec):
        policy = spec()
        if not isinstance(policy, EvictionPolicy):
            raise ConfigurationError(
                f"eviction-policy factory returned {policy!r}, "
                "not an EvictionPolicy"
            )
        return policy
    raise ConfigurationError(
        f"eviction_policy must be a name, EvictionPolicy, subclass or "
        f"factory, got {spec!r}"
    )


def validate_policy_spec(spec) -> None:
    """Raise :class:`ConfigurationError` for an invalid policy spec.

    Used by :meth:`PageCacheConfig.validate` so a bad policy name fails at
    configuration time, not at the first eviction.
    """
    if spec is None or isinstance(spec, EvictionPolicy):
        return
    if isinstance(spec, str):
        if spec not in POLICIES:
            raise ConfigurationError(
                f"unknown eviction policy {spec!r}; "
                f"registered: {', '.join(sorted(POLICIES))}"
            )
        return
    if isinstance(spec, type) and issubclass(spec, EvictionPolicy):
        return
    if callable(spec):
        return
    raise ConfigurationError(
        f"eviction_policy must be a name, EvictionPolicy, subclass or "
        f"factory, got {spec!r}"
    )
