"""Linux page cache simulation model (the paper's primary contribution).

The model follows Section III of the paper:

* :class:`~repro.pagecache.block.Block` — the *data block* abstraction: a
  set of file pages cached by a single I/O operation, carrying the file
  name, size, entry time, last access time and dirty flag (Figure 2).
* :class:`~repro.pagecache.extents.ExtentRun` — the storage unit of the
  LRU lists: a maximal row of consecutive same-file, same-state blocks,
  coalesced losslessly (fragments keep their exact sizes; joining runs
  performs no byte arithmetic).
* :class:`~repro.pagecache.lru.LRUList` and
  :class:`~repro.pagecache.lru.PageCacheLists` — the kernel's two-list
  (active/inactive) LRU structure, balanced so that the active list never
  exceeds twice the inactive list.
* :class:`~repro.pagecache.policy.EvictionPolicy` — pluggable victim
  selection over the extent runs: LRU (the bit-identical default), ARC,
  2Q, CLOCK-Pro and a priority-weighted policy fed by scheduler events;
  selected through ``PageCacheConfig(eviction_policy=...)``.
* :class:`~repro.pagecache.memory_manager.MemoryManager` — flushing,
  eviction, cached I/O accounting, anonymous memory, and the periodical
  flush background thread (Algorithm 1).
* :class:`~repro.pagecache.io_controller.IOController` — chunk-by-chunk
  file reads (Algorithm 2) and writes (Algorithm 3) in writeback mode,
  plus the writethrough write path.
"""

from repro.pagecache.block import Block
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.extents import ExtentRun
from repro.pagecache.lru import LRUList, PageCacheLists
from repro.pagecache.memory_manager import MemoryManager
from repro.pagecache.io_controller import IOController
from repro.pagecache.policy import (
    ARCPolicy,
    ClockProPolicy,
    EvictionPolicy,
    LRUPolicy,
    POLICIES,
    PriorityWeightedPolicy,
    TwoQPolicy,
    make_eviction_policy,
)
from repro.pagecache.stats import (
    CacheStatistics,
    EvictionPolicyStats,
    ExtentOccupancy,
    StatsSource,
)

__all__ = [
    "Block",
    "ExtentRun",
    "PageCacheConfig",
    "LRUList",
    "PageCacheLists",
    "MemoryManager",
    "IOController",
    "CacheStatistics",
    "ExtentOccupancy",
    "EvictionPolicyStats",
    "StatsSource",
    "EvictionPolicy",
    "LRUPolicy",
    "ARCPolicy",
    "TwoQPolicy",
    "ClockProPolicy",
    "PriorityWeightedPolicy",
    "POLICIES",
    "make_eviction_policy",
]
