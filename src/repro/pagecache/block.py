"""The data-block abstraction.

Simulating individual file pages would make simulation cost proportional to
the amount of data; the paper instead introduces *data blocks*: contiguous
sets of file pages that were accessed by the same I/O operation and
therefore share their metadata.  A block records the file it belongs to,
its size, its entry (creation) time in the cache, its last access time and
whether it is dirty.  Blocks may be split into smaller blocks when an I/O
operation or an eviction/flush decision only covers part of a block.

Since the extent rebuild of the LRU lists, blocks are the *fragments* of
:class:`~repro.pagecache.extents.ExtentRun` rows: the run — a maximal row
of consecutive same-file, same-state blocks — is the LRU-list node, and
each block records the run holding it (``_run``) plus its per-list
insertion stamp (``_stamp``), which breaks last-access ties in the LRU
order.  Blocks keep their exact individual sizes inside the run, which is
what makes run coalescing lossless: joining runs moves fragments around
without performing any byte arithmetic.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Optional, Tuple

_block_ids = count()


class Block:
    """A set of cached file pages sharing their metadata (Figure 2).

    Parameters
    ----------
    filename:
        Name of the file the pages belong to.
    size:
        Block size in bytes (strictly positive).
    entry_time:
        Simulated time at which the data entered the page cache.
    last_access:
        Simulated time of the most recent access.
    dirty:
        ``True`` if the block holds data not yet persisted to storage.
    storage:
        The storage device holding the on-disk copy of the file; used by
        flushing to know where dirty data must be written.
    """

    __slots__ = ("id", "filename", "size", "entry_time", "last_access", "dirty",
                 "storage", "_run", "_stamp")

    def __init__(self, filename: str, size: float, entry_time: float,
                 last_access: Optional[float] = None, dirty: bool = False,
                 storage: Any = None):
        if size <= 0:
            raise ValueError(f"block size must be positive, got {size}")
        self.id = next(_block_ids)
        self.filename = filename
        self.size = float(size)
        self.entry_time = float(entry_time)
        self.last_access = float(entry_time if last_access is None else last_access)
        self.dirty = bool(dirty)
        self.storage = storage
        # Owned by repro.pagecache.lru.LRUList: the extent run holding the
        # block (None while uncached) and the per-list insertion stamp that
        # breaks last-access ties.  A block belongs to at most one run — and
        # therefore one list — at a time.
        self._run: Any = None
        self._stamp = 0

    # ------------------------------------------------------------------- api
    def touch(self, now: float) -> None:
        """Record an access at simulated time ``now``."""
        self.last_access = float(now)

    def is_expired(self, now: float, expiration: float) -> bool:
        """True if the block is dirty and older than ``expiration`` seconds.

        Only dirty blocks can expire; expiration drives the periodical
        flushing of Algorithm 1.
        """
        return self.dirty and (now - self.entry_time) >= expiration

    def split(self, first_size: float) -> Tuple["Block", "Block"]:
        """Split the block into two blocks of sizes ``first_size`` and the rest.

        Both halves keep the metadata (entry time, last access, dirty flag,
        storage) of the original block.  Raises ``ValueError`` if
        ``first_size`` is not strictly between 0 and the block size.
        """
        if not (0 < first_size < self.size):
            raise ValueError(
                f"cannot split a block of {self.size} bytes at {first_size}"
            )
        first = Block(self.filename, first_size, self.entry_time,
                      self.last_access, self.dirty, self.storage)
        second = Block(self.filename, self.size - first_size, self.entry_time,
                       self.last_access, self.dirty, self.storage)
        return first, second

    def clone(self) -> "Block":
        """Return a copy of the block (new id, same metadata)."""
        return Block(self.filename, self.size, self.entry_time,
                     self.last_access, self.dirty, self.storage)

    def __repr__(self) -> str:
        flag = "dirty" if self.dirty else "clean"
        return (
            f"<Block #{self.id} file={self.filename!r} size={self.size:.0f} "
            f"entry={self.entry_time:.2f} access={self.last_access:.2f} {flag}>"
        )
