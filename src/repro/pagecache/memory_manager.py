"""The Memory Manager (Section III.A of the paper).

The Memory Manager owns the page cache LRU lists and the memory accounting
of one host.  It implements:

* cache accounting: free, cached, dirty and anonymous memory;
* :meth:`MemoryManager.flush` — synchronous flushing of least recently used
  dirty blocks until a requested amount is persisted (foreground writeback);
* :meth:`MemoryManager.evict` — removal of least recently used clean blocks
  from the inactive list (and, optionally, the active list);
* :meth:`MemoryManager.read_from_cache` / :meth:`MemoryManager.add_to_cache`
  / :meth:`MemoryManager.write_to_cache` — the cache-side halves of
  Algorithms 2 and 3;
* the periodical-flush background process of Algorithm 1.

Methods that consume simulated time (flushes, cached reads and writes) are
generator-based processes and must be ``yield``-ed from a simulation
process; accounting-only methods (eviction, anonymous memory) return
immediately, matching the paper's statement that eviction overhead is not
part of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.des.environment import Environment
from repro.errors import CacheConsistencyError, ConfigurationError, FlowAborted
from repro.pagecache.block import Block
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.lru import LRUList, PageCacheLists
from repro.pagecache.policy import make_eviction_policy
from repro.pagecache.stats import CacheStatistics
from repro.pagecache.tolerances import BYTE_EPSILON as _EPSILON
from repro.platform.memory import MemoryDevice
from repro.units import format_size


@dataclass
class MemorySnapshot:
    """Point-in-time view of a host's memory, as plotted in Figure 4b."""

    time: float
    total: float
    free: float
    used: float
    cached: float
    dirty: float
    anonymous: float
    dirty_threshold: float

    def as_dict(self) -> Dict[str, float]:
        """Return the snapshot as a plain dictionary."""
        return {
            "time": self.time,
            "total": self.total,
            "free": self.free,
            "used": self.used,
            "cached": self.cached,
            "dirty": self.dirty,
            "anonymous": self.anonymous,
            "dirty_threshold": self.dirty_threshold,
        }


class MemoryManager:
    """Simulates the memory and page cache of one host.

    Parameters
    ----------
    env:
        Simulation environment.
    memory:
        The host's memory device (size and bandwidths).
    config:
        Page cache configuration (kernel tunables).
    name:
        Name used for the background process and in error messages.
    """

    def __init__(self, env: Environment, memory: MemoryDevice,
                 config: Optional[PageCacheConfig] = None, name: str = "mm"):
        if memory is None:
            raise ConfigurationError("MemoryManager requires a memory device")
        self.env = env
        self.memory = memory
        self.config = config or PageCacheConfig()
        self.name = name
        self.total_memory = float(memory.size)
        self._free = float(memory.size)
        self._anonymous = 0.0
        self._anonymous_by_owner: Dict[str, float] = {}
        # With a "total" threshold base the dirty capacities are constants;
        # precompute them so the per-chunk I/O paths skip the property
        # arithmetic (the product is the same float either way).
        if self.config.dirty_threshold_base == "total":
            self._dirty_capacity_const: Optional[float] = (
                self.config.dirty_ratio * self.total_memory
            )
            self._background_capacity_const: Optional[float] = (
                self.config.dirty_background_ratio * self.total_memory
            )
        else:
            self._dirty_capacity_const = None
            self._background_capacity_const = None
        self.lists = PageCacheLists(
            active_to_inactive_ratio=self.config.active_to_inactive_ratio,
            balance=self.config.balance_lists,
        )
        self.stats = CacheStatistics()
        #: Victim-selection policy.  The default LRU policy delegates to
        #: the lists' own cursor and requests no event hooks, so the hot
        #: paths below stay exactly as fast (and byte-identical) as before
        #: the policy API existed.
        self.policy = make_eviction_policy(self.config.eviction_policy)
        self.policy.bind(self)
        self._policy_events = self.policy.wants_events
        # Transfer labels are fixed per manager; precomputing them keeps
        # f-string formatting out of the per-chunk I/O paths.
        self._label_cache_read = f"{name}-cache-read"
        self._label_cache_write = f"{name}-cache-write"
        self._label_flush = f"{name}-flush"
        self._label_bg_flush = f"{name}-bg-flush"
        #: Files currently being written (used by ``protect_written_files``).
        self._files_being_written: Set[str] = set()
        self._running = True
        self._flusher = None
        if self.config.periodic_flushing:
            self._flusher = env.process(
                self._periodic_flush(), name=f"{name}-periodic-flush"
            )

    # ------------------------------------------------------------------ state
    @property
    def free_mem(self) -> float:
        """Unused memory in bytes.

        Under heavy concurrency the accounting may transiently go a few
        bytes negative when several processes reserve memory between yield
        points; the value self-corrects at the next flush/eviction.
        """
        return self._free

    @property
    def cached(self) -> float:
        """Bytes held by the page cache (both LRU lists)."""
        return self.lists.size

    @property
    def dirty(self) -> float:
        """Bytes of dirty (not yet persisted) data in the page cache."""
        return self.lists.dirty_size

    @property
    def anonymous(self) -> float:
        """Bytes of anonymous (application) memory in use."""
        return self._anonymous

    @property
    def extent_merges(self) -> int:
        """Fragments absorbed into existing extent runs by the LRU lists."""
        return self.lists.merge_count

    @property
    def extent_runs(self) -> int:
        """Extent runs (LRU-list nodes) currently held by the cache."""
        return self.lists.run_count

    @property
    def extent_fragments(self) -> int:
        """Fragments currently held across the cache's extent runs."""
        return self.lists.fragment_count

    @property
    def used_memory(self) -> float:
        """Memory in use (anonymous + cache), as reported by ``atop``."""
        return self._anonymous + self.lists.size

    @property
    def evictable(self) -> float:
        """Clean cache bytes that eviction is allowed to reclaim."""
        amount = self.lists.inactive.clean_size
        if self.config.evict_from_active:
            amount += self.lists.active.clean_size
        return amount

    @property
    def available_mem(self) -> float:
        """Free memory plus reclaimable (clean) cache."""
        return self._free + self.lists.clean_size

    @property
    def dirty_capacity(self) -> float:
        """Maximum amount of dirty data allowed (the dirty ratio threshold)."""
        if self._dirty_capacity_const is not None:
            return self._dirty_capacity_const
        return self.config.dirty_ratio * self.available_mem

    @property
    def dirty_background_capacity(self) -> float:
        """Dirty amount above which background writeback starts."""
        if self._background_capacity_const is not None:
            return self._background_capacity_const
        return self.config.dirty_background_ratio * self.available_mem

    @property
    def remaining_dirty_allowance(self) -> float:
        """How much more dirty data may be produced before flushing."""
        return self.dirty_capacity - self.dirty

    def cached_amount(self, filename: str) -> float:
        """Bytes of ``filename`` currently in the page cache."""
        return self.lists.cached_of_file(filename)

    def cache_content(self) -> Dict[str, float]:
        """Per-file cache content (Figure 4c)."""
        return self.lists.files()

    def snapshot(self) -> MemorySnapshot:
        """Return a :class:`MemorySnapshot` of the current state."""
        return MemorySnapshot(
            time=self.env.now,
            total=self.total_memory,
            free=self._free,
            used=self.used_memory,
            cached=self.lists.size,
            dirty=self.lists.dirty_size,
            anonymous=self._anonymous,
            dirty_threshold=self.dirty_capacity,
        )

    def assert_consistent(self) -> None:
        """Check that free + cached + anonymous matches total memory."""
        self.lists.assert_consistent()
        balance = self._free + self.lists.size + self._anonymous
        if abs(balance - self.total_memory) > 1e-3:
            raise CacheConsistencyError(
                f"memory accounting drift on {self.name!r}: free({self._free}) + "
                f"cached({self.lists.size}) + anonymous({self._anonymous}) != "
                f"total({self.total_memory})"
            )

    # ------------------------------------------------------ anonymous memory
    def use_anonymous_memory(self, amount: float, owner: Optional[str] = None) -> None:
        """Allocate ``amount`` bytes of anonymous (application) memory."""
        if amount < 0:
            raise ValueError("cannot allocate a negative amount of memory")
        if amount == 0:
            return
        self._anonymous += amount
        self._free -= amount
        if owner is not None:
            self._anonymous_by_owner[owner] = (
                self._anonymous_by_owner.get(owner, 0.0) + amount
            )

    def release_anonymous_memory(self, amount: Optional[float] = None,
                                 owner: Optional[str] = None) -> float:
        """Release anonymous memory.

        If ``owner`` is given and ``amount`` is ``None``, all memory held by
        that owner is released (the synthetic application releases its
        anonymous memory after each task).  Returns the amount released.
        """
        if amount is None:
            if owner is None:
                amount = self._anonymous
            else:
                amount = self._anonymous_by_owner.get(owner, 0.0)
        amount = min(amount, self._anonymous)
        if amount <= 0:
            return 0.0
        self._anonymous -= amount
        self._free += amount
        if owner is not None:
            remaining = self._anonymous_by_owner.get(owner, 0.0) - amount
            if remaining <= _EPSILON:
                self._anonymous_by_owner.pop(owner, None)
            else:
                self._anonymous_by_owner[owner] = remaining
        return amount

    def anonymous_of(self, owner: str) -> float:
        """Anonymous memory currently attributed to ``owner``."""
        return self._anonymous_by_owner.get(owner, 0.0)

    # ------------------------------------------------------- policy plumbing
    @property
    def wants_job_events(self) -> bool:
        """Whether the eviction policy consumes scheduler job events."""
        return self.policy.wants_job_events

    def notify_job_dispatch(self, filenames, priority: int,
                            wait: float = 0.0) -> None:
        """Forward a job dispatch (its input files, priority, queueing wait)
        to the eviction policy, when the policy asked for job events."""
        if self.policy.wants_job_events:
            self.policy.on_job_dispatch(filenames, priority, wait)

    def notify_job_preempted(self, filenames) -> None:
        """Forward a job preemption to the eviction policy."""
        if self.policy.wants_job_events:
            self.policy.on_job_preempted(filenames)

    def predicted_survival(self, filename: str, horizon: float) -> float:
        """Fraction of the file's cached bytes expected to survive ``horizon``
        seconds of the observed eviction pressure (policy forecast)."""
        return self.policy.predicted_survival(filename, horizon)

    # -------------------------------------------------- written-file tracking
    def mark_file_being_written(self, filename: str) -> None:
        """Register ``filename`` as currently being written (kernel heuristic)."""
        self._files_being_written.add(filename)

    def unmark_file_being_written(self, filename: str) -> None:
        """Remove ``filename`` from the being-written set."""
        self._files_being_written.discard(filename)

    def _eviction_exclusions(self, exclude_file: Optional[str]) -> Set[str]:
        excluded: Set[str] = set()
        if exclude_file is not None:
            excluded.add(exclude_file)
        if self.config.protect_written_files:
            excluded |= self._files_being_written
        return excluded

    # ---------------------------------------------------------------- evict
    def evict(self, amount: float, exclude_file: Optional[str] = None) -> float:
        """Evict up to ``amount`` bytes of clean data from the cache.

        Traverses the inactive list in LRU order, deleting clean blocks (and
        splitting the last one if needed).  When ``evict_from_active`` is
        enabled and the inactive list runs out of clean blocks, the active
        list is scanned as well.  Returns the number of bytes evicted; this
        may be less than requested when no clean data remains.

        Eviction consumes no simulated time (negligible in real systems).
        """
        if amount is None or amount <= 0:
            return 0.0
        excluded = self._eviction_exclusions(exclude_file)
        evicted = 0.0
        lists: List[LRUList] = [self.lists.inactive]
        if self.config.evict_from_active:
            lists.append(self.lists.active)
        policy = self.policy
        notify = self._policy_events
        for lru in lists:
            if evicted >= amount - _EPSILON:
                break
            # A consuming cursor hands out the evictable blocks in the
            # policy's victim order (for the default LRU policy: straight
            # from the clean heap): cost is proportional to the blocks
            # touched, not the cache size.
            cursor = policy.clean_cursor(lru, excluded)
            try:
                while evicted < amount - _EPSILON:
                    block = cursor.next()
                    if block is None:
                        break
                    needed = amount - evicted
                    if block.size <= needed + _EPSILON:
                        lru.remove(block)
                        evicted += block.size
                        self._free += block.size
                        if notify:
                            policy.on_evicted(
                                block.filename, block.size,
                                self.lists.cached_of_file(block.filename),
                            )
                    else:
                        kept_size = block.size - needed
                        lru.remove(block)
                        kept, _gone = block.split(kept_size)
                        lru.insert_ordered(kept)
                        evicted += needed
                        self._free += needed
                        if notify:
                            policy.on_evicted(
                                block.filename, needed,
                                self.lists.cached_of_file(block.filename),
                            )
            finally:
                cursor.close()
        if evicted > 0:
            self.stats.evicted_bytes += evicted
            self.stats.evict_ops += 1
            # Shrinking the inactive list may break the two-list balance;
            # rebalance as the kernel's reclaim path does (deactivating LRU
            # active data into the inactive list).
            self.lists.balance()
        return evicted

    # ---------------------------------------------------------------- flush
    def _select_dirty_blocks(self, amount: float,
                             exclude_file: Optional[str] = None,
                             ) -> Tuple[List[Tuple[object, float]], float]:
        """Pick LRU dirty blocks totalling ``amount`` bytes and mark them clean.

        Returns ``(storage, size)`` pairs for the selected data (already
        marked clean in the lists, splitting the last block if necessary)
        and the total amount selected.  ``mark_clean`` moves each fragment
        from its dirty run into the bordering clean run (or a clean run of
        its own) without touching its size, so cleaning a run front to
        back grows one clean extent.  The selection is synchronous so that
        a concurrent flusher never picks the same blocks twice.
        """
        selected: List[Tuple[object, float]] = []
        total = 0.0
        for lru in (self.lists.inactive, self.lists.active):
            if total >= amount - _EPSILON:
                break
            cursor = lru.dirty_cursor(exclude_file)
            try:
                while total < amount - _EPSILON:
                    block = cursor.next()
                    if block is None:
                        break
                    needed = amount - total
                    if block.size <= needed + _EPSILON:
                        size = block.size
                        lru.mark_clean(block)
                        selected.append((block.storage, size))
                        total += size
                    else:
                        # Split into a flushed part and a part that stays
                        # dirty.
                        lru.remove(block)
                        flushed_part, dirty_part = block.split(needed)
                        flushed_part.dirty = False
                        size = flushed_part.size
                        lru.insert_ordered(flushed_part)
                        lru.insert_ordered(dirty_part)
                        selected.append((flushed_part.storage, size))
                        total += size
            finally:
                cursor.close()
        return selected, total

    def select_flush(self, amount: float, exclude_file: Optional[str] = None,
                     ) -> Tuple[Dict[object, float], float]:
        """Selection half of :meth:`flush` (no simulated time).

        Marks the selected LRU dirty blocks clean and returns the
        per-device write amounts (in selection order) plus the total; the
        caller is responsible for charging one storage write per device.
        """
        selected, total = self._select_dirty_blocks(amount, exclude_file)
        per_device: Dict[object, float] = {}
        for storage, size in selected:
            if storage is None:
                continue
            if storage in per_device:
                per_device[storage] += size
            else:
                per_device[storage] = size
        return per_device, total

    def flush(self, amount: float, exclude_file: Optional[str] = None):
        """Flush up to ``amount`` bytes of dirty data to storage.

        This is a simulation process (``yield`` it from another process):
        the selected blocks are written to their backing storage devices and
        the elapsed time is governed by the storage model, including
        bandwidth sharing with any concurrent I/O.  Returns the number of
        bytes flushed, which may be smaller than requested if less dirty
        data is available.
        """
        if amount is None or amount <= 0:
            return 0.0
        per_device, total = self.select_flush(amount, exclude_file)
        if total <= 0:
            return 0.0
        label = self._label_flush
        for device, device_amount in per_device.items():
            yield device.write(device_amount, label=label)
        self.stats.flushed_bytes += total
        self.stats.flush_ops += 1
        return total

    # ------------------------------------------------------ cache operations
    def add_to_cache(self, filename: str, amount: float, storage,
                     dirty: bool = False) -> Optional[Block]:
        """Insert freshly read (or written) data as a new block.

        Newly cached data always enters the inactive list, as in the kernel.
        Accounting only; the disk or memory transfer time is simulated by
        the caller.
        """
        if amount <= 0:
            return None
        now = self.env.now
        block = Block(
            filename,
            amount,
            entry_time=now,
            last_access=now,
            dirty=dirty,
            storage=storage,
        )
        lists = self.lists
        lists.inactive.append(block)
        lists.balance()
        self._free -= amount
        if self._policy_events:
            self.policy.on_insert(filename, amount, now)
        return block

    def put_to_cache(self, filename: str, amount: float, storage) -> None:
        """Accounting half of :meth:`write_to_cache` (no simulated time).

        Creates the dirty block and counts the written bytes; the caller
        is responsible for charging the memory-write transfer.
        """
        self.add_to_cache(filename, amount, storage, dirty=True)
        self.stats.cache_write_bytes += amount

    def write_to_cache(self, filename: str, amount: float, storage):
        """Write ``amount`` bytes of ``filename`` into the cache (dirty).

        Simulation process: charges a memory write at memory bandwidth and
        creates a dirty block in the inactive list (writes are assumed to
        target uncached data, as in the paper).
        """
        if amount <= 0:
            return 0.0
        self.put_to_cache(filename, amount, storage)
        yield self.memory.write(amount, label=self._label_cache_write)
        return amount

    def take_from_cache(self, filename: str, amount: float) -> float:
        """Consumption half of :meth:`read_from_cache` (no simulated time).

        Moves the served bytes to the active list (merging clean data,
        promoting dirty blocks individually) and records the hit; the
        caller is responsible for charging the memory-read transfer for
        the returned number of bytes.
        """
        now = self.env.now
        remaining = amount
        merged_clean_size = 0.0
        merged_entry_time = now
        merged_storage = None

        for lru in (self.lists.inactive, self.lists.active):
            if remaining <= _EPSILON:
                break
            # Only this file's fragments, in LRU order — the lazy file
            # cursor walks the file's extent runs and costs only the
            # fragments actually consumed, not a per-chunk snapshot of
            # every cached block of the file.
            cursor = lru.file_cursor(filename)
            cursor_next = cursor.next
            detach = lru._detach
            active = self.lists.active
            while remaining > _EPSILON:
                block = cursor_next()
                if block is None:
                    break
                if block.size > remaining + _EPSILON:
                    # Only part of the block is accessed: split and re-access
                    # the first part only.
                    detach(block)
                    accessed, rest = block.split(remaining)
                    lru.insert_ordered(rest)
                    block = accessed
                else:
                    detach(block)
                taken = block.size
                if block.dirty:
                    # Dirty blocks are moved independently to preserve their
                    # entry time (needed for expiration).
                    block.last_access = now
                    active.append(block)
                else:
                    if block.entry_time < merged_entry_time:
                        merged_entry_time = block.entry_time
                    merged_clean_size += taken
                    if block.storage is not None:
                        merged_storage = block.storage
                remaining -= taken

        if merged_clean_size > 0:
            merged = Block(
                filename,
                merged_clean_size,
                entry_time=merged_entry_time,
                last_access=now,
                dirty=False,
                storage=merged_storage,
            )
            self.lists.active.append(merged)

        self.lists.balance()
        served = amount - max(0.0, remaining)
        if served > 0:
            self.stats.record_hit(filename, served)
            if self._policy_events:
                self.policy.on_access(filename, served, now)
        return served

    def read_from_cache(self, filename: str, amount: float):
        """Read ``amount`` bytes of ``filename`` from the cache.

        Simulation process implementing the cache-hit path of Algorithm 2:
        data is taken from the inactive list first, then from the active
        list; clean blocks are merged into a single re-accessed block
        appended to the active list, dirty blocks are promoted individually
        so they keep their entry time.  Charges a memory read at memory
        bandwidth.  Returns the number of bytes served (bounded by the
        amount of the file actually cached).
        """
        if amount <= 0:
            return 0.0
        served = self.take_from_cache(filename, amount)
        if served > 0:
            yield self.memory.read(served, label=self._label_cache_read)
        return served

    def invalidate_file(self, filename: str) -> float:
        """Drop every cached block of ``filename`` (e.g. file deletion).

        Dirty data of the file is discarded without being written back,
        mirroring what happens when a file is unlinked.  Returns the number
        of bytes removed from the cache.
        """
        removed = 0.0
        for lru in (self.lists.inactive, self.lists.active):
            for block in lru.blocks_of_file(filename):
                lru.remove(block)
                removed += block.size
                self._free += block.size
        if removed > 0:
            self.lists.balance()
            if self._policy_events:
                self.policy.on_invalidate(filename)
        return removed

    def invalidate_all(self) -> float:
        """Drop the entire page cache (node crash / power loss).

        Every cached block of every file — dirty data included — is
        discarded without writeback, exactly as a crash loses the contents
        of RAM.  Anonymous memory accounting is untouched (the owning
        processes are rolled back separately).  Returns the number of
        bytes removed.
        """
        removed = 0.0
        for filename in list(self.lists.files()):
            removed += self.invalidate_file(filename)
        self._files_being_written.clear()
        return removed

    # ---------------------------------------------------- periodical flushing
    def expired_blocks(self) -> List[Block]:
        """Dirty blocks older than the configured expiration time."""
        now = self.env.now
        expiration = self.config.dirty_expire
        return (
            self.lists.inactive.expired_blocks(now, expiration)
            + self.lists.active.expired_blocks(now, expiration)
        )

    def _periodic_flush(self):
        """Algorithm 1: flush expired dirty blocks every ``writeback_interval``."""
        interval = self.config.writeback_interval
        while self._running:
            start = self.env.now
            blocks = self.expired_blocks()
            flushed = 0.0
            for block in blocks:
                # Mark clean before the write so foreground flushing does
                # not pick the same fragment while this process waits on
                # the storage device.
                size = block.size
                if block in self.lists.inactive:
                    self.lists.inactive.mark_clean(block)
                elif block in self.lists.active:
                    self.lists.active.mark_clean(block)
                else:
                    continue
                flushed += size
                if block.storage is not None:
                    try:
                        yield block.storage.write(size, label=self._label_bg_flush)
                    except FlowAborted:
                        # The device crashed mid-flush (fault injection).
                        # The whole cache is about to be invalidated, so
                        # just skip the write and keep the flusher alive
                        # for after the repair.
                        flushed -= size
            if flushed > 0:
                self.stats.background_flushed_bytes += flushed
            flushing_time = self.env.now - start
            if flushing_time < interval:
                yield self.env.timeout(interval - flushing_time)

    def stop(self) -> None:
        """Stop the background flusher at its next wake-up."""
        self._running = False

    def __repr__(self) -> str:
        return (
            f"<MemoryManager {self.name!r} total={format_size(self.total_memory)} "
            f"free={format_size(max(0.0, self._free))} "
            f"cached={format_size(self.cached)} dirty={format_size(self.dirty)} "
            f"anon={format_size(self.anonymous)}>"
        )
