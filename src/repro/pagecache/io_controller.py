"""The I/O Controller (Section III.B of the paper).

Applications send chunk read and write requests to the I/O Controller,
which orchestrates flushing, eviction, cache and disk accesses with the
Memory Manager.  This module implements:

* :meth:`IOController.read_chunk` — Algorithm 2 (chunked read, writeback
  or writethrough cache);
* :meth:`IOController.write_chunk` — Algorithm 3 (chunked writeback write);
* :meth:`IOController.write_chunk_through` — the writethrough write path;
* :meth:`IOController.read_file` / :meth:`IOController.write_file` — the
  chunk-by-chunk loops used by applications, which also keep track of the
  per-operation elapsed time reported in the experiments.

All public methods are simulation processes: ``yield`` them from a process
(or wrap them with ``env.process``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.des.environment import Environment
from repro.errors import ConfigurationError
from repro.pagecache.config import PageCacheConfig
from repro.pagecache.memory_manager import MemoryManager
from repro.pagecache.tolerances import BYTE_EPSILON as _EPSILON
from repro.platform.storage import StorageDevice


@dataclass
class IOResult:
    """Outcome of a full-file read or write operation."""

    filename: str
    size: float
    start_time: float
    end_time: float
    #: Bytes served from (reads) or written to (writes) the page cache.
    cache_bytes: float = 0.0
    #: Bytes read from or written to the storage device synchronously.
    storage_bytes: float = 0.0
    #: Number of chunk operations performed.
    chunks: int = 0

    @property
    def elapsed(self) -> float:
        """Wall-clock simulated duration of the operation."""
        return self.end_time - self.start_time

    @property
    def cache_fraction(self) -> float:
        """Fraction of the operation served by the page cache."""
        if self.size <= 0:
            return 0.0
        return self.cache_bytes / self.size


class IOController:
    """Chunk-level file I/O on top of a :class:`MemoryManager`.

    Parameters
    ----------
    env:
        Simulation environment.
    memory_manager:
        The Memory Manager of the host performing the I/O.  ``None`` is
        allowed only for pure writethrough/direct usage where no cache is
        simulated (the cacheless baseline bypasses the controller entirely).
    config:
        Page cache configuration; defaults to the memory manager's.
    """

    def __init__(self, env: Environment, memory_manager: MemoryManager,
                 config: Optional[PageCacheConfig] = None):
        if memory_manager is None:
            raise ConfigurationError("IOController requires a MemoryManager")
        self.env = env
        self.mm = memory_manager
        self.config = config or memory_manager.config

    # -------------------------------------------------------------- chunk read
    def read_chunk(self, filename: str, file_size: float, chunk_size: float,
                   storage: StorageDevice, anonymous_owner: Optional[str] = None,
                   use_anonymous_memory: bool = True):
        """Algorithm 2: read one chunk of ``filename``.

        Returns a ``(disk_read, cache_read)`` tuple with the bytes read from
        storage and from the page cache respectively.
        """
        mm = self.mm
        # Amount of the chunk that must come from storage: uncached data is
        # read first (round-robin access assumption), so the uncached amount
        # of the whole file bounds the storage read of this chunk.
        uncached = max(0.0, file_size - mm.cached_amount(filename))
        disk_read = min(chunk_size, uncached)
        cache_read = chunk_size - disk_read

        # Memory needed: one copy of the chunk in anonymous memory plus the
        # newly cached data.
        required_mem = (chunk_size if use_anonymous_memory else 0.0) + disk_read
        flush_amount = required_mem - mm._free - mm.evictable
        if flush_amount > 0:
            yield from mm.flush(flush_amount, exclude_file=filename)
        evict_amount = required_mem - mm._free
        if evict_amount > 0:
            mm.evict(evict_amount, exclude_file=filename)
            still_needed = required_mem - mm._free
            if still_needed > 0:
                # Last resort when the file being read is the only evictable
                # data (e.g. a file larger than the remaining memory streams
                # through the cache): reclaim its own least recently used
                # blocks, as the kernel does.
                mm.evict(still_needed)

        if disk_read > 0:
            self.mm.stats.record_miss(filename, disk_read)
            yield storage.read(disk_read, label=f"read:{filename}")
            mm.add_to_cache(filename, disk_read, storage, dirty=False)
        if cache_read > 0:
            yield from mm.read_from_cache(filename, cache_read)

        if use_anonymous_memory:
            mm.use_anonymous_memory(chunk_size, owner=anonymous_owner)
        mm.stats.read_ops += 1
        return disk_read, cache_read

    # ------------------------------------------------------------- chunk write
    def write_chunk(self, filename: str, chunk_size: float,
                    storage: StorageDevice):
        """Algorithm 3: write one chunk of ``filename`` with a writeback cache.

        Returns a ``(cache_written, flushed)`` tuple: bytes written to the
        page cache (all of the chunk, eventually) and bytes of dirty data
        flushed synchronously to make room for them.
        """
        mm = self.mm
        total_flushed = 0.0
        mem_amt = 0.0

        remain_dirty = mm.dirty_capacity - mm.lists.dirty_size
        if remain_dirty > 0:
            # There is room below the dirty threshold: write to memory.
            evict_amount = min(chunk_size, remain_dirty) - mm._free
            if evict_amount > 0:
                mm.evict(evict_amount, exclude_file=filename)
            mem_amt = min(chunk_size, max(0.0, mm._free))
            if mem_amt > 0:
                yield from mm.write_to_cache(filename, mem_amt, storage)

        remaining = chunk_size - mem_amt
        while remaining > _EPSILON:
            # Dirty threshold reached: flush, evict, then write the rest.
            flushed = yield from mm.flush(chunk_size - mem_amt,
                                          exclude_file=None)
            total_flushed += flushed
            evict_amount = chunk_size - mem_amt - mm._free
            if evict_amount > 0:
                mm.evict(evict_amount, exclude_file=filename)
            to_cache = min(remaining, max(0.0, mm._free))
            if to_cache <= _EPSILON:
                # No progress is possible through the cache (e.g. dirty data
                # of this very file fills memory): fall back to writing the
                # remainder straight to storage so the simulation cannot
                # deadlock.
                yield storage.write(remaining, label=f"write:{filename}")
                self.mm.stats.direct_write_bytes += remaining
                remaining = 0.0
                break
            yield from mm.write_to_cache(filename, to_cache, storage)
            remaining -= to_cache
        mm.stats.write_ops += 1
        return chunk_size - remaining, total_flushed

    def write_chunk_through(self, filename: str, chunk_size: float,
                            storage: StorageDevice):
        """Writethrough write: synchronous storage write, then cache the data.

        The data is written to storage at disk bandwidth; the cache is
        evicted if needed and the written data is added to the page cache
        (clean, since it is already persisted).
        """
        mm = self.mm
        yield storage.write(chunk_size, label=f"wt-write:{filename}")
        mm.stats.direct_write_bytes += chunk_size
        evict_amount = chunk_size - mm.free_mem
        if evict_amount > 0:
            mm.evict(evict_amount, exclude_file=filename)
        to_cache = min(chunk_size, max(0.0, mm.free_mem))
        if to_cache > 0:
            mm.add_to_cache(filename, to_cache, storage, dirty=False)
        mm.stats.write_ops += 1
        return to_cache

    # ---------------------------------------------------------------- file ops
    def read_file(self, filename: str, file_size: float, storage: StorageDevice,
                  chunk_size: Optional[float] = None,
                  anonymous_owner: Optional[str] = None,
                  use_anonymous_memory: bool = True):
        """Read a whole file chunk by chunk (round-robin page access).

        Returns an :class:`IOResult`.

        The loop body is the :meth:`read_chunk` algorithm specialized for
        the whole-file case: running every chunk inside one generator
        frame (with the synchronous cache halves of the Memory Manager
        called directly) removes a per-chunk generator and two frame
        switches from the simulator's hottest path.  Any behavioural
        change here must be mirrored in :meth:`read_chunk`.
        """
        chunk = chunk_size or self.config.chunk_size
        env = self.env
        mm = self.mm
        stats = mm.stats
        read_label = f"read:{filename}"
        start = env.now
        result = IOResult(filename, file_size, start, start)
        chunks = 0
        storage_bytes = 0.0
        cache_bytes = 0.0
        remaining = file_size
        while remaining > _EPSILON:
            this_chunk = min(chunk, remaining)
            # --- read_chunk, inlined ---
            uncached = max(0.0, file_size - mm.cached_amount(filename))
            disk_read = min(this_chunk, uncached)
            cache_read = this_chunk - disk_read
            required_mem = (this_chunk if use_anonymous_memory else 0.0) + disk_read
            flush_amount = required_mem - mm._free - mm.evictable
            if flush_amount > 0:
                per_device, total = mm.select_flush(flush_amount,
                                                    exclude_file=filename)
                if total > 0:
                    for device, device_amount in per_device.items():
                        yield device.write(device_amount, label=mm._label_flush)
                    stats.flushed_bytes += total
                    stats.flush_ops += 1
            evict_amount = required_mem - mm._free
            if evict_amount > 0:
                mm.evict(evict_amount, exclude_file=filename)
                still_needed = required_mem - mm._free
                if still_needed > 0:
                    mm.evict(still_needed)
            if disk_read > 0:
                stats.record_miss(filename, disk_read)
                yield storage.read(disk_read, label=read_label)
                mm.add_to_cache(filename, disk_read, storage, dirty=False)
            if cache_read > 0:
                served = mm.take_from_cache(filename, cache_read)
                if served > 0:
                    yield mm.memory.read(served, label=mm._label_cache_read)
            if use_anonymous_memory:
                mm.use_anonymous_memory(this_chunk, owner=anonymous_owner)
            stats.read_ops += 1
            # --- end read_chunk ---
            storage_bytes += disk_read
            cache_bytes += cache_read
            chunks += 1
            remaining -= this_chunk
        result.storage_bytes = storage_bytes
        result.cache_bytes = cache_bytes
        result.chunks = chunks
        result.end_time = env.now
        observer = env.observer
        if observer is not None:
            observer.complete(
                read_label, "io", f"io:{storage.name}", start, result.end_time,
                attrs={"bytes": file_size, "cache_bytes": cache_bytes,
                       "storage_bytes": storage_bytes, "chunks": chunks},
            )
        return result

    def write_file(self, filename: str, file_size: float, storage: StorageDevice,
                   chunk_size: Optional[float] = None, writethrough: bool = False):
        """Write a whole file chunk by chunk.

        Returns an :class:`IOResult`.  With ``writethrough=True`` the write
        bypasses the writeback path and goes synchronously to storage.

        As with :meth:`read_file`, the writeback loop body is
        :meth:`write_chunk` specialized into this generator frame; any
        behavioural change here must be mirrored there.
        """
        chunk = chunk_size or self.config.chunk_size
        env = self.env
        mm = self.mm
        stats = mm.stats
        start = env.now
        result = IOResult(filename, file_size, start, start)
        chunks = 0
        storage_bytes = 0.0
        cache_bytes = 0.0
        remaining_file = file_size
        self.mm.mark_file_being_written(filename)
        try:
            while remaining_file > _EPSILON:
                this_chunk = min(chunk, remaining_file)
                if writethrough:
                    cached = yield from self.write_chunk_through(
                        filename, this_chunk, storage
                    )
                    storage_bytes += this_chunk
                    cache_bytes += cached
                else:
                    # --- write_chunk, inlined ---
                    total_flushed = 0.0
                    mem_amt = 0.0
                    remain_dirty = mm.dirty_capacity - mm.lists.dirty_size
                    if remain_dirty > 0:
                        evict_amount = min(this_chunk, remain_dirty) - mm._free
                        if evict_amount > 0:
                            mm.evict(evict_amount, exclude_file=filename)
                        mem_amt = min(this_chunk, max(0.0, mm._free))
                        if mem_amt > 0:
                            mm.put_to_cache(filename, mem_amt, storage)
                            yield mm.memory.write(mem_amt,
                                                  label=mm._label_cache_write)
                    remaining = this_chunk - mem_amt
                    while remaining > _EPSILON:
                        per_device, flushed = mm.select_flush(
                            this_chunk - mem_amt, exclude_file=None
                        )
                        if flushed > 0:
                            for device, device_amount in per_device.items():
                                yield device.write(device_amount,
                                                   label=mm._label_flush)
                            stats.flushed_bytes += flushed
                            stats.flush_ops += 1
                        total_flushed += flushed
                        evict_amount = this_chunk - mem_amt - mm._free
                        if evict_amount > 0:
                            mm.evict(evict_amount, exclude_file=filename)
                        to_cache = min(remaining, max(0.0, mm._free))
                        if to_cache <= _EPSILON:
                            yield storage.write(remaining,
                                                label=f"write:{filename}")
                            stats.direct_write_bytes += remaining
                            remaining = 0.0
                            break
                        mm.put_to_cache(filename, to_cache, storage)
                        yield mm.memory.write(to_cache,
                                              label=mm._label_cache_write)
                        remaining -= to_cache
                    stats.write_ops += 1
                    # --- end write_chunk ---
                    cache_bytes += this_chunk - remaining
                    storage_bytes += total_flushed
                chunks += 1
                remaining_file -= this_chunk
        finally:
            self.mm.unmark_file_being_written(filename)
        result.storage_bytes = storage_bytes
        result.cache_bytes = cache_bytes
        result.chunks = chunks
        result.end_time = env.now
        observer = env.observer
        if observer is not None:
            observer.complete(
                f"write:{filename}", "io", f"io:{storage.name}",
                start, result.end_time,
                attrs={"bytes": file_size, "cache_bytes": cache_bytes,
                       "storage_bytes": storage_bytes, "chunks": chunks,
                       "writethrough": writethrough},
            )
        return result
