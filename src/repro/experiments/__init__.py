"""Evaluation harness: regenerates every table and figure of the paper.

Each ``expN_*`` module exposes a ``run_*`` function producing the data of
one figure, plus a ``*_report`` helper that formats the same rows/series
the paper reports.  The mapping between paper artifacts and modules is:

===========  ==========================================  =========================
Artifact     Content                                      Module
===========  ==========================================  =========================
Table I      synthetic application parameters             ``calibration``
Table II     Nighres application parameters               ``calibration``
Table III    bandwidth benchmarks / simulator config      ``calibration``
Figure 4a    Exp 1 simulation errors                      ``exp1_single``
Figure 4b    Exp 1 memory profiles                        ``exp1_single``
Figure 4c    Exp 1 cache contents                         ``exp1_single``
Figure 5     Exp 2 concurrent local I/O                   ``exp2_concurrent``
Figure 6     Exp 4 Nighres errors                         ``exp4_nighres``
Figure 7     Exp 3 concurrent NFS I/O                     ``exp3_nfs``
Figure 8     simulation-time scaling                      ``exp5_scaling``
(beyond)     Exp 6 cluster batch scheduling               ``exp6_cluster``
(beyond)     Exp 7 SWF trace replay / preemption          ``exp7_trace_replay``
(beyond)     parallel sweep engine                        ``runner``
===========  ==========================================  =========================

The "real execution" columns are produced by a calibrated reference
simulator (see :mod:`repro.experiments.harness` and DESIGN.md §4): the same
page-cache engine run at higher fidelity (asymmetric measured bandwidths,
kernel idiosyncrasies such as eviction protection of files being written).
"""

from repro.experiments.calibration import (
    BandwidthCalibration,
    TABLE1_SYNTHETIC,
    TABLE2_NIGHRES,
    TABLE3_BANDWIDTHS,
)
from repro.experiments.harness import (
    SIMULATORS,
    ScenarioConfig,
    build_simulation,
)
from repro.experiments.metrics import (
    absolute_relative_error,
    mean_absolute_relative_error,
)
from repro.experiments.exp1_single import run_exp1, exp1_errors, EXP1_OPERATIONS
from repro.experiments.exp2_concurrent import run_exp2, sweep_exp2
from repro.experiments.exp3_nfs import run_exp3, sweep_exp3
from repro.experiments.exp4_nighres import run_exp4, exp4_errors
from repro.experiments.exp5_scaling import run_scaling, ScalingPoint
from repro.experiments.exp6_cluster import (
    ClusterPoint,
    exp6_grid,
    exp6_policy_series,
    exp6_report,
    exp6_series,
    run_exp6,
)
from repro.experiments.exp10_warmstart import (
    Exp10Result,
    exp10_report,
    run_exp10,
    snapshot_branch_point,
)
from repro.experiments.runner import (
    PointResult,
    PointSpec,
    SweepPointError,
    derive_point_seed,
    make_spec,
    register_experiment,
    resolve_workers,
    run_named_sweep,
    run_sweep,
    sweep_values,
)

__all__ = [
    "BandwidthCalibration",
    "TABLE1_SYNTHETIC",
    "TABLE2_NIGHRES",
    "TABLE3_BANDWIDTHS",
    "SIMULATORS",
    "ScenarioConfig",
    "build_simulation",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "run_exp1",
    "exp1_errors",
    "EXP1_OPERATIONS",
    "run_exp2",
    "sweep_exp2",
    "run_exp3",
    "sweep_exp3",
    "run_exp4",
    "exp4_errors",
    "run_scaling",
    "ScalingPoint",
    "ClusterPoint",
    "run_exp6",
    "exp6_series",
    "exp6_policy_series",
    "exp6_grid",
    "exp6_report",
    "Exp10Result",
    "run_exp10",
    "exp10_report",
    "snapshot_branch_point",
    "PointSpec",
    "PointResult",
    "SweepPointError",
    "make_spec",
    "run_sweep",
    "run_named_sweep",
    "sweep_values",
    "register_experiment",
    "resolve_workers",
    "derive_point_seed",
]
