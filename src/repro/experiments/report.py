"""Plain-text reports for each paper artifact.

These helpers turn the raw experiment outputs into the rows/series the
paper reports.  The benchmark harness prints them so that running
``pytest benchmarks/ --benchmark-only`` regenerates, in text form, every
table and figure of the evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.tables import format_table
from repro.experiments.calibration import table1_rows, table2_rows, TABLE3_BANDWIDTHS
from repro.experiments.exp1_single import EXP1_OPERATIONS, Exp1Result
from repro.experiments.exp2_concurrent import ConcurrencyPoint
from repro.experiments.exp4_nighres import EXP4_OPERATIONS
from repro.experiments.exp5_scaling import ScalingPoint
from repro.analysis.regression import LinearFit
from repro.units import GB


def table1_report() -> str:
    """Table I as text."""
    return format_table(
        ["Input size (GB)", "CPU time (s)"],
        table1_rows(),
        precision=1,
        title="Table I: Synthetic application parameters",
    )


def table2_report() -> str:
    """Table II as text."""
    return format_table(
        ["Workflow step", "Input size (MB)", "Output size (MB)", "CPU time (s)"],
        table2_rows(),
        precision=0,
        title="Table II: Nighres application parameters",
    )


def table3_report() -> str:
    """Table III as text."""
    return format_table(
        ["Device", "Real read (MBps)", "Real write (MBps)", "Simulator (MBps)"],
        TABLE3_BANDWIDTHS.rows(),
        precision=0,
        title="Table III: Bandwidth benchmarks and simulator configurations",
    )


def exp1_error_report(file_size: float, errors: Dict[str, Dict[str, float]]) -> str:
    """Figure 4a (one file size) as a table of per-operation errors (%)."""
    simulators = list(errors)
    rows: List[List[object]] = []
    for label in EXP1_OPERATIONS:
        rows.append([label] + [errors[sim].get(label, float("nan")) for sim in simulators])
    return format_table(
        ["Operation"] + [f"{sim} error (%)" for sim in simulators],
        rows,
        precision=1,
        title=f"Figure 4a: absolute relative simulation errors ({file_size / GB:.0f} GB)",
    )


def exp1_durations_report(results: Sequence[Exp1Result]) -> str:
    """Per-operation durations for a set of Exp 1 runs (supporting Fig 4a)."""
    rows: List[List[object]] = []
    for label in EXP1_OPERATIONS:
        rows.append([label] + [result.durations[label] for result in results])
    return format_table(
        ["Operation"] + [result.simulator for result in results],
        rows,
        precision=1,
        title="Exp 1 operation durations (s)",
    )


def exp1_cache_report(contents: Dict[str, Dict[str, float]], files: Sequence[str]) -> str:
    """Figure 4c as a table: cached GB per file after each operation."""
    rows: List[List[object]] = []
    for label in EXP1_OPERATIONS:
        per_file = contents.get(label, {})
        rows.append([label] + [per_file.get(name, 0.0) / GB for name in files])
    return format_table(
        ["After operation"] + [str(name) for name in files],
        rows,
        precision=1,
        title="Figure 4c: cache contents after application I/O operations (GB)",
    )


def concurrency_report(title: str, series: Dict[str, List[ConcurrencyPoint]]) -> str:
    """Figures 5/7 as a table: read/write time per simulator and concurrency."""
    simulators = list(series)
    counts = [point.n_apps for point in series[simulators[0]]]
    rows: List[List[object]] = []
    for index, count in enumerate(counts):
        row: List[object] = [count]
        for simulator in simulators:
            point = series[simulator][index]
            row.extend([point.read_time, point.write_time])
        rows.append(row)
    headers = ["Apps"]
    for simulator in simulators:
        headers.extend([f"{simulator} read (s)", f"{simulator} write (s)"])
    return format_table(headers, rows, precision=1, title=title)


def exp4_error_report(errors: Dict[str, Dict[str, float]]) -> str:
    """Figure 6 as a table of per-operation errors (%)."""
    simulators = list(errors)
    rows: List[List[object]] = []
    for label in EXP4_OPERATIONS:
        rows.append([label] + [errors[sim].get(label, float("nan")) for sim in simulators])
    return format_table(
        ["Operation"] + [f"{sim} error (%)" for sim in simulators],
        rows,
        precision=1,
        title="Figure 6: real application (Nighres) simulation errors",
    )


def scaling_report(curves: Dict[str, List[ScalingPoint]],
                   fits: Dict[str, LinearFit]) -> str:
    """Figure 8 as a table plus the fitted regression for each curve."""
    rows: List[List[object]] = []
    for label, points in curves.items():
        fit = fits[label]
        for point in points:
            rows.append([label, point.n_apps, point.wallclock_time, fit.equation(3)])
    return format_table(
        ["Configuration", "Apps", "Simulation time (s)", "Linear fit"],
        rows,
        precision=3,
        title="Figure 8: simulation time vs number of concurrent applications",
    )
