"""Exp 7 — real-workload replay with preemptive priority scheduling.

Exp 6 validated cache-locality-aware placement on a synthetic Poisson
workload; Exp 7 replays a *recorded* cluster log in the Standard Workload
Format (the community trace format of the Parallel Workloads Archive)
against the same simulated cluster.  The bundled anonymized sample trace
(``benchmarks/data/sample.swf``) carries three priority classes encoded as
SWF queues: long low-priority batch jobs that saturate the cluster, medium
normal jobs, and short high-priority interactive jobs arriving throughout.

The experiment compares scheduling policies on the replayed trace.  Under
FIFO, short high-priority jobs queue behind wide batch jobs and their
bounded slowdown explodes; the preemptive priority policy suspends
lower-priority jobs (checkpoint-and-requeue with a configurable lost-work
penalty) and starts urgent jobs almost immediately, trading a bounded
amount of redone work for an order-of-magnitude cut in high-priority
slowdown.  Cache-locality-aware placement keeps its page-cache hit-ratio
edge over round-robin on the replayed workload, showing the two mechanisms
compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.runner import run_named_sweep
from repro.scheduler.metrics import PriorityClassMetrics
from repro.scheduler.swf import SWFTrace, load_swf
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.units import GB, MB

#: Policies compared in the experiment.
EXP7_POLICIES: Tuple[str, ...] = ("fifo", "preemptive-priority")

#: Default experiment scale.
DEFAULT_N_NODES = 8
DEFAULT_CORES_PER_NODE = 8
#: Trace-scaling knobs: compress arrivals 40x and runtimes 50x so the
#: ~20-minute sample trace replays in a few simulated minutes at a load
#: that keeps the cluster saturated (where policy choice matters).
DEFAULT_LOAD_FACTOR = 40.0
DEFAULT_RUNTIME_SCALE = 0.02
DEFAULT_DATASET_SIZE = 1 * GB
DEFAULT_OUTPUT_SIZE = 128 * MB
DEFAULT_CHUNK_SIZE = 100 * MB
#: Compute seconds redone after each preemption (checkpoint restore cost).
DEFAULT_LOST_WORK_PENALTY = 0.5


def default_trace_path() -> Path:
    """Location of the bundled anonymized sample trace."""
    return (
        Path(__file__).resolve().parents[3] / "benchmarks" / "data" / "sample.swf"
    )


@dataclass
class TracePoint:
    """Metrics of one (policy, placement) replay of the trace."""

    policy: str
    placement: str
    n_jobs: int
    n_nodes: int
    makespan: float
    cache_hit_ratio: float
    mean_wait_time: float
    mean_bounded_slowdown: float
    utilization: float
    n_preemptions: int
    #: Per-priority-class summaries, keyed by priority (descending).
    classes: Dict[int, PriorityClassMetrics]
    wallclock_time: float
    #: Fault-injection outcomes (all zero in fault-free replays).
    n_node_failures: int = 0
    n_job_restarts: int = 0
    lost_work_seconds: float = 0.0

    @property
    def high_priority(self) -> PriorityClassMetrics:
        """Summary of the highest priority class."""
        return self.classes[max(self.classes)]

    @property
    def low_priority(self) -> PriorityClassMetrics:
        """Summary of the lowest priority class."""
        return self.classes[min(self.classes)]

    def as_row(self) -> Tuple[object, ...]:
        """Row of the Exp 7 report table."""
        high = self.high_priority
        return (
            self.policy,
            self.placement,
            100.0 * self.cache_hit_ratio,
            self.makespan,
            self.mean_bounded_slowdown,
            high.mean_wait_time,
            high.mean_bounded_slowdown,
            self.n_preemptions,
        )


def build_exp7(policy: str = "preemptive-priority", *,
               placement: str = "cache",
               trace: Union[None, str, Path, SWFTrace] = None,
               n_nodes: int = DEFAULT_N_NODES,
               cores_per_node: int = DEFAULT_CORES_PER_NODE,
               max_jobs: Optional[int] = None,
               load_factor: float = DEFAULT_LOAD_FACTOR,
               runtime_scale: float = DEFAULT_RUNTIME_SCALE,
               dataset_size: float = DEFAULT_DATASET_SIZE,
               output_size: float = DEFAULT_OUTPUT_SIZE,
               chunk_size: float = DEFAULT_CHUNK_SIZE,
               lost_work_penalty: float = DEFAULT_LOST_WORK_PENALTY,
               eviction_policy: object = "lru",
               fault_plan=None) -> Simulation:
    """Build the Exp 7 replay simulation (unstarted), recipe bound.

    The builder/finisher split exists for checkpoint/restore; see
    :mod:`repro.snapshot.recipe`.  A recipe is bound only when ``trace``
    is ``None`` or a path — an in-memory :class:`SWFTrace` object is not
    JSON-serializable, so such simulations cannot be snapshotted.
    """
    trace_param = None if trace is None else (
        trace if isinstance(trace, SWFTrace) else str(trace)
    )
    if trace is None:
        trace = default_trace_path()
    if not isinstance(trace, SWFTrace):
        trace_path = Path(trace)
        if not trace_path.exists():
            raise ConfigurationError(
                f"SWF trace {trace_path} not found; pass trace= explicitly"
            )
        trace = load_swf(trace_path)

    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback",
            chunk_size=chunk_size,
            trace_interval=None,
        ),
        eviction_policy=(None if eviction_policy == "lru" else eviction_policy),
        fault_plan=fault_plan,
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(
        policy=policy,
        placement=placement,
        lost_work_penalty=lost_work_penalty,
    )
    simulation.submit_trace(
        trace,
        max_jobs=max_jobs,
        load_factor=load_factor,
        runtime_scale=runtime_scale,
        dataset_size=dataset_size,
        output_size=output_size,
    )
    if not isinstance(trace_param, SWFTrace):
        from repro.snapshot.recipe import SimRecipe

        simulation.bind_recipe(SimRecipe("exp7", dict(
            policy=policy, placement=placement, trace=trace_param,
            n_nodes=n_nodes, cores_per_node=cores_per_node,
            max_jobs=max_jobs, load_factor=load_factor,
            runtime_scale=runtime_scale, dataset_size=dataset_size,
            output_size=output_size, chunk_size=chunk_size,
            lost_work_penalty=lost_work_penalty,
            eviction_policy=eviction_policy, fault_plan=fault_plan,
        )))
    return simulation


def finish_exp7(result, policy: str = "preemptive-priority", *,
                placement: str = "cache",
                n_nodes: int = DEFAULT_N_NODES, **_params) -> TracePoint:
    """Reduce a finished Exp 7 ``SimulationResult`` to its point metrics."""
    metrics = result.scheduler
    return TracePoint(
        policy=policy,
        placement=placement,
        n_jobs=metrics.n_jobs,
        n_nodes=n_nodes,
        makespan=metrics.makespan,
        cache_hit_ratio=result.read_cache_hit_ratio(),
        mean_wait_time=metrics.mean_wait_time,
        mean_bounded_slowdown=metrics.mean_bounded_slowdown(),
        utilization=metrics.utilization,
        n_preemptions=metrics.n_preemptions,
        classes=metrics.priority_class_metrics(),
        wallclock_time=result.wallclock_time,
        n_node_failures=metrics.n_node_failures,
        n_job_restarts=metrics.n_job_restarts,
        lost_work_seconds=metrics.lost_work_seconds,
    )


def run_exp7(policy: str = "preemptive-priority", **params) -> TracePoint:
    """Replay the trace under one policy and return its metrics.

    ``eviction_policy`` selects every node cache's victim-selection policy
    (swept by the exp8 policy ablation); the default LRU keeps the replay
    bit-identical to the pre-policy simulator.  ``fault_plan`` injects
    seeded node crashes / stragglers / elasticity (exp9); ``None`` and the
    zero plan leave the replay untouched.
    """
    simulation = build_exp7(policy, **params)
    result = simulation.run()
    return finish_exp7(result, policy, **params)


def exp7_series(policies: Sequence[str] = EXP7_POLICIES, *,
                placement: str = "cache",
                workers: Union[None, int, str] = None,
                progress=None,
                **kwargs) -> Dict[str, TracePoint]:
    """Replay the same trace under every policy.

    One sweep point per policy (the trace travels in the spec — an
    :class:`~repro.scheduler.swf.SWFTrace` pickles as plain dataclasses,
    a path is loaded inside the worker), fanned out across ``workers``
    processes via :func:`~repro.experiments.runner.run_named_sweep`.
    """
    return run_named_sweep(
        "exp7",
        {
            policy: dict(policy=policy, placement=placement, **kwargs)
            for policy in policies
        },
        workers=workers,
        progress=progress,
    )


def exp7_placement_series(placements: Sequence[str] = ("round-robin", "cache"), *,
                          policy: str = "preemptive-priority",
                          workers: Union[None, int, str] = None,
                          progress=None,
                          **kwargs) -> Dict[str, TracePoint]:
    """Replay the same trace under every placement strategy."""
    return run_named_sweep(
        "exp7",
        {
            placement: dict(policy=policy, placement=placement, **kwargs)
            for placement in placements
        },
        workers=workers,
        progress=progress,
    )


def exp7_report(points: Dict[str, TracePoint],
                title: Optional[str] = None) -> str:
    """Render the Exp 7 comparison as a plain-text table."""
    first = next(iter(points.values()))
    header = title or (
        f"Exp 7 — SWF trace replay: {first.n_jobs} jobs over "
        f"{first.n_nodes} nodes (placement: {first.placement})"
    )
    return format_table(
        [
            "Policy",
            "Placement",
            "Cache hit (%)",
            "Makespan (s)",
            "Slowdown (all)",
            "High-prio wait (s)",
            "High-prio slowdown",
            "Preemptions",
        ],
        [point.as_row() for point in points.values()],
        title=header,
        precision=2,
    )
