"""Simulation-time scalability (Figure 8).

The paper measures the wall-clock time needed to *run the simulation* as a
function of the number of concurrent applications, for WRENCH and
WRENCH-cache, with local and NFS I/O, and fits a linear regression to each
curve.  WRENCH-cache scales linearly like WRENCH, with a higher per-
application overhead; it is faster with NFS than with local I/O because the
writethrough server cache bypasses the flushing machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.regression import LinearFit, linear_fit
from repro.experiments.exp2_concurrent import DEFAULT_INPUT_SIZE, run_exp2
from repro.experiments.runner import PointResult, make_spec, sweep_values
from repro.units import MB

#: The four curves plotted in Figure 8.
SCALING_CONFIGS: Tuple[Tuple[str, bool], ...] = (
    ("wrench", False),
    ("wrench", True),
    ("wrench-cache", False),
    ("wrench-cache", True),
)


@dataclass
class ScalingPoint:
    """Wall-clock simulation time for one (simulator, storage, #apps) point."""

    simulator: str
    nfs: bool
    n_apps: int
    wallclock_time: float
    simulated_makespan: float

    @property
    def label(self) -> str:
        """Curve label, e.g. ``"WRENCH-cache (NFS)"``."""
        pretty = "WRENCH-cache" if self.simulator == "wrench-cache" else "WRENCH"
        return f"{pretty} ({'NFS' if self.nfs else 'local'})"


def measure_point(simulator: str, n_apps: int, *, nfs: bool,
                  input_size: float = DEFAULT_INPUT_SIZE,
                  chunk_size: float = 100 * MB) -> ScalingPoint:
    """Measure the wall-clock time of one simulation run."""
    start = time.perf_counter()
    result = run_exp2(
        simulator, n_apps, input_size=input_size, chunk_size=chunk_size, nfs=nfs
    )
    elapsed = time.perf_counter() - start
    return ScalingPoint(
        simulator=simulator,
        nfs=nfs,
        n_apps=n_apps,
        wallclock_time=elapsed,
        simulated_makespan=result.makespan,
    )


def run_scaling(counts: Sequence[int] = (1, 4, 8, 16, 24, 32), *,
                configs: Sequence[Tuple[str, bool]] = SCALING_CONFIGS,
                input_size: float = DEFAULT_INPUT_SIZE,
                chunk_size: float = 100 * MB,
                workers: Union[None, int, str] = None,
                progress: Optional[Callable[[PointResult, int, int], None]] = None,
                ) -> Dict[str, List[ScalingPoint]]:
    """Measure every curve of Figure 8.

    Returns ``{curve label: [ScalingPoint, ...]}``.

    The whole (config × count) grid runs as one flat sweep through
    :mod:`repro.experiments.runner`; the *simulated* outputs are identical
    for any ``workers`` value.  Note that each point's ``wallclock_time``
    is measured inside its worker, so with more workers than cores the
    per-point wall-clock readings contend — keep the default serial mode
    when the measurement itself is the result (Figure 8), use workers
    when only the simulated outputs matter.
    """
    counts = list(counts)
    configs = list(configs)
    specs = [
        make_spec(
            "exp5-point",
            label=f"exp5[{simulator},{'nfs' if nfs else 'local'},{n_apps}]",
            simulator=simulator,
            n_apps=n_apps,
            nfs=nfs,
            input_size=input_size,
            chunk_size=chunk_size,
        )
        for simulator, nfs in configs
        for n_apps in counts
    ]
    values = sweep_values(specs, workers=workers, progress=progress)
    per_curve = len(counts)
    curves: Dict[str, List[ScalingPoint]] = {}
    for i in range(len(configs)):
        points = values[i * per_curve:(i + 1) * per_curve]
        curves[points[0].label] = points
    return curves


def scaling_regressions(curves: Dict[str, List[ScalingPoint]]) -> Dict[str, LinearFit]:
    """Linear regression of wall-clock time vs number of applications.

    This reproduces the ``y = a x + b`` annotations of Figure 8 and the
    reported linearity (p < 1e-24 in the paper; with fewer points here the
    p-value is larger but the fit is still strongly linear).
    """
    fits: Dict[str, LinearFit] = {}
    for label, points in curves.items():
        xs = [float(point.n_apps) for point in points]
        ys = [point.wallclock_time for point in points]
        fits[label] = linear_fit(xs, ys)
    return fits
