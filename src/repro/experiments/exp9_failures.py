"""Exp 9 — scheduling under failures, stragglers and elastic capacity.

Exps 6 and 7 measured cache-aware batch scheduling on a healthy cluster;
Exp 9 asks what the same workloads cost when the cluster is *not* healthy.
A seeded :class:`~repro.faults.FaultPlan` crashes nodes with exponential
MTBF/MTTR (killed jobs are checkpoint-rolled-back and requeued, the
node's page cache comes back cold), optionally slows nodes down
(stragglers) and optionally adds burstable capacity that joins late and
drains before leaving.

The headline measurement is degradation versus the fault-free baseline of
the *same seeded workload*: makespan ratio and mean bounded slowdown as a
function of MTBF, plus the fault-tolerance invariant that every submitted
job still completes (restarted as often as needed).  Every point is
deterministic — same seeds, same fault times, same schedule — and
independent of the sweep worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.runner import run_named_sweep
from repro.faults import ElasticNodeSpec, FaultPlan, NodeFaultSpec, StragglerSpec

#: Workloads the failure sweep can replay.
EXP9_WORKLOADS: Tuple[str, ...] = ("exp6", "exp7")

#: Default per-node MTBF sweep (simulated seconds); ``None`` = no faults.
EXP9_MTBFS: Tuple[Optional[float], ...] = (None, 120.0, 60.0, 30.0)

#: Default repair time (mean, exponential).
DEFAULT_MTTR = 10.0
#: Default seed of the fault plan (independent of the workload seed).
DEFAULT_FAULT_SEED = 1
#: Default scale of the exp6-workload cells: large enough for failures to
#: matter, small enough for a sweep to stay interactive.
DEFAULT_N_JOBS = 60
DEFAULT_N_NODES = 6
DEFAULT_N_DATASETS = 12


@dataclass
class FailurePoint:
    """Metrics of one fault-injected run of a seeded workload."""

    workload: str
    mtbf: Optional[float]
    mttr: float
    fault_seed: int
    n_jobs: int
    n_submitted: int
    makespan: float
    mean_bounded_slowdown: float
    cache_hit_ratio: float
    utilization: float
    n_node_failures: int
    n_job_restarts: int
    lost_work_seconds: float
    wallclock_time: float
    stragglers: bool = False
    elastic: bool = False

    @property
    def all_jobs_completed(self) -> bool:
        """The fault-tolerance invariant: nothing submitted was lost."""
        return self.n_jobs == self.n_submitted

    def as_row(self, baseline: Optional["FailurePoint"] = None,
               ) -> Tuple[object, ...]:
        """Row of the Exp 9 report table (degradation vs ``baseline``)."""
        ratio = (
            self.makespan / baseline.makespan
            if baseline is not None and baseline.makespan > 0 else 1.0
        )
        return (
            self.workload,
            "inf" if self.mtbf is None else f"{self.mtbf:g}",
            self.n_node_failures,
            self.n_job_restarts,
            self.lost_work_seconds,
            self.makespan,
            ratio,
            self.mean_bounded_slowdown,
            100.0 * self.cache_hit_ratio,
        )


def build_fault_plan(mtbf: Optional[float], *,
                     mttr: float = DEFAULT_MTTR,
                     fault_seed: int = DEFAULT_FAULT_SEED,
                     stragglers: bool = False,
                     straggler_factor: float = 0.5,
                     straggler_duration: float = 20.0,
                     straggler_period: float = 60.0,
                     elastic_nodes: Sequence[str] = (),
                     elastic_join: float = 0.0,
                     elastic_leave: Optional[float] = None,
                     first_failure_after: float = 0.0) -> FaultPlan:
    """The experiment's fault plan for one MTBF point.

    ``mtbf=None`` yields the zero plan (fault-free baseline) unless
    stragglers or elastic nodes are requested.  Crashes apply to every
    node independently; stragglers are periodic wildcard windows with
    seeded de-synchronised phases.
    """
    node_faults: Tuple[NodeFaultSpec, ...] = ()
    if mtbf is not None:
        node_faults = (NodeFaultSpec(
            mtbf=mtbf, mttr=mttr, first_failure_after=first_failure_after,
        ),)
    straggler_specs: Tuple[StragglerSpec, ...] = ()
    if stragglers:
        straggler_specs = (StragglerSpec(
            compute_factor=straggler_factor,
            io_factor=straggler_factor,
            duration=straggler_duration,
            period=straggler_period,
            max_delay=straggler_period,
        ),)
    elastic_specs = tuple(
        ElasticNodeSpec(node=name, join_time=elastic_join,
                        leave_time=elastic_leave)
        for name in elastic_nodes
    )
    return FaultPlan(
        seed=fault_seed,
        node_faults=node_faults,
        stragglers=straggler_specs,
        elastic=elastic_specs,
    )


def run_exp9(workload: str = "exp6", mtbf: Optional[float] = 60.0, *,
             mttr: float = DEFAULT_MTTR,
             fault_seed: int = DEFAULT_FAULT_SEED,
             stragglers: bool = False,
             elastic: bool = False,
             elastic_join: float = 10.0,
             elastic_leave: Optional[float] = None,
             **kwargs) -> FailurePoint:
    """Run one fault-injected cell of the exp6 or exp7 workload.

    ``mtbf=None`` runs the fault-free baseline of the same seeded
    workload.  ``elastic=True`` withholds the last node until
    ``elastic_join`` (and drains it from ``elastic_leave`` on, when set).
    Remaining keyword arguments go to the underlying workload runner
    (:func:`~repro.experiments.exp6_cluster.run_exp6` or
    :func:`~repro.experiments.exp7_trace_replay.run_exp7`).
    """
    if workload not in EXP9_WORKLOADS:
        raise ConfigurationError(
            f"unknown exp9 workload {workload!r}; choose from {EXP9_WORKLOADS}"
        )
    if workload == "exp6":
        from repro.experiments.exp6_cluster import run_exp6

        params = dict(
            n_jobs=DEFAULT_N_JOBS,
            n_nodes=DEFAULT_N_NODES,
            n_datasets=DEFAULT_N_DATASETS,
        )
        params.update(kwargs)
        n_nodes = params["n_nodes"]
        n_submitted = params["n_jobs"]
        elastic_nodes = (f"node{n_nodes}",) if elastic else ()
        plan = build_fault_plan(
            mtbf, mttr=mttr, fault_seed=fault_seed, stragglers=stragglers,
            elastic_nodes=elastic_nodes, elastic_join=elastic_join,
            elastic_leave=elastic_leave,
        )
        point = run_exp6(fault_plan=plan, **params)
        return FailurePoint(
            workload=workload,
            mtbf=mtbf,
            mttr=mttr,
            fault_seed=fault_seed,
            n_jobs=point.n_jobs,
            n_submitted=n_submitted,
            makespan=point.makespan,
            mean_bounded_slowdown=point.mean_bounded_slowdown,
            cache_hit_ratio=point.cache_hit_ratio,
            utilization=point.utilization,
            n_node_failures=point.n_node_failures,
            n_job_restarts=point.n_job_restarts,
            lost_work_seconds=point.lost_work_seconds,
            wallclock_time=point.wallclock_time,
            stragglers=stragglers,
            elastic=elastic,
        )

    from repro.experiments.exp7_trace_replay import run_exp7

    params = dict(kwargs)
    n_nodes = params.get("n_nodes", 8)
    elastic_nodes = (f"node{n_nodes}",) if elastic else ()
    plan = build_fault_plan(
        mtbf, mttr=mttr, fault_seed=fault_seed, stragglers=stragglers,
        elastic_nodes=elastic_nodes, elastic_join=elastic_join,
        elastic_leave=elastic_leave,
    )
    point = run_exp7(fault_plan=plan, **params)
    return FailurePoint(
        workload=workload,
        mtbf=mtbf,
        mttr=mttr,
        fault_seed=fault_seed,
        n_jobs=point.n_jobs,
        n_submitted=point.n_jobs,
        makespan=point.makespan,
        mean_bounded_slowdown=point.mean_bounded_slowdown,
        cache_hit_ratio=point.cache_hit_ratio,
        utilization=point.utilization,
        n_node_failures=point.n_node_failures,
        n_job_restarts=point.n_job_restarts,
        lost_work_seconds=point.lost_work_seconds,
        wallclock_time=point.wallclock_time,
        stragglers=stragglers,
        elastic=elastic,
    )


def exp9_series(mtbfs: Sequence[Optional[float]] = EXP9_MTBFS, *,
                workload: str = "exp6",
                workers: Union[None, int, str] = None,
                progress=None,
                **kwargs) -> Dict[Optional[float], FailurePoint]:
    """Makespan/slowdown degradation of one workload as MTBF shrinks.

    One sweep point per MTBF (``None`` = fault-free baseline), fanned out
    across ``workers`` processes; the result dict is keyed by MTBF and
    independent of the worker count.
    """
    return run_named_sweep(
        "exp9",
        {
            mtbf: dict(workload=workload, mtbf=mtbf, **kwargs)
            for mtbf in mtbfs
        },
        workers=workers,
        progress=progress,
    )


def exp9_report(points: Dict[Optional[float], FailurePoint],
                title: Optional[str] = None) -> str:
    """Render the Exp 9 degradation sweep as a plain-text table."""
    first = next(iter(points.values()))
    baseline = points.get(None)
    header = title or (
        f"Exp 9 — {first.workload} workload under node failures "
        f"(MTTR {first.mttr:g}s, fault seed {first.fault_seed})"
    )
    return format_table(
        [
            "Workload",
            "MTBF (s)",
            "Crashes",
            "Restarts",
            "Lost work (s)",
            "Makespan (s)",
            "vs baseline",
            "Bounded slowdown",
            "Cache hit (%)",
        ],
        [point.as_row(baseline) for point in points.values()],
        title=header,
        precision=2,
    )
