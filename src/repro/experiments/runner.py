"""Parallel sweep engine: deterministic fan-out of independent points.

The paper's figures are *sweeps* — dozens of independent (simulator,
scenario, workload-knob) simulation runs whose results are assembled into
one table or curve.  Every point is completely independent of the others,
which makes the sweep embarrassingly parallel; this module turns that
observation into a process-pool engine with three hard guarantees:

**Determinism.**  Results are returned in spec-submission order, and any
randomness a point needs is derived from an explicit seed via
:func:`derive_point_seed` (:mod:`repro.rng` under the hood), never from
worker identity, scheduling order or wall clock.  The output of a sweep is
therefore byte-identical for *any* worker count, including the inline
``workers=1`` mode — the property the determinism tests pin down.

**Nothing unpicklable crosses the process boundary.**  A point travels as
a small :class:`PointSpec` (an experiment name registered in
:data:`EXPERIMENTS` plus picklable keyword arguments); the simulation
itself is built *inside* the worker, spec-driven, through the experiment
functions (which construct via
:func:`repro.experiments.harness.build_simulation`).  What comes back is a
:class:`PointResult` wrapping the experiment's plain-dataclass value.

**Failures carry their spec.**  A point that raises in a worker surfaces
in the parent as a :class:`SweepPointError` with the failing
:class:`PointSpec` attached and the remote traceback in the message;
remaining queued points are cancelled.  ``KeyboardInterrupt`` cancels the
queue and shuts the pool down cleanly before re-raising.

The worker count resolves, in order: the explicit ``workers=`` argument,
the ``REPRO_WORKERS`` environment variable (an integer, or ``auto`` for
the CPU count), then ``1`` (inline, no subprocesses) — so existing serial
callers and the parity suite are unaffected unless parallelism is asked
for.
"""

from __future__ import annotations

import importlib
import os
import pickle
import shutil
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SimulationError
from repro.rng import derive_seed

#: Patchable sleep used between point retries (tests stub it out).
_sleep = time.sleep

#: Environment variable consulted when ``workers`` is not passed explicitly.
WORKERS_ENV = "REPRO_WORKERS"

#: Registered experiment kinds.  Values are either callables or lazy
#: ``"module:attribute"`` strings (resolved at execution time, in the
#: worker, so the registry itself stays import-cycle-free and picklable
#: specs never carry function objects).
EXPERIMENTS: Dict[str, Union[str, Callable[..., Any]]] = {
    "exp1": "repro.experiments.exp1_single:run_exp1",
    "exp2": "repro.experiments.exp2_concurrent:run_exp2",
    "exp3": "repro.experiments.exp3_nfs:run_exp3",
    "exp4": "repro.experiments.exp4_nighres:run_exp4",
    "exp5-point": "repro.experiments.exp5_scaling:measure_point",
    "exp6": "repro.experiments.exp6_cluster:run_exp6",
    "exp7": "repro.experiments.exp7_trace_replay:run_exp7",
    "exp8": "repro.experiments.exp8_policy_ablation:run_exp8",
    "exp9": "repro.experiments.exp9_failures:run_exp9",
    "exp10": "repro.experiments.exp10_warmstart:run_exp10",
}


def register_experiment(name: str,
                        target: Union[str, Callable[..., Any]]) -> None:
    """Register an experiment kind for spec-driven execution.

    ``target`` is a callable or a ``"module:attribute"`` string.  String
    targets work with every pool start method; bare callables require a
    fork-based pool (the default on Linux) or inline execution, because
    spawn-started workers re-import modules and only see registrations
    made at import time.
    """
    if not callable(target) and ":" not in str(target):
        raise ConfigurationError(
            f"experiment target must be a callable or 'module:attr' string, "
            f"got {target!r}"
        )
    EXPERIMENTS[name] = target


def experiment_fn(name: str) -> Callable[..., Any]:
    """Resolve a registered experiment name to its callable."""
    try:
        target = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: {sorted(EXPERIMENTS)}"
        ) from None
    if callable(target):
        return target
    module_name, _, attr = target.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def derive_point_seed(base_seed: int, key: str) -> int:
    """Derive a per-point seed from ``(base_seed, key)``.

    Stable across platforms, processes and worker counts (SHA-256 based,
    see :mod:`repro.rng`), so a sweep's random workloads do not depend on
    which worker runs which point.
    """
    return derive_seed(base_seed, key)


@dataclass(frozen=True)
class PointSpec:
    """One independent simulation point of a sweep.

    Attributes
    ----------
    experiment:
        Name of a registered experiment kind (see :data:`EXPERIMENTS`).
    params:
        Keyword arguments for the experiment function, as a sorted tuple
        of ``(name, value)`` pairs; every value must be picklable.
    label:
        Human-readable point label used in error messages and progress
        reporting; defaults to ``experiment``.
    seed_key:
        When set (together with ``run_sweep(base_seed=...)``), the engine
        injects ``seed=derive_point_seed(base_seed, seed_key)`` into the
        experiment's keyword arguments — per-point seed derivation that is
        independent of point order and worker count.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...] = ()
    label: Optional[str] = None
    seed_key: Optional[str] = None

    def kwargs(self) -> Dict[str, Any]:
        """The spec's parameters as a keyword-argument dict."""
        return dict(self.params)

    @property
    def name(self) -> str:
        """Display name of the point."""
        return self.label or self.experiment

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"<PointSpec {self.name!r}: {self.experiment}({inner})>"


def make_spec(experiment: str, *, label: Optional[str] = None,
              seed_key: Optional[str] = None, **params: Any) -> PointSpec:
    """Build a :class:`PointSpec` from keyword arguments.

    Parameters are sorted by name so two specs built from the same
    arguments compare (and pickle) identically regardless of call-site
    keyword order.
    """
    return PointSpec(
        experiment=experiment,
        params=tuple(sorted(params.items())),
        label=label,
        seed_key=seed_key,
    )


@dataclass
class PointResult:
    """Outcome of one executed sweep point.

    ``wallclock_time`` is the in-worker execution time of the point and
    ``pid`` the worker process id — diagnostics only: neither is
    deterministic, so result tables must be built from ``value``.
    """

    spec: PointSpec
    index: int
    value: Any
    wallclock_time: float
    pid: int


class SweepPointError(SimulationError):
    """A sweep point failed; carries the failing spec and its index."""

    def __init__(self, spec: PointSpec, index: int, message: str):
        super().__init__(
            f"sweep point #{index} ({spec.name!r}) failed: {message}"
        )
        self.spec = spec
        self.index = index


class PointTimeoutError(SimulationError):
    """A sweep point exceeded its wall-clock ``timeout=`` budget."""


@dataclass(frozen=True)
class PointOptions:
    """Per-point execution policy, shipped to the worker with the spec.

    Attributes
    ----------
    timeout:
        Wall-clock seconds one attempt of the point may run before being
        interrupted with :class:`PointTimeoutError` (``None`` = no limit).
        Enforced with ``SIGALRM`` on a Unix main thread and with an
        async-exception watchdog thread everywhere else.
    retries:
        Extra attempts after a failed one.  Every attempt runs with the
        *identical* derived seed and parameters — a retried point is a
        reseeded-identical rerun, so a flaky-environment retry can never
        change the sweep's results.
    retry_backoff:
        Base of the exponential backoff between attempts: attempt ``k``
        sleeps ``retry_backoff * 2**k`` seconds (via the patchable
        module-level ``_sleep``).
    checkpoint_dir:
        Directory of the sweep's crash-recovery state: finished point
        values are cached here (a re-run sweep skips them), and with
        ``snapshot_plan`` set, in-progress points keep their simulator
        snapshots here.
    snapshot_plan:
        A :class:`~repro.snapshot.plan.SnapshotPlan`; points whose
        experiment has a registered snapshot builder then run under
        :func:`~repro.snapshot.run.run_checkpointed` and *resume from
        their last snapshot* after a crash, a kill or a timeout retry.
    """

    timeout: Optional[float] = None
    retries: int = 0
    retry_backoff: float = 0.5
    checkpoint_dir: Optional[str] = None
    snapshot_plan: Optional[Any] = None


_DEFAULT_OPTIONS = PointOptions()


def resolve_workers(workers: Union[None, int, str] = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_WORKERS``, then 1.

    ``"auto"`` (argument or environment) means the machine's CPU count.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        workers = env
    if isinstance(workers, str):
        if workers.lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(workers)
        except ValueError:
            raise ConfigurationError(
                f"workers must be a positive integer or 'auto', got {workers!r}"
            ) from None
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return int(workers)


# ------------------------------------------------------------------ execution
def _describe_exception(exc: BaseException) -> Tuple[str, str, str]:
    """Reduce an exception to three plain strings (type, message, traceback).

    Defensive by construction: a hostile ``__str__``/``__repr__`` (or an
    exception raised while *formatting* the traceback) must not replace
    the point's failure report with a formatting failure, so every lossy
    step falls back to the next cruder one.
    """
    try:
        message = str(exc)
    except BaseException:  # noqa: BLE001 - fall back to repr, then type
        try:
            message = repr(exc)
        except BaseException:  # noqa: BLE001
            message = "<unprintable exception>"
    try:
        remote_tb = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
    except BaseException:  # noqa: BLE001
        remote_tb = "<traceback unavailable>"
    return type(exc).__name__, message, remote_tb


@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Interrupt the enclosed block after ``seconds`` of wall-clock time.

    On a Unix main thread this uses ``SIGALRM``/``setitimer``.  Anywhere
    else — a sweep driven from a worker thread, or a platform without
    ``SIGALRM`` — it falls back to a watchdog thread that injects
    :class:`PointTimeoutError` into the running thread via CPython's
    ``PyThreadState_SetAsyncExc``, so the limit is enforced everywhere a
    CPU-bound simulation can run.  If neither mechanism is available the
    limit raises :class:`~repro.errors.ConfigurationError` up front
    instead of silently running unbounded.
    """
    if seconds is None:
        yield
        return
    import signal
    import threading

    if (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()):

        def _on_alarm(signum, frame):
            raise PointTimeoutError(
                f"point exceeded its wall-clock timeout of {seconds}s"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        return

    with _async_exc_limit(seconds):
        yield


@contextmanager
def _async_exc_limit(seconds: float):
    """Watchdog-thread timeout for threads that cannot receive signals.

    ``PyThreadState_SetAsyncExc`` schedules the exception at the target
    thread's next bytecode boundary, which is exactly where a pure-Python
    simulation loop spends its time.  The pending exception is cleared on
    exit in case the watchdog fired just as the block finished.
    """
    import ctypes
    import threading

    api = getattr(ctypes, "pythonapi", None)
    set_async_exc = getattr(api, "PyThreadState_SetAsyncExc", None)
    if set_async_exc is None:
        raise ConfigurationError(
            "timeout= needs SIGALRM on a Unix main thread or CPython's "
            "PyThreadState_SetAsyncExc; neither is available here — run "
            "the sweep from the main thread or drop the timeout"
        )
    target = ctypes.c_ulong(threading.get_ident())
    finished = threading.Event()

    def _watchdog() -> None:
        if finished.wait(seconds):
            return
        hit = set_async_exc(target, ctypes.py_object(PointTimeoutError))
        if hit > 1:  # pragma: no cover - CPython contract: undo a misfire
            set_async_exc(target, None)

    watchdog = threading.Thread(target=_watchdog,
                                name="point-timeout-watchdog", daemon=True)
    watchdog.start()
    try:
        yield
    except PointTimeoutError:
        raise PointTimeoutError(
            f"point exceeded its wall-clock timeout of {seconds}s"
        ) from None
    finally:
        finished.set()
        watchdog.join()
        set_async_exc(target, None)  # drop a not-yet-delivered injection


def point_cache_key(spec: PointSpec, seed: Optional[int]) -> str:
    """Deterministic identity of one point: experiment + params + seed.

    The canonical-JSON hash is stable across processes and platforms, so
    a resumed sweep recognizes its own cached values and snapshots.
    """
    from repro.snapshot.canonical import canonical_json
    import hashlib

    doc = canonical_json({
        "experiment": spec.experiment,
        "params": dict(spec.params),
        "seed": seed,
    })
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


def _point_value_path(checkpoint_dir: str, key: str) -> Path:
    return Path(checkpoint_dir) / f"point-{key}.pkl"


def _point_snapshot_dir(checkpoint_dir: str, key: str) -> Path:
    return Path(checkpoint_dir) / f"run-{key}"


def _load_cached_value(checkpoint_dir: str, key: str):
    """Return ``(True, value)`` if the point's value is cached, else ``(False, None)``."""
    path = _point_value_path(checkpoint_dir, key)
    if not path.exists():
        return False, None
    try:
        with open(path, "rb") as handle:
            return True, pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        # A corrupt or stale cache entry is recomputed, never fatal.
        return False, None


def _store_cached_value(checkpoint_dir: str, key: str, value) -> None:
    path = _point_value_path(checkpoint_dir, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(value, handle)
    os.replace(tmp, path)
    # The value is final: the point's simulator snapshots are dead weight.
    shutil.rmtree(_point_snapshot_dir(checkpoint_dir, key),
                  ignore_errors=True)


def _run_point_checkpointed(spec: PointSpec, kwargs: Dict[str, Any],
                            options: PointOptions, key: str):
    """Run one point under the snapshot machinery, resuming if possible."""
    from repro.snapshot.recipe import SimRecipe, build_from_recipe, finish_point
    from repro.snapshot.run import (
        latest_snapshot,
        restore_simulation,
        run_checkpointed,
    )

    recipe = SimRecipe(spec.experiment, dict(kwargs))
    directory = _point_snapshot_dir(options.checkpoint_dir, key)
    newest = latest_snapshot(directory)
    if newest is not None:
        sim = restore_simulation(newest)
    else:
        sim = build_from_recipe(recipe)
    result, _ = run_checkpointed(sim, options.snapshot_plan, directory)
    return finish_point(recipe, result)


def _run_point(spec: PointSpec, kwargs: Dict[str, Any],
               options: PointOptions, seed: Optional[int]):
    """One attempt of one point, honoring the snapshot options."""
    if (options.snapshot_plan is not None
            and options.checkpoint_dir is not None):
        from repro.snapshot.recipe import BUILDERS

        if spec.experiment in BUILDERS:
            return _run_point_checkpointed(
                spec, kwargs, options, point_cache_key(spec, seed)
            )
    fn = experiment_fn(spec.experiment)
    return fn(**kwargs)


def _execute_point(
    payload: Tuple[int, PointSpec, Optional[int], PointOptions]
):
    """Run one point (in a worker or inline) and report success or failure.

    Returns ``(index, ok, value_or_error, elapsed, pid)``.  Failures are
    returned as ``(type name, message, formatted traceback)`` — three
    plain strings — rather than raised, so arbitrary (possibly
    unpicklable) exceptions never poison the pool's result channel.
    Honors the payload's :class:`PointOptions`: each attempt runs under
    the wall-clock ``timeout``, failed attempts are retried up to
    ``retries`` times with exponential backoff and the *identical* seed,
    and checkpointed points resume from their last snapshot.
    """
    index, spec, seed, options = payload
    kwargs = spec.kwargs()
    if seed is not None:
        kwargs["seed"] = seed
    attempts = max(0, options.retries) + 1
    start = time.perf_counter()
    detail = ("SimulationError", "point never ran", "")
    for attempt in range(attempts):
        try:
            with _wall_clock_limit(options.timeout):
                value = _run_point(spec, kwargs, options, seed)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 - reported with the spec
            type_name, message, remote_tb = _describe_exception(exc)
            if attempt + 1 < attempts:
                _sleep(options.retry_backoff * (2 ** attempt))
                continue
            if attempts > 1:
                message = f"(after {attempts} attempts) {message}"
            detail = (type_name, message, remote_tb)
        else:
            elapsed = time.perf_counter() - start
            if options.checkpoint_dir is not None:
                try:
                    _store_cached_value(
                        options.checkpoint_dir,
                        point_cache_key(spec, seed), value,
                    )
                except (OSError, pickle.PickleError):
                    pass  # caching is best-effort; the value still returns
            return index, True, value, elapsed, os.getpid()
    return index, False, detail, time.perf_counter() - start, os.getpid()


def _payloads(
    specs: Sequence[PointSpec], base_seed: Optional[int],
    options: PointOptions = _DEFAULT_OPTIONS,
) -> List[Tuple[int, PointSpec, Optional[int], PointOptions]]:
    payloads = []
    for index, spec in enumerate(specs):
        seed = None
        if spec.seed_key is not None:
            if base_seed is None:
                raise ConfigurationError(
                    f"spec {spec.name!r} has seed_key={spec.seed_key!r} but "
                    "run_sweep was called without base_seed"
                )
            seed = derive_point_seed(base_seed, spec.seed_key)
        payloads.append((index, spec, seed, options))
    return payloads


def _run_inline(payloads, progress) -> List[PointResult]:
    results: List[PointResult] = []
    total = len(payloads)
    for payload in payloads:
        index, spec = payload[0], payload[1]
        outcome = _execute_point(payload)
        _, ok, value, elapsed, pid = outcome
        if not ok:
            type_name, message, remote_tb = value
            raise SweepPointError(
                spec, index, f"{type_name}: {message}\n{remote_tb}"
            )
        result = PointResult(spec=spec, index=index, value=value,
                             wallclock_time=elapsed, pid=pid)
        results.append(result)
        if progress is not None:
            progress(result, len(results), total)
    return results


def _mp_context():
    """The multiprocessing context used for pools.

    ``fork`` (where available) inherits the parent's experiment registry,
    so test-registered callables work; elsewhere the default context is
    used and string-registered experiments resolve by import.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_pool(payloads, workers, progress, *,
              pool_respawns: int = 1) -> List[PointResult]:
    """Fan payloads over a process pool, surviving pool crashes.

    A worker dying mid-point (OOM kill, segfault, ``os._exit``) breaks
    the whole :class:`ProcessPoolExecutor`, not just its own future.  The
    results already retrieved are kept; the pool is respawned (at most
    ``pool_respawns`` times) and only the still-unfinished points are
    resubmitted — with per-point seeding and, when enabled, the snapshot
    cache, the resubmitted points produce byte-identical values, so an
    undisturbed sweep and a crashed-and-recovered one cannot differ.
    """
    total = len(payloads)
    by_index = {payload[0]: payload[1] for payload in payloads}
    results: Dict[int, PointResult] = {}
    remaining = list(payloads)
    respawns_left = max(0, pool_respawns)
    while remaining:
        executor = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=_mp_context())
        futures: Dict[Any, int] = {}
        try:
            for payload in remaining:
                futures[executor.submit(_execute_point, payload)] = payload[0]
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        index, ok, value, elapsed, pid = future.result()
                    except KeyboardInterrupt:
                        raise
                    except BrokenProcessPool:
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        # The failure report itself failed to cross the
                        # process boundary (unpicklable point *value*, a
                        # worker killed mid-point...).  Pin the blame on
                        # the point whose future broke instead of
                        # surfacing a bare pool internals error.
                        index = futures[future]
                        type_name, message, _ = _describe_exception(exc)
                        raise SweepPointError(
                            by_index[index], index,
                            f"result could not be retrieved from the worker: "
                            f"{type_name}: {message}",
                        ) from exc
                    if not ok:
                        type_name, message, remote_tb = value
                        raise SweepPointError(
                            by_index[index], index,
                            f"{type_name}: {message}\n--- worker traceback ---\n"
                            f"{remote_tb}",
                        )
                    result = PointResult(spec=by_index[index], index=index,
                                         value=value, wallclock_time=elapsed,
                                         pid=pid)
                    results[index] = result
                    if progress is not None:
                        progress(result, len(results), total)
        except BrokenProcessPool as exc:
            # A worker died abruptly and took the pool with it.  Keep what
            # finished, respawn, resubmit the rest.
            executor.shutdown(wait=True, cancel_futures=True)
            remaining = [p for p in remaining if p[0] not in results]
            if not remaining:
                break
            if respawns_left <= 0:
                index = remaining[0][0]
                raise SweepPointError(
                    by_index[index], index,
                    f"a worker process died abruptly and the pool-respawn "
                    f"budget ({pool_respawns}) is exhausted",
                ) from exc
            respawns_left -= 1
            continue
        except BaseException:
            # Failure, KeyboardInterrupt, or a raising progress callback:
            # drop everything still queued and shut the pool down before
            # propagating (in-flight points finish, workers then exit).
            for future in futures:
                future.cancel()
            executor.shutdown(wait=True, cancel_futures=True)
            raise
        executor.shutdown(wait=True)
        break
    return [results[index] for index in sorted(results)]


def run_sweep(specs: Sequence[PointSpec], *,
              workers: Union[None, int, str] = None,
              base_seed: Optional[int] = None,
              progress: Optional[Callable[[PointResult, int, int], None]] = None,
              timeout: Optional[float] = None,
              retries: int = 0,
              retry_backoff: float = 0.5,
              pool_respawns: int = 1,
              checkpoint_dir: Union[None, str, Path] = None,
              snapshot_plan: Optional[Any] = None,
              ) -> List[PointResult]:
    """Execute every spec and return results in spec order.

    Parameters
    ----------
    specs:
        The sweep's points; executed independently, submitted in order.
    workers:
        Process count (``1`` = inline in this process, no pool).  ``None``
        resolves via ``REPRO_WORKERS`` (default 1); ``"auto"`` uses the
        CPU count.
    base_seed:
        Base seed for specs carrying a ``seed_key`` (per-point seeds are
        derived, not shared, so results are worker-count independent).
    progress:
        Called as ``progress(result, n_completed, n_total)`` after each
        point completes.  Completion order is nondeterministic under a
        pool; only the returned list's order is guaranteed.
    timeout:
        Wall-clock seconds per point *attempt*; an attempt past the limit
        is interrupted with :class:`PointTimeoutError` (and retried, if
        ``retries`` allows).
    retries:
        Extra attempts for a failed point, with exponential backoff
        (``retry_backoff * 2**attempt`` seconds between attempts) and the
        identical derived seed — retrying cannot change results.
    pool_respawns:
        How many times a crashed worker pool (a worker killed mid-point
        breaks the whole pool) is respawned; the finished results are
        kept and only unfinished points are resubmitted.
    checkpoint_dir:
        Crash-recovery directory for the sweep.  Finished point values
        are cached here and skipped on a re-run, so a killed sweep
        re-invoked with the same directory completes with byte-identical
        outputs, computing only what is missing.
    snapshot_plan:
        A :class:`~repro.snapshot.plan.SnapshotPlan` (requires
        ``checkpoint_dir``).  Points with a registered snapshot builder
        then auto-snapshot at the plan's boundaries and resume from their
        last snapshot after a crash or timeout retry.

    Returns
    -------
    ``PointResult`` list in the same order as ``specs``, regardless of
    completion order — with per-point seeding this makes sweep outputs
    byte-identical across worker counts.
    """
    specs = list(specs)
    if snapshot_plan is not None and checkpoint_dir is None:
        raise ConfigurationError(
            "snapshot_plan requires checkpoint_dir (snapshots need a home)"
        )
    options = PointOptions(
        timeout=timeout,
        retries=retries,
        retry_backoff=retry_backoff,
        checkpoint_dir=(None if checkpoint_dir is None
                        else str(checkpoint_dir)),
        snapshot_plan=snapshot_plan,
    )
    payloads = _payloads(specs, base_seed, options)
    total = len(payloads)

    # Resume: points whose value is already cached are not re-executed.
    cached: Dict[int, PointResult] = {}
    if options.checkpoint_dir is not None:
        pending = []
        for payload in payloads:
            index, spec, seed, _ = payload
            hit, value = _load_cached_value(options.checkpoint_dir,
                                            point_cache_key(spec, seed))
            if hit:
                cached[index] = PointResult(
                    spec=spec, index=index, value=value,
                    wallclock_time=0.0, pid=os.getpid(),
                )
            else:
                pending.append(payload)
        payloads = pending
        if progress is not None:
            for done, index in enumerate(sorted(cached), start=1):
                progress(cached[index], done, total)
        if progress is not None and cached:
            inner_progress = progress

            def progress(result, n_completed, n_total,
                         _offset=len(cached), _inner=inner_progress):
                _inner(result, n_completed + _offset, total)

    if not payloads:
        return [cached[index] for index in sorted(cached)]
    count = resolve_workers(workers)
    if count == 1 or len(payloads) <= 1:
        executed = _run_inline(payloads, progress)
    else:
        executed = _run_pool(payloads, min(count, max(1, len(payloads))),
                             progress, pool_respawns=pool_respawns)
    merged = dict(cached)
    merged.update({result.index: result for result in executed})
    return [merged[index] for index in sorted(merged)]


def run_named_sweep(experiment: str, variants: Dict[Any, Dict[str, Any]], *,
                    workers: Union[None, int, str] = None,
                    base_seed: Optional[int] = None,
                    progress: Optional[Callable[[PointResult, int, int], None]] = None,
                    **run_kwargs: Any) -> Dict[Any, Any]:
    """Run one sweep point per ``variants`` entry; return ``{key: value}``.

    ``variants`` maps a display key (a string, tuple, …) to the keyword
    arguments of one ``experiment`` run; the key also labels the point.
    This is the shape of every comparison series (placements × one
    workload, policies × one trace, …): insertion order is preserved and
    the values come back matched to their keys for any worker count.
    Robustness options (``timeout``, ``retries``, ``checkpoint_dir``,
    ``snapshot_plan``, …) pass through to :func:`run_sweep`.
    """
    keys = list(variants)
    values = sweep_values(
        [
            make_spec(experiment, label=f"{experiment}[{key}]",
                      **variants[key])
            for key in keys
        ],
        workers=workers,
        base_seed=base_seed,
        progress=progress,
        **run_kwargs,
    )
    return dict(zip(keys, values))


def sweep_values(specs: Sequence[PointSpec], *,
                 workers: Union[None, int, str] = None,
                 base_seed: Optional[int] = None,
                 progress: Optional[Callable[[PointResult, int, int], None]] = None,
                 **run_kwargs: Any) -> List[Any]:
    """Like :func:`run_sweep`, returning just the point values in order."""
    return [
        result.value
        for result in run_sweep(
            specs, workers=workers, base_seed=base_seed, progress=progress,
            **run_kwargs,
        )
    ]
