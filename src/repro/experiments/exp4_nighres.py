"""Exp 4 — real application: the Nighres workflow (Figure 6).

The four-step cortical-reconstruction workflow (Table II) runs on a single
cluster node using a single local disk.  The paper reports the absolute
relative simulation error of WRENCH and WRENCH-cache for each of the eight
I/O operations (Read 1, Write 1, ..., Read 4, Write 4); errors drop from an
average of 337 % (WRENCH) to 47 % (WRENCH-cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.nighres import NIGHRES_STEPS, nighres_input_files, nighres_workflow
from repro.experiments.exp1_single import sweep_errors_vs_reference
from repro.experiments.harness import ScenarioConfig, build_simulation
from repro.experiments.metrics import mean_error_percent
from repro.units import MB

#: Operation labels of Figure 6, in execution order.
EXP4_OPERATIONS: Tuple[str, ...] = tuple(
    f"{kind} {index}" for index in range(1, len(NIGHRES_STEPS) + 1)
    for kind in ("Read", "Write")
)

#: Simulators compared in Figure 6.
EXP4_SIMULATORS: Tuple[str, ...] = ("wrench", "wrench-cache")


@dataclass
class Exp4Result:
    """Outcome of one Exp 4 run."""

    simulator: str
    #: Duration of each operation, keyed by label ("Read 1", ..., "Write 4").
    durations: Dict[str, float]
    makespan: float = 0.0
    wallclock_time: float = 0.0

    def operation_series(self) -> List[Tuple[str, float]]:
        """Durations in execution order."""
        return [(label, self.durations[label]) for label in EXP4_OPERATIONS]


def run_exp4(simulator: str, *, chunk_size: float = 50 * MB,
             trace_interval: Optional[float] = None) -> Exp4Result:
    """Run the Nighres workflow with one simulator."""
    scenario = ScenarioConfig(
        nfs=False, chunk_size=chunk_size, trace_interval=trace_interval
    )
    simulation, storage = build_simulation(simulator, scenario)
    workflow = nighres_workflow()
    for file in nighres_input_files():
        simulation.stage_file(file, storage)
    simulation.submit_workflow(
        workflow, host="node1", storage=storage, label="nighres"
    )
    result = simulation.run()

    durations: Dict[str, float] = {}
    for index, step in enumerate(NIGHRES_STEPS, start=1):
        durations[f"Read {index}"] = result.duration_of(step.name, "read")
        durations[f"Write {index}"] = result.duration_of(step.name, "write")

    return Exp4Result(
        simulator=simulator,
        durations=durations,
        makespan=result.makespan,
        wallclock_time=result.wallclock_time,
    )


def exp4_errors(*, simulators: Sequence[str] = EXP4_SIMULATORS,
                chunk_size: float = 50 * MB,
                reference: Optional[Exp4Result] = None,
                workers: Union[None, int, str] = None,
                ) -> Dict[str, Dict[str, float]]:
    """Per-operation absolute relative errors (%) — the data of Figure 6.

    The per-simulator runs (and the reference, unless supplied) execute
    as one sweep through
    :func:`repro.experiments.exp1_single.sweep_errors_vs_reference`.
    """
    return sweep_errors_vs_reference(
        "exp4",
        simulators,
        reference,
        workers=workers,
        chunk_size=chunk_size,
    )


def exp4_mean_errors(errors: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Mean error (%) per simulator, excluding the fully-uncached first read."""
    means: Dict[str, float] = {}
    for simulator, per_op in errors.items():
        values = [value for label, value in per_op.items() if label != "Read 1"]
        means[simulator] = mean_error_percent(values)
    return means
