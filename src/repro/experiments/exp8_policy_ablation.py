"""Exp 8 — eviction-policy ablation over the paper's workloads.

Exps 1-7 all run the kernel's LRU approximation (the paper-faithful,
parity-pinned default).  Exp 8 asks the follow-up question the pluggable
:class:`~repro.pagecache.policy.EvictionPolicy` API exists to answer: *does
victim selection matter for these workloads?*  It replays a fixed set of
workloads under every registered policy (LRU, ARC, 2Q, CLOCK-Pro and the
scheduler-aware priority-weighted policy) and tabulates hit ratio and
makespan per (workload, policy) cell.

Workloads
---------
``"skewed"``
    A cache-adversarial loop on one node: a small *hot set* is re-read
    every round, interleaved with a stream of *one-shot* scan files that
    together overflow memory.  Pure LRU keeps the most recent bytes — the
    useless scans — and evicts the hot set; scan-resistant policies (ARC,
    2Q, CLOCK-Pro) keep the hot set resident and win on hit ratio.  This
    is the classic workload the ARC/2Q papers are built around, scaled so
    one round slightly exceeds memory.
``"exp5"``
    The Exp 2/5 concurrent-applications workload (wrench-cache simulator,
    reduced scale).  The working set fits in the node's 250 GiB memory, so
    all policies tie — an honest control showing victim selection is
    irrelevant without memory pressure.
``"exp6"``
    The Exp 6 cluster batch-scheduling workload (reduced scale), exercising
    the policy on every node cache under the cluster scheduler.
``"exp7"``
    The Exp 7 SWF trace replay (bounded job count) with preemptive
    priority scheduling — scheduler events fire, but the nodes' default
    250 GiB memory means victim selection is rarely exercised.
``"sched"``
    The scheduler-driven cell built *for* the priority-weighted policy: a
    small cluster with deliberately tight node memory runs long
    low-priority jobs that high-priority latecomers preempt, so the
    scheduler's dispatch *and* preemption hooks fire under real eviction
    pressure — the one cell where
    :class:`~repro.pagecache.policy.PriorityWeightedPolicy` has both its
    inputs (job priorities, preemption events) and a reason to use them
    (not every file fits).  :class:`PolicyPoint` reports the hook
    counters (``n_job_dispatches`` / ``n_job_preemptions``) for this
    cell, pinning down that the events actually happened.

Every workload is seeded or fully deterministic, so the ablation table is
byte-stable across runs and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.des import Environment
from repro.errors import ConfigurationError
from repro.experiments.runner import run_named_sweep
from repro.pagecache import IOController, MemoryManager, PageCacheConfig
from repro.platform.memory import MemoryDevice
from repro.platform.storage import Disk
from repro.units import GB, MB, MBps

#: Policies compared in the ablation (registry names, see
#: :data:`repro.pagecache.policy.POLICIES`).
EXP8_POLICIES: Tuple[str, ...] = ("lru", "arc", "2q", "clock-pro", "priority")

#: Workloads the ablation replays.
EXP8_WORKLOADS: Tuple[str, ...] = ("skewed", "exp5", "exp6", "exp7", "sched")

#: Skewed-workload scale: one round reads ``N_HOT`` hot files plus
#: ``N_ONESHOT`` fresh scan files; hot+scan bytes exceed memory so every
#: round forces evictions.
DEFAULT_N_HOT = 8
DEFAULT_N_ONESHOT = 12
DEFAULT_FILE_SIZE = 64 * MB
DEFAULT_ROUNDS = 6
DEFAULT_MEMORY_SIZE = 1 * GB
DEFAULT_CHUNK_SIZE = 16 * MB


@dataclass
class PolicyPoint:
    """One (workload, policy) cell of the ablation table.

    ``read_time`` is only meaningful for workloads that report a
    per-application read time (``skewed`` uses total simulated time);
    cluster workloads leave it at 0.
    """

    policy: str
    workload: str
    hit_ratio: float
    makespan: float
    read_time: float
    wallclock_time: float
    #: Scheduler hook counters summed over every node cache (``sched``
    #: cell only; other workloads leave them 0 even when hooks fire).
    n_job_dispatches: int = 0
    n_job_preemptions: int = 0

    def as_row(self) -> Tuple[object, ...]:
        """Row of the Exp 8 report table."""
        return (
            self.workload,
            self.policy,
            100.0 * self.hit_ratio,
            self.makespan,
        )


def run_skewed(policy: object = "lru", *,
               n_hot: int = DEFAULT_N_HOT,
               n_oneshot: int = DEFAULT_N_ONESHOT,
               file_size: float = DEFAULT_FILE_SIZE,
               rounds: int = DEFAULT_ROUNDS,
               memory_size: float = DEFAULT_MEMORY_SIZE,
               chunk_size: float = DEFAULT_CHUNK_SIZE) -> PolicyPoint:
    """Run the hot-set-plus-scans loop under one eviction policy.

    Single node, read-only: each round re-reads the ``n_hot`` hot files
    and then ``n_oneshot`` *new* scan files (never touched again), so the
    only quantity under test is which bytes the policy keeps.  The run is
    deterministic — there is no randomness at all, just a fixed loop.
    """
    import time

    start = time.perf_counter()
    env = Environment()
    memory = MemoryDevice.symmetric(env, "ram", 2000 * MBps, size=memory_size)
    disk = Disk.symmetric(env, "disk", 200 * MBps)
    config = PageCacheConfig(
        chunk_size=chunk_size,
        periodic_flushing=False,
        eviction_policy=policy,
    )
    mm = MemoryManager(env, memory, config, name="exp8-mm")
    io = IOController(env, mm)

    hot_files = [f"hot{i}" for i in range(n_hot)]

    def driver():
        for r in range(rounds):
            for name in hot_files:
                yield from io.read_file(
                    name, file_size, disk, use_anonymous_memory=False
                )
            for j in range(n_oneshot):
                yield from io.read_file(
                    f"scan{r}_{j}", file_size, disk,
                    use_anonymous_memory=False,
                )
        mm.stop()

    process = env.process(driver(), name="exp8-driver")
    env.run(until=process)
    return PolicyPoint(
        policy=mm.policy.name,
        workload="skewed",
        hit_ratio=mm.stats.hit_ratio,
        makespan=env.now,
        read_time=env.now,
        wallclock_time=time.perf_counter() - start,
    )


def _run_exp5(policy: object, **kwargs) -> PolicyPoint:
    from repro.experiments.exp2_concurrent import run_exp2

    params = dict(n_apps=4, input_size=512 * MB, chunk_size=64 * MB)
    params.update(kwargs)
    point = run_exp2("wrench-cache", eviction_policy=policy, **params)
    return PolicyPoint(
        policy=str(policy),
        workload="exp5",
        hit_ratio=point.hit_ratio,
        makespan=point.makespan,
        read_time=point.read_time,
        wallclock_time=point.wallclock_time,
    )


def _run_exp6(policy: object, **kwargs) -> PolicyPoint:
    from repro.experiments.exp6_cluster import run_exp6

    params = dict(n_jobs=40, n_nodes=4, n_datasets=8)
    params.update(kwargs)
    point = run_exp6(eviction_policy=policy, **params)
    return PolicyPoint(
        policy=str(policy),
        workload="exp6",
        hit_ratio=point.cache_hit_ratio,
        makespan=point.makespan,
        read_time=0.0,
        wallclock_time=point.wallclock_time,
    )


def _run_exp7(policy: object, **kwargs) -> PolicyPoint:
    from repro.experiments.exp7_trace_replay import run_exp7

    params = dict(max_jobs=60, n_nodes=4)
    params.update(kwargs)
    point = run_exp7(eviction_policy=policy, **params)
    return PolicyPoint(
        policy=str(policy),
        workload="exp7",
        hit_ratio=point.cache_hit_ratio,
        makespan=point.makespan,
        read_time=0.0,
        wallclock_time=point.wallclock_time,
    )


#: ``sched``-cell scale: two 4-core nodes whose memory holds ~4 of the 6
#: shared 256 MB datasets, so placement and victim selection both matter.
DEFAULT_SCHED_NODES = 2
DEFAULT_SCHED_CORES = 4
DEFAULT_SCHED_MEMORY = 1 * GB
DEFAULT_SCHED_DATASETS = 6
DEFAULT_SCHED_DATASET_SIZE = 256 * MB


def run_sched_cell(policy: object = "lru", *,
                   n_nodes: int = DEFAULT_SCHED_NODES,
                   cores_per_node: int = DEFAULT_SCHED_CORES,
                   memory_size: float = DEFAULT_SCHED_MEMORY,
                   n_datasets: int = DEFAULT_SCHED_DATASETS,
                   dataset_size: float = DEFAULT_SCHED_DATASET_SIZE,
                   n_low: int = 10,
                   n_high: int = 6,
                   chunk_size: float = DEFAULT_CHUNK_SIZE) -> PolicyPoint:
    """Run the scheduler-driven ablation cell under one eviction policy.

    ``n_low`` node-wide low-priority jobs (long compute, one shared
    dataset each) saturate the cluster from t=0; ``n_high`` short
    high-priority jobs arrive while they run, and the preemptive priority
    scheduler suspends low-priority work for them.  Node memory is sized
    below the shared working set, so the page cache evicts under load
    while the scheduler streams dispatch/preemption events into the
    policy — the counters come back in the returned point.  The workload
    is a fixed deterministic schedule (no randomness at all).
    """
    import time

    from repro.filesystem.file import File
    from repro.simulator.simulation import Simulation, SimulationConfig
    from repro.simulator.workflow import Task, Workflow

    start = time.perf_counter()
    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback",
            chunk_size=chunk_size,
            trace_interval=None,
        ),
        eviction_policy=(None if policy == "lru" else policy),
    )
    simulation.create_cluster_platform(
        n_nodes,
        cores_per_node=cores_per_node,
        memory_size=memory_size,
        with_nfs_server=False,
    )
    simulation.create_cluster_scheduler(
        policy="preemptive-priority",
        placement="cache",
        lost_work_penalty=0.25,
    )
    datasets = [
        File(f"shared{d}", dataset_size) for d in range(n_datasets)
    ]
    for dataset in datasets:
        simulation.stage_file_replicated(dataset)
    for i in range(n_low):
        label = f"low{i}"
        workflow = Workflow(label)
        workflow.add_task(Task.from_cpu_time(
            "churn",
            6.0,
            inputs=[datasets[i % n_datasets]],
            outputs=[File(f"{label}_out", 32 * MB)],
        ))
        simulation.submit_job(
            workflow,
            cores=cores_per_node,
            arrival_time=0.05 * i,
            priority=0,
            label=label,
        )
    for j in range(n_high):
        label = f"high{j}"
        workflow = Workflow(label)
        workflow.add_task(Task.from_cpu_time(
            "urgent",
            0.5,
            inputs=[datasets[j % n_datasets]],
            outputs=[File(f"{label}_out", 16 * MB)],
        ))
        simulation.submit_job(
            workflow,
            cores=cores_per_node,
            arrival_time=2.0 + 1.5 * j,
            priority=10,
            label=label,
        )
    result = simulation.run()

    dispatches = 0
    preemptions = 0
    policy_name = str(policy)
    for host in simulation.platform.hosts.values():
        manager = host.memory_manager
        if manager is None:
            continue
        policy_name = manager.policy.name
        dispatches += manager.policy.stats.job_dispatches
        preemptions += manager.policy.stats.job_preemptions
    return PolicyPoint(
        policy=policy_name,
        workload="sched",
        hit_ratio=result.read_cache_hit_ratio(),
        makespan=result.scheduler.makespan,
        read_time=0.0,
        wallclock_time=time.perf_counter() - start,
        n_job_dispatches=dispatches,
        n_job_preemptions=preemptions,
    )


def run_exp8(policy: object = "lru", workload: str = "skewed",
             **kwargs) -> PolicyPoint:
    """Run one (workload, policy) cell of the ablation.

    ``kwargs`` are forwarded to the underlying workload driver
    (:func:`run_skewed`, :func:`run_sched_cell`, or the reduced-scale
    exp5/exp6/exp7 runs).
    """
    if workload == "skewed":
        return run_skewed(policy, **kwargs)
    if workload == "exp5":
        return _run_exp5(policy, **kwargs)
    if workload == "exp6":
        return _run_exp6(policy, **kwargs)
    if workload == "exp7":
        return _run_exp7(policy, **kwargs)
    if workload == "sched":
        return run_sched_cell(policy, **kwargs)
    raise ConfigurationError(
        f"unknown exp8 workload {workload!r}; expected one of {EXP8_WORKLOADS}"
    )


def exp8_series(policies: Sequence[str] = EXP8_POLICIES, *,
                workloads: Sequence[str] = ("skewed",),
                workers: Union[None, int, str] = None,
                progress=None,
                **kwargs) -> Dict[Tuple[str, str], PolicyPoint]:
    """The (workload × policy) ablation grid as one flat sweep.

    Returns ``{(workload, policy): PolicyPoint}`` in grid order; every
    point is an independent deterministic simulation, so the grid fans out
    across ``workers`` processes with a worker-count-independent result.
    """
    return run_named_sweep(
        "exp8",
        {
            (workload, policy): dict(policy=policy, workload=workload,
                                     **kwargs)
            for workload in workloads
            for policy in policies
        },
        workers=workers,
        progress=progress,
    )


def exp8_report(points: Dict[Tuple[str, str], PolicyPoint],
                title: Optional[str] = None) -> str:
    """Render the ablation as a plain-text table."""
    header = title or "Exp 8 — eviction-policy ablation"
    return format_table(
        ["Workload", "Policy", "Cache hit (%)", "Makespan (s)"],
        [point.as_row() for point in points.values()],
        title=header,
        precision=2,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Run the default ablation and print the table (CI artifact)."""
    points = exp8_series(workloads=("skewed", "exp5", "exp6"))
    print(exp8_report(points))


if __name__ == "__main__":  # pragma: no cover
    main()
