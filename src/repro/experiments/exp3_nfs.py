"""Exp 3 — concurrent applications on NFS storage (Figure 7).

Same workload as Exp 2 (1 to 32 instances of the synthetic application with
3 GB files), but all files live on an NFS-mounted partition of a remote
disk served by another node over the 25 Gbps network.  As commonly
configured in HPC environments there is no client write cache and the
server cache is writethrough; client and server read caches are enabled, so
writes happen at disk bandwidth while reads can benefit from server-side
cache hits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.experiments.exp2_concurrent import (
    ConcurrencyPoint,
    DEFAULT_APP_COUNTS,
    DEFAULT_INPUT_SIZE,
    exp2_series,
    run_exp2,
    sweep_exp2,
)
from repro.experiments.runner import PointResult
from repro.units import MB


def run_exp3(simulator: str, n_apps: int, *,
             input_size: float = DEFAULT_INPUT_SIZE,
             chunk_size: float = 100 * MB) -> ConcurrencyPoint:
    """Run one NFS concurrency level for one simulator."""
    return run_exp2(
        simulator, n_apps, input_size=input_size, chunk_size=chunk_size, nfs=True
    )


def sweep_exp3(simulator: str, *, counts: Sequence[int] = DEFAULT_APP_COUNTS,
               input_size: float = DEFAULT_INPUT_SIZE,
               chunk_size: float = 100 * MB,
               workers: Union[None, int, str] = None,
               progress: Optional[Callable[[PointResult, int, int], None]] = None,
               ) -> List[ConcurrencyPoint]:
    """Run a full NFS concurrency sweep for one simulator (one curve of Fig 7)."""
    return sweep_exp2(
        simulator,
        counts=counts,
        input_size=input_size,
        chunk_size=chunk_size,
        nfs=True,
        workers=workers,
        progress=progress,
    )


def exp3_series(simulators: Sequence[str] = ("real", "wrench", "wrench-cache"), *,
                counts: Sequence[int] = DEFAULT_APP_COUNTS,
                input_size: float = DEFAULT_INPUT_SIZE,
                chunk_size: float = 100 * MB,
                workers: Union[None, int, str] = None,
                progress: Optional[Callable[[PointResult, int, int], None]] = None,
                ) -> Dict[str, List[ConcurrencyPoint]]:
    """All the curves of Figure 7."""
    return exp2_series(
        simulators,
        counts=counts,
        input_size=input_size,
        chunk_size=chunk_size,
        nfs=True,
        workers=workers,
        progress=progress,
    )
