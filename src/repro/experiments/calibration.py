"""Calibration data: Tables I, II and III of the paper.

Table I and Table II give the application parameters (file sizes and
measured CPU times) that the paper injects into the simulators.  Table III
gives the measured device bandwidths on the real cluster and the symmetric
values used to configure the simulators (the mean of the measured read and
write bandwidths, because SimGrid 3.25 only supports symmetrical
bandwidths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.apps.nighres import NIGHRES_STEPS, NighresStep
from repro.apps.synthetic import SYNTHETIC_CPU_TIMES
from repro.units import MBps


#: Table I — synthetic application parameters (input size GB -> CPU time s).
TABLE1_SYNTHETIC: Dict[float, float] = dict(SYNTHETIC_CPU_TIMES)

#: Table II — Nighres application parameters.
TABLE2_NIGHRES: Tuple[NighresStep, ...] = NIGHRES_STEPS


@dataclass(frozen=True)
class DeviceBandwidths:
    """Measured and simulated bandwidths of one device (bytes/s)."""

    name: str
    real_read: float
    real_write: float
    simulated: Optional[float]

    @property
    def symmetric_mean(self) -> float:
        """Mean of the measured read and write bandwidths."""
        return (self.real_read + self.real_write) / 2.0


@dataclass(frozen=True)
class BandwidthCalibration:
    """Table III — bandwidth benchmarks and simulator configuration."""

    memory: DeviceBandwidths
    local_disk: DeviceBandwidths
    remote_disk: DeviceBandwidths
    network: DeviceBandwidths

    def devices(self) -> List[DeviceBandwidths]:
        """All devices in the order of Table III."""
        return [self.memory, self.local_disk, self.remote_disk, self.network]

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """Rows of Table III: (device, real read, real write, simulated), MBps."""
        return [
            (
                device.name,
                device.real_read / MBps,
                device.real_write / MBps,
                (device.simulated or device.symmetric_mean) / MBps,
            )
            for device in self.devices()
        ]


#: Table III with the paper's measured values.
TABLE3_BANDWIDTHS = BandwidthCalibration(
    memory=DeviceBandwidths("Memory", 6860 * MBps, 2764 * MBps, 4812 * MBps),
    local_disk=DeviceBandwidths("Local disk", 510 * MBps, 420 * MBps, 465 * MBps),
    remote_disk=DeviceBandwidths("Remote disk", 515 * MBps, 375 * MBps, 445 * MBps),
    network=DeviceBandwidths("Network", 3000 * MBps, 3000 * MBps, 3000 * MBps),
)


def table1_rows() -> List[Tuple[float, float]]:
    """Rows of Table I: (input size GB, CPU time s)."""
    return sorted(TABLE1_SYNTHETIC.items())


def table2_rows() -> List[Tuple[str, float, float, float]]:
    """Rows of Table II: (step, input MB, output MB, CPU time s)."""
    return [
        (step.name, step.input_size / 1e6, step.output_size / 1e6, step.cpu_time)
        for step in TABLE2_NIGHRES
    ]


def simulator_bandwidths() -> Dict[str, float]:
    """Symmetric bandwidths used to configure the paper-faithful simulators."""
    table = TABLE3_BANDWIDTHS
    return {
        "memory": table.memory.simulated,
        "local_disk": table.local_disk.simulated,
        "remote_disk": table.remote_disk.simulated,
        "network": table.network.simulated,
    }


def real_bandwidths() -> Dict[str, Tuple[float, float]]:
    """Measured (read, write) bandwidths used by the calibrated reference."""
    table = TABLE3_BANDWIDTHS
    return {
        "memory": (table.memory.real_read, table.memory.real_write),
        "local_disk": (table.local_disk.real_read, table.local_disk.real_write),
        "remote_disk": (table.remote_disk.real_read, table.remote_disk.real_write),
        "network": (table.network.real_read, table.network.real_write),
    }
