"""Error metrics used by the evaluation.

The paper reports *absolute relative simulation errors*: for each traced
operation, ``|simulated - real| / real``, expressed as a percentage in the
figures.  Averages are taken over operations (excluding operations whose
reference duration is zero).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence


def absolute_relative_error(simulated: float, reference: float) -> float:
    """Absolute relative error ``|simulated - reference| / reference``.

    Returns ``0.0`` when both values are zero and ``inf`` when only the
    reference is zero (an operation simulated as instantaneous in the
    reference but not in the simulator).
    """
    if reference == 0:
        return 0.0 if simulated == 0 else float("inf")
    return abs(simulated - reference) / abs(reference)


def relative_error_percent(simulated: float, reference: float) -> float:
    """Absolute relative error expressed in percent (as in Figures 4a, 6)."""
    return 100.0 * absolute_relative_error(simulated, reference)


def mean_absolute_relative_error(simulated: Sequence[float],
                                 reference: Sequence[float]) -> float:
    """Mean absolute relative error over paired observations.

    Pairs whose reference value is zero are skipped (they carry no error
    information); raises ``ValueError`` if the sequences differ in length
    or no usable pair remains.
    """
    if len(simulated) != len(reference):
        raise ValueError(
            f"length mismatch: {len(simulated)} simulated vs {len(reference)} reference"
        )
    errors = [
        absolute_relative_error(sim, ref)
        for sim, ref in zip(simulated, reference)
        if ref != 0
    ]
    if not errors:
        raise ValueError("no usable (non-zero reference) observation")
    return sum(errors) / len(errors)


def per_operation_errors(simulated: Mapping[str, float],
                         reference: Mapping[str, float]) -> Dict[str, float]:
    """Per-operation absolute relative errors (percent), keyed like the inputs.

    Only operations present in both mappings are compared.
    """
    errors: Dict[str, float] = {}
    for key, ref in reference.items():
        if key in simulated:
            errors[key] = relative_error_percent(simulated[key], ref)
    return errors


def mean_error_percent(errors: Iterable[float]) -> float:
    """Mean of a collection of per-operation errors in percent."""
    values = [value for value in errors if value != float("inf")]
    if not values:
        return 0.0
    return sum(values) / len(values)


def error_reduction_factor(baseline_errors: Iterable[float],
                           improved_errors: Iterable[float]) -> float:
    """How many times smaller the improved mean error is vs the baseline.

    This is the paper's headline "up to an order of magnitude" metric.
    Returns ``inf`` if the improved error is zero.
    """
    baseline = mean_error_percent(baseline_errors)
    improved = mean_error_percent(improved_errors)
    if improved == 0:
        return float("inf")
    return baseline / improved


def summarize_errors(errors: Iterable[float]) -> Dict[str, float]:
    """Summary of a collection of per-operation errors (percent).

    Infinite errors (zero-reference operations) are excluded from the
    mean/min/max but reported separately in ``n_infinite``, so reports
    can state both "the mean error over comparable operations" and "how
    many operations had no usable reference".
    """
    values = list(errors)
    finite = [value for value in values if value != float("inf")]
    return {
        "n": len(values),
        "n_infinite": len(values) - len(finite),
        "mean": sum(finite) / len(finite) if finite else 0.0,
        "min": min(finite) if finite else 0.0,
        "max": max(finite) if finite else 0.0,
    }


def publish_errors(registry, errors: Mapping[str, float],
                   prefix: str = "experiment.error", **labels) -> Dict[str, float]:
    """Publish per-operation errors into a telemetry metrics registry.

    ``registry`` is a :class:`repro.obs.MetricsRegistry`.  Each
    operation's error becomes a labelled gauge ``<prefix>.percent`` and
    the finite errors feed a ``<prefix>.histogram`` distribution, so a
    sweep can ``merge()`` shard registries and still recover the error
    profile.  Returns the :func:`summarize_errors` summary, which is
    also published under ``<prefix>.mean`` / ``<prefix>.max``.
    """
    summary = summarize_errors(errors.values())
    histogram = registry.histogram(f"{prefix}.histogram", **labels)
    for operation, value in sorted(errors.items()):
        registry.gauge(f"{prefix}.percent", operation=operation,
                       **labels).set(value)
        if value != float("inf"):
            histogram.observe(value)
    registry.gauge(f"{prefix}.mean", **labels).set(summary["mean"])
    registry.gauge(f"{prefix}.max", **labels).set(summary["max"])
    return summary
