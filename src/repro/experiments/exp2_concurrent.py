"""Exp 2 — concurrent applications on a local disk (Figure 5).

1 to 32 concurrent instances of the synthetic application run on a single
32-core node, each instance operating on its own 3 GB files stored on the
same local SSD.  The paper plots, as a function of the number of concurrent
applications, the mean per-application cumulative read time and write time
for the real execution, WRENCH and WRENCH-cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.concurrent import make_instances, stage_and_submit_instances
from repro.experiments.harness import ScenarioConfig, build_simulation
from repro.experiments.runner import PointResult, make_spec, sweep_values
from repro.units import GB, MB

#: Concurrency levels plotted in Figures 5 and 7.
DEFAULT_APP_COUNTS: Tuple[int, ...] = (1, 4, 8, 12, 16, 20, 24, 28, 32)

#: File size of each instance (3 GB in the paper).
DEFAULT_INPUT_SIZE = 3 * GB


@dataclass
class ConcurrencyPoint:
    """One point of Figure 5 / Figure 7."""

    simulator: str
    n_apps: int
    #: Mean per-application cumulative read time (seconds).
    read_time: float
    #: Mean per-application cumulative write time (seconds).
    write_time: float
    makespan: float
    wallclock_time: float
    #: Fraction of read bytes served from page caches (0.0 for the
    #: cacheless simulator).  Added for the policy ablation (exp8); the
    #: parity goldens pin the named time fields above, not this one.
    hit_ratio: float = 0.0

    def as_row(self) -> Tuple[int, float, float]:
        """(n_apps, read_time, write_time) row for reports."""
        return (self.n_apps, self.read_time, self.write_time)


def build_exp2(simulator: str, n_apps: int, *,
               input_size: float = DEFAULT_INPUT_SIZE,
               chunk_size: float = 100 * MB,
               nfs: bool = False,
               eviction_policy: object = "lru"):
    """Build one concurrency-level simulation (unstarted), recipe bound.

    The builder/finisher split exists for checkpoint/restore: a snapshot
    records this function's parameters, and a restore rebuilds through it
    before replaying.  :func:`run_exp2` composes the two.
    """
    scenario = ScenarioConfig(nfs=nfs, chunk_size=chunk_size, trace_interval=None,
                              eviction_policy=eviction_policy)
    simulation, storage = build_simulation(simulator, scenario)
    instances = make_instances(n_apps, input_size)
    stage_and_submit_instances(
        simulation, instances, host="node1", storage=storage, chunk_size=chunk_size
    )
    from repro.snapshot.recipe import SimRecipe

    simulation.bind_recipe(SimRecipe("exp2", dict(
        simulator=simulator, n_apps=n_apps, input_size=input_size,
        chunk_size=chunk_size, nfs=nfs, eviction_policy=eviction_policy,
    )))
    return simulation


def finish_exp2(result, simulator: str, n_apps: int,
                **_params) -> ConcurrencyPoint:
    """Reduce a finished Exp 2 ``SimulationResult`` to its point metrics."""
    return ConcurrencyPoint(
        simulator=simulator,
        n_apps=n_apps,
        read_time=result.mean_app_read_time(),
        write_time=result.mean_app_write_time(),
        makespan=result.makespan,
        wallclock_time=result.wallclock_time,
        hit_ratio=result.read_cache_hit_ratio(),
    )


def run_exp2(simulator: str, n_apps: int, **params) -> ConcurrencyPoint:
    """Run one concurrency level for one simulator.

    ``nfs=False`` gives Exp 2 (local disk); ``nfs=True`` gives Exp 3 (the
    same workload against the NFS-mounted remote disk).
    ``eviction_policy`` selects the page caches' victim-selection policy
    (the policy ablation of exp8 sweeps it); the default LRU reproduces
    the paper runs bit-identically.
    """
    simulation = build_exp2(simulator, n_apps, **params)
    result = simulation.run()
    return finish_exp2(result, simulator, n_apps, **params)


def _exp2_specs(simulator: str, counts: Sequence[int], input_size: float,
                chunk_size: float, nfs: bool):
    storage = "nfs" if nfs else "local"
    return [
        make_spec(
            "exp2",
            label=f"exp2[{simulator},{storage},{n_apps}]",
            simulator=simulator,
            n_apps=n_apps,
            input_size=input_size,
            chunk_size=chunk_size,
            nfs=nfs,
        )
        for n_apps in counts
    ]


def sweep_exp2(simulator: str, *, counts: Sequence[int] = DEFAULT_APP_COUNTS,
               input_size: float = DEFAULT_INPUT_SIZE,
               chunk_size: float = 100 * MB,
               nfs: bool = False,
               workers: Union[None, int, str] = None,
               progress: Optional[Callable[[PointResult, int, int], None]] = None,
               ) -> List[ConcurrencyPoint]:
    """Run a full concurrency sweep for one simulator (one curve of Fig 5/7).

    The points are independent simulations and fan out across ``workers``
    processes (see :mod:`repro.experiments.runner`); results come back in
    ``counts`` order for any worker count.
    """
    return sweep_values(
        _exp2_specs(simulator, counts, input_size, chunk_size, nfs),
        workers=workers,
        progress=progress,
    )


def exp2_series(simulators: Sequence[str] = ("real", "wrench", "wrench-cache"), *,
                counts: Sequence[int] = DEFAULT_APP_COUNTS,
                input_size: float = DEFAULT_INPUT_SIZE,
                chunk_size: float = 100 * MB,
                nfs: bool = False,
                workers: Union[None, int, str] = None,
                progress: Optional[Callable[[PointResult, int, int], None]] = None,
                ) -> Dict[str, List[ConcurrencyPoint]]:
    """All the curves of Figure 5 (or Figure 7 with ``nfs=True``).

    The whole (simulator × count) grid is submitted as one flat sweep, so
    a pool is kept busy across curve boundaries instead of draining at the
    end of each curve.
    """
    simulators = list(simulators)
    counts = list(counts)
    specs = [
        spec
        for simulator in simulators
        for spec in _exp2_specs(simulator, counts, input_size, chunk_size, nfs)
    ]
    values = sweep_values(specs, workers=workers, progress=progress)
    per_curve = len(counts)
    return {
        simulator: values[i * per_curve:(i + 1) * per_curve]
        for i, simulator in enumerate(simulators)
    }
