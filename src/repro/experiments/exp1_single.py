"""Exp 1 — single-threaded execution on a local disk (Figures 4a, 4b, 4c).

A single instance of the synthetic application runs on one cluster node,
with all I/O directed to the same local disk, for input file sizes of 20,
50, 75 and 100 GB.  The paper reports, for each of the six I/O operations
(Read 1, Write 1, ..., Write 3):

* the absolute relative simulation error of the Python prototype, WRENCH
  and WRENCH-cache against the real execution (Figure 4a);
* the memory profile over time (used memory, cache, dirty data; Figure 4b);
* the per-file cache content after each operation (Figure 4c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.synthetic import NUM_TASKS, synthetic_workflow
from repro.experiments.harness import ScenarioConfig, build_simulation
from repro.experiments.metrics import mean_error_percent, per_operation_errors
from repro.experiments.runner import make_spec, sweep_values
from repro.pagecache.memory_manager import MemorySnapshot
from repro.simulator.tracing import CacheContentRecord
from repro.units import GB, MB

#: Operation labels, in execution order (the x axis of Figures 4a and 4c).
EXP1_OPERATIONS: Tuple[str, ...] = tuple(
    f"{kind} {index}" for index in range(1, NUM_TASKS + 1) for kind in ("Read", "Write")
)

#: File sizes evaluated by the paper (20 and 100 GB are the ones plotted).
EXP1_FILE_SIZES: Tuple[float, ...] = (20 * GB, 50 * GB, 75 * GB, 100 * GB)

#: Simulators compared against the reference in Figure 4a.
EXP1_SIMULATORS: Tuple[str, ...] = ("pysim", "wrench", "wrench-cache")


@dataclass
class Exp1Result:
    """Outcome of one Exp 1 run for one simulator and one file size."""

    simulator: str
    file_size: float
    #: Duration of each operation, keyed by label ("Read 1", "Write 1", ...).
    durations: Dict[str, float]
    #: Memory profile samples (empty when tracing is disabled).
    memory_trace: List[MemorySnapshot] = field(default_factory=list)
    #: Per-file cache contents after each I/O operation.
    cache_contents: List[CacheContentRecord] = field(default_factory=list)
    makespan: float = 0.0
    wallclock_time: float = 0.0

    def operation_series(self) -> List[Tuple[str, float]]:
        """Durations in execution order, as (label, seconds) pairs."""
        return [(label, self.durations[label]) for label in EXP1_OPERATIONS]

    def cache_contents_per_operation(self) -> Dict[str, Dict[str, float]]:
        """Per-file cache content right after each operation (Figure 4c)."""
        contents: Dict[str, Dict[str, float]] = {}
        for record in self.cache_contents:
            task_index = int(record.task.replace("task", ""))
            label = f"{'Read' if record.kind == 'read' else 'Write'} {task_index}"
            contents[label] = dict(record.contents)
        return contents


def run_exp1(simulator: str, file_size: float, *, chunk_size: float = 100 * MB,
             trace_interval: Optional[float] = 5.0) -> Exp1Result:
    """Run one Exp 1 configuration and collect its observables."""
    scenario = ScenarioConfig(
        nfs=False, chunk_size=chunk_size, trace_interval=trace_interval
    )
    simulation, storage = build_simulation(simulator, scenario)
    workflow = synthetic_workflow(file_size)
    simulation.stage_file(workflow.input_files()[0], storage)
    simulation.submit_workflow(workflow, host="node1", storage=storage, label="app1")
    result = simulation.run()

    durations: Dict[str, float] = {}
    for index in range(1, NUM_TASKS + 1):
        durations[f"Read {index}"] = result.duration_of(f"task{index}", "read")
        durations[f"Write {index}"] = result.duration_of(f"task{index}", "write")

    return Exp1Result(
        simulator=simulator,
        file_size=file_size,
        durations=durations,
        memory_trace=result.memory_trace,
        cache_contents=result.cache_contents,
        makespan=result.makespan,
        wallclock_time=result.wallclock_time,
    )


def sweep_errors_vs_reference(experiment: str, simulators: Sequence[str],
                              reference, *,
                              workers: Union[None, int, str] = None,
                              **params) -> Dict[str, Dict[str, float]]:
    """Per-simulator error sweeps against a reference run, as one fan-out.

    Runs ``experiment`` once per simulator — plus a trailing ``"real"``
    run when ``reference`` is ``None`` — through the sweep engine, then
    maps each simulator to its per-operation errors against the
    reference's durations.  Shared by :func:`exp1_errors` and
    :func:`repro.experiments.exp4_nighres.exp4_errors`, whose result
    objects both expose ``.durations``.
    """
    simulators = list(simulators)
    sweep = list(simulators)
    if reference is None:
        sweep.append("real")
    runs = sweep_values(
        [
            make_spec(experiment, label=f"{experiment}[{simulator}]",
                      simulator=simulator, **params)
            for simulator in sweep
        ],
        workers=workers,
    )
    if reference is None:
        reference = runs.pop()
    return {
        simulator: per_operation_errors(run.durations, reference.durations)
        for simulator, run in zip(simulators, runs)
    }


def exp1_errors(file_size: float, *, simulators: Sequence[str] = EXP1_SIMULATORS,
                chunk_size: float = 100 * MB,
                reference: Optional[Exp1Result] = None,
                workers: Union[None, int, str] = None,
                ) -> Dict[str, Dict[str, float]]:
    """Per-operation absolute relative errors (%) against the reference.

    Returns ``{simulator: {operation label: error percent}}`` — the data of
    Figure 4a for one file size.  The reference run can be passed in to
    avoid recomputing it across simulators or file sizes; when it is not,
    it joins the per-simulator runs in one sweep, fanned out across
    ``workers`` processes (:mod:`repro.experiments.runner`).
    """
    return sweep_errors_vs_reference(
        "exp1",
        simulators,
        reference,
        workers=workers,
        file_size=file_size,
        chunk_size=chunk_size,
        trace_interval=None,
    )


def exp1_mean_errors(errors: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Mean error (%) per simulator, skipping the unaffected first read."""
    means: Dict[str, float] = {}
    for simulator, per_op in errors.items():
        # The first read only involves uncached data and is accurately
        # simulated by every simulator; the paper's averages are dominated
        # by the remaining operations, which we average here.
        values = [value for label, value in per_op.items() if label != "Read 1"]
        means[simulator] = mean_error_percent(values)
    return means


def exp1_cache_contents(simulator: str, file_size: float, *,
                        chunk_size: float = 100 * MB) -> Dict[str, Dict[str, float]]:
    """Per-file cache contents after each operation (Figure 4c)."""
    run = run_exp1(simulator, file_size, chunk_size=chunk_size, trace_interval=None)
    return run.cache_contents_per_operation()


def exp1_memory_profile(simulator: str, file_size: float, *,
                        chunk_size: float = 100 * MB,
                        trace_interval: float = 5.0) -> List[MemorySnapshot]:
    """Memory profile samples over time (Figure 4b)."""
    run = run_exp1(
        simulator, file_size, chunk_size=chunk_size, trace_interval=trace_interval
    )
    return run.memory_trace
