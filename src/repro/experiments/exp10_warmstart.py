"""Exp 10 — warm-start sweeps: N variants branched off one snapshot.

The checkpoint/restore machinery (PR 9) replays a simulation back to a
snapshot boundary; this experiment measures what that buys a *sweep*.  A
shared Exp 6-shaped cluster prefix runs once to a branch time, a snapshot
pins it, and then a grid of scheduler variants (policy × placement — the
parameters that can be swapped on a live simulation, see
:data:`~repro.snapshot.run.LIVE_OVERRIDES`) continues from the branch
point under each variant:

cold
    every variant restores the snapshot itself — build + replay the
    prefix, swap the scheduler, run the tail.  N variants pay N full
    prefix replays.
warm
    :func:`~repro.snapshot.run.warm_start_values` restores (and verifies)
    the prefix **once**, then forks one child per variant off the live
    replayed state: one prefix replay plus N tails.

Both paths run the *identical* simulation per variant, so the per-variant
metrics must agree exactly — the experiment asserts that before reporting
the wall-clock ratio.  The expected speedup approaches
``(prefix + tail) / (prefix/N + tail)`` as the prefix dominates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.experiments.exp6_cluster import ClusterPoint, build_exp6, finish_exp6
from repro.snapshot import (
    apply_live_overrides,
    restore_simulation,
    warm_start_values,
    write_snapshot,
)

#: Scheduler variants of the default grid (policy × placement).
EXP10_POLICIES: Tuple[str, ...] = ("fifo", "sjf")
EXP10_PLACEMENTS: Tuple[str, ...] = ("round-robin", "least-loaded", "cache")

#: Default scale: a long shared prefix (most arrivals land before the
#: branch) makes the warm/cold contrast visible — at this scale the warm
#: path wins by ~3x over six variants.
DEFAULT_N_JOBS = 150
DEFAULT_T_BRANCH = 50.0


@dataclass(frozen=True)
class Exp10Result:
    """The warm-start cell: per-variant points plus the cost comparison."""

    points: Dict[Tuple[str, str], ClusterPoint]
    t_branch: float
    cold_seconds: float
    warm_seconds: float

    @property
    def speedup(self) -> float:
        """Cold wall-clock over warm wall-clock (> 1 means warm wins)."""
        if self.warm_seconds <= 0.0:
            return float("inf")
        return self.cold_seconds / self.warm_seconds


def snapshot_branch_point(directory: Union[str, Path], *,
                          t_branch: float = DEFAULT_T_BRANCH,
                          n_jobs: int = DEFAULT_N_JOBS,
                          **params) -> Path:
    """Run the shared Exp 6 prefix to ``t_branch`` and snapshot it.

    ``params`` are forwarded to :func:`~repro.experiments.exp6_cluster.
    build_exp6`; the snapshot embeds them in its recipe, so every restore
    (cold or warm) rebuilds the identical prefix.
    """
    if t_branch <= 0.0:
        raise ConfigurationError(
            f"t_branch must be positive, got {t_branch}"
        )
    simulation = build_exp6(n_jobs=n_jobs, **params)
    simulation.step_until(t_branch)
    path = Path(directory) / "exp10-branch.json"
    return write_snapshot(simulation, path)


def _variant_grid(policies: Sequence[str],
                  placements: Sequence[str]) -> List[dict]:
    return [
        {"policy": policy, "placement": placement}
        for policy in policies
        for placement in placements
    ]


def _finish_variant(recipe, result) -> ClusterPoint:
    params = {k: v for k, v in recipe.params.items() if k != "placement"}
    return finish_exp6(result, recipe.params.get("placement", "cache"),
                       **params)


def run_exp10(snapshot_dir: Union[str, Path], *,
              policies: Sequence[str] = EXP10_POLICIES,
              placements: Sequence[str] = EXP10_PLACEMENTS,
              t_branch: float = DEFAULT_T_BRANCH,
              n_jobs: int = DEFAULT_N_JOBS,
              check: bool = True,
              **params) -> Exp10Result:
    """Run the warm-start cell: snapshot once, branch the variant grid.

    Times the cold path (every variant restores the snapshot itself) and
    the warm path (:func:`warm_start_values`: one verified restore, one
    fork per variant), and — with ``check=True`` — asserts both paths
    produce identical per-variant metrics before reporting the ratio.
    """
    variants = _variant_grid(policies, placements)
    if not variants:
        raise ConfigurationError("exp10 needs at least one variant")
    path = snapshot_branch_point(snapshot_dir, t_branch=t_branch,
                                 n_jobs=n_jobs, **params)

    start = time.perf_counter()
    cold_points = []
    for overrides in variants:
        simulation = restore_simulation(path, verify=False)
        apply_live_overrides(simulation, overrides)
        result = simulation.run()
        cold_points.append(_finish_variant(simulation.recipe, result))
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm_points = warm_start_values(path, variants, finish=_finish_variant)
    warm_seconds = time.perf_counter() - start

    points: Dict[Tuple[str, str], ClusterPoint] = {}
    for overrides, cold, warm in zip(variants, cold_points, warm_points):
        # The recipe carries the *template's* scheduler parameters; stamp
        # the variant's own so the report rows are labelled correctly.
        warm = replace(warm, policy=overrides["policy"],
                       placement=overrides["placement"])
        if check:
            cold = replace(cold, policy=overrides["policy"],
                           placement=overrides["placement"],
                           wallclock_time=warm.wallclock_time)
            if cold != warm:
                raise ConfigurationError(
                    f"warm-start variant {overrides!r} diverged from its "
                    f"cold restore: {warm} != {cold}"
                )
        points[(overrides["policy"], overrides["placement"])] = warm
    return Exp10Result(points=points, t_branch=t_branch,
                       cold_seconds=cold_seconds, warm_seconds=warm_seconds)


def exp10_report(result: Exp10Result, title: Optional[str] = None) -> str:
    """Render the warm-start cell as a plain-text table."""
    header = title or (
        f"Exp 10 — warm-start sweep off one snapshot (t_branch="
        f"{result.t_branch:g}s): cold {result.cold_seconds:.2f}s, "
        f"warm {result.warm_seconds:.2f}s, speedup {result.speedup:.2f}x"
    )
    rows = [
        (policy, placement, point.makespan, 100.0 * point.cache_hit_ratio,
         point.mean_wait_time)
        for (policy, placement), point in result.points.items()
    ]
    return format_table(
        ["Policy", "Placement", "Makespan (s)", "Cache hit (%)",
         "Mean wait (s)"],
        rows,
        title=header,
        precision=2,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    """Run the default cell in a temp directory and print the table."""
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        result = run_exp10(directory)
    print(exp10_report(result))


if __name__ == "__main__":  # pragma: no cover
    main()
