"""Common experiment harness.

The evaluation compares four "simulators", all built from the same library
but configured differently:

``"wrench"``
    The original cacheless WRENCH simulator: symmetric averaged bandwidths
    (Table III), all I/O at disk bandwidth, no page cache.
``"wrench-cache"``
    The paper's contribution: same symmetric bandwidths, page cache model
    enabled (writeback locally, writethrough NFS server remotely).
``"pysim"``
    The standalone Python prototype: identical page cache algorithms but a
    contention-oblivious storage model (no bandwidth sharing), only
    meaningful for single-threaded scenarios (Exp 1).
``"real"``
    The calibrated reference standing in for the real cluster executions
    (see DESIGN.md §4): the same page-cache engine at higher fidelity —
    measured asymmetric bandwidths, eviction protection of files being
    written, dirty threshold computed against available memory.

:func:`build_simulation` returns a ready-to-use
:class:`~repro.simulator.simulation.Simulation` plus its storage service
for any of these simulators, for local-disk or NFS scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.calibration import TABLE3_BANDWIDTHS
from repro.pagecache.config import PageCacheConfig
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.storage_service import StorageService
from repro.units import GiB, MB

#: Simulator kinds accepted by the harness.
SIMULATORS = ("wrench", "wrench-cache", "pysim", "real")

#: Total memory of a compute node (250 GiB in the paper's cluster).
NODE_MEMORY = 250 * GiB

#: Capacity used for simulated disks.  The paper's nodes have 450 GB SSDs,
#: but Exp 1 writes up to 3 x 100 GB on one disk; we keep the experiments
#: focused on I/O time rather than capacity management.
DISK_CAPACITY = float("inf")


@dataclass
class ScenarioConfig:
    """Where the application's data lives and how the simulation observes it.

    Attributes
    ----------
    nfs:
        If true, the data is on an NFS-mounted remote disk (Exp 3);
        otherwise on the local SSD of the compute node (Exp 1, 2, 4).
    chunk_size:
        I/O granularity used by the page-cache simulators.
    trace_interval:
        Memory-profile sampling period (``None`` disables sampling, which
        speeds up large concurrency sweeps).
    compute_nodes:
        Number of compute nodes in the platform (the experiments use one).
    cores_per_node:
        CPU cores per compute node (32 on the paper's cluster).
    eviction_policy:
        Victim-selection policy of the page caches (a registered name or
        spec, see :mod:`repro.pagecache.policy`); the default LRU is the
        paper-faithful, parity-pinned behaviour.
    """

    nfs: bool = False
    chunk_size: float = 100 * MB
    trace_interval: Optional[float] = None
    compute_nodes: int = 1
    cores_per_node: int = 32
    eviction_policy: object = "lru"


def _page_cache_config(simulator: str, chunk_size: float,
                       eviction_policy: object = "lru") -> PageCacheConfig:
    if simulator == "real":
        return PageCacheConfig.reference().with_updates(
            chunk_size=chunk_size, eviction_policy=eviction_policy
        )
    return PageCacheConfig(chunk_size=chunk_size,
                           eviction_policy=eviction_policy)


def build_simulation(simulator: str,
                     scenario: Optional[ScenarioConfig] = None,
                     ) -> Tuple[Simulation, StorageService]:
    """Build a simulation and its storage service for one simulator kind.

    Returns ``(simulation, storage_service)``; the caller stages input
    files, submits workflows and calls ``simulation.run()``.
    """
    if simulator not in SIMULATORS:
        raise ConfigurationError(
            f"unknown simulator {simulator!r}; expected one of {SIMULATORS}"
        )
    scenario = scenario or ScenarioConfig()
    table = TABLE3_BANDWIDTHS

    cache_mode = "none" if simulator == "wrench" else "writeback"
    config = SimulationConfig(
        cache_mode=cache_mode,
        page_cache=_page_cache_config(simulator, scenario.chunk_size,
                                      scenario.eviction_policy),
        chunk_size=scenario.chunk_size,
        trace_interval=scenario.trace_interval,
    )
    simulation = Simulation(config=config)

    platform_kwargs = dict(
        compute_nodes=scenario.compute_nodes,
        cores_per_node=scenario.cores_per_node,
        memory_size=NODE_MEMORY,
        local_disk_capacity=DISK_CAPACITY,
        remote_disk_capacity=DISK_CAPACITY,
        with_nfs_server=scenario.nfs,
        sharing=(simulator != "pysim"),
    )
    if simulator == "real":
        # Calibrated reference: measured, asymmetric bandwidths.
        platform_kwargs.update(
            memory_read_bandwidth=table.memory.real_read,
            memory_write_bandwidth=table.memory.real_write,
            memory_bandwidth=table.memory.real_read,
            local_disk_read_bandwidth=table.local_disk.real_read,
            local_disk_write_bandwidth=table.local_disk.real_write,
            local_disk_bandwidth=table.local_disk.real_read,
            remote_disk_read_bandwidth=table.remote_disk.real_read,
            remote_disk_write_bandwidth=table.remote_disk.real_write,
            remote_disk_bandwidth=table.remote_disk.real_read,
            network_bandwidth=table.network.real_read,
        )
    else:
        # Paper-faithful simulators: symmetric averaged bandwidths.
        platform_kwargs.update(
            memory_bandwidth=table.memory.simulated,
            local_disk_bandwidth=table.local_disk.simulated,
            remote_disk_bandwidth=table.remote_disk.simulated,
            network_bandwidth=table.network.simulated,
        )
    simulation.create_cluster_platform(**platform_kwargs)

    if scenario.nfs:
        service = simulation.create_nfs_storage_service(
            "storage1",
            "/export",
            cache_mode=("none" if simulator == "wrench" else "writethrough"),
        )
    else:
        service = simulation.create_storage_service(
            "node1",
            "/local",
            cache_mode=cache_mode,
        )
    return simulation, service
