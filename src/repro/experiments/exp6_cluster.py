"""Exp 6 — batch scheduling over a multi-node cluster.

The paper's experiments (Exps 1-4) exercise one workflow per host; Exp 6
opens the multi-tenant scenario space: a stream of batch jobs arrives at a
cluster of compute nodes, each node holding a full replica of a shared pool
of input datasets on its local SSD, and a batch scheduler decides when
(policy: FIFO, SJF, EASY backfilling) and where (placement: round-robin,
least-loaded, cache-locality-aware) each job runs.

Because the simulator models every node's page cache, placement decisions
have a measurable data-locality effect: sending a job to the node that
already holds its input bytes in memory turns a disk-bandwidth read into a
memory-bandwidth read.  The experiment compares placement strategies on the
cluster-level metrics — page-cache hit ratio, makespan, mean wait time,
bounded slowdown, utilization and throughput — over a seeded random
workload (Poisson arrivals, datasets and job sizes drawn from a
:class:`~repro.rng.DeterministicRNG`), so every run is reproducible by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.experiments.runner import run_named_sweep
from repro.filesystem.file import File
from repro.rng import DeterministicRNG
from repro.scheduler.arrivals import PoissonArrivalProcess
from repro.simulator.simulation import Simulation, SimulationConfig
from repro.simulator.workflow import Task, Workflow
from repro.units import GB, MB

#: Placement strategies compared in the experiment.
EXP6_PLACEMENTS: Tuple[str, ...] = ("round-robin", "least-loaded", "cache")

#: Default experiment scale (kept ≥ the acceptance floor of 100 jobs / 8 nodes).
DEFAULT_N_JOBS = 120
DEFAULT_N_NODES = 8
DEFAULT_N_DATASETS = 16
DEFAULT_CORES_PER_NODE = 8
DEFAULT_INPUT_SIZE = 1 * GB
DEFAULT_OUTPUT_SIZE = 256 * MB
DEFAULT_ARRIVAL_RATE = 3.0  # jobs per simulated second
DEFAULT_CHUNK_SIZE = 100 * MB
DEFAULT_SEED = 42


@dataclass
class ClusterPoint:
    """Cluster-level metrics of one (policy, placement) run."""

    policy: str
    placement: str
    n_jobs: int
    n_nodes: int
    makespan: float
    cache_hit_ratio: float
    mean_wait_time: float
    mean_bounded_slowdown: float
    utilization: float
    throughput: float
    wallclock_time: float
    #: Fault-injection outcomes (all zero in fault-free runs).
    n_node_failures: int = 0
    n_job_restarts: int = 0
    lost_work_seconds: float = 0.0

    def as_row(self) -> Tuple[object, ...]:
        """Row of the Exp 6 report table."""
        return (
            self.placement,
            self.policy,
            100.0 * self.cache_hit_ratio,
            self.makespan,
            self.mean_wait_time,
            self.mean_bounded_slowdown,
            100.0 * self.utilization,
            self.throughput,
        )


def build_cluster_workload(simulation: Simulation, *,
                           n_jobs: int = DEFAULT_N_JOBS,
                           n_datasets: int = DEFAULT_N_DATASETS,
                           input_size: float = DEFAULT_INPUT_SIZE,
                           output_size: float = DEFAULT_OUTPUT_SIZE,
                           arrival_rate: float = DEFAULT_ARRIVAL_RATE,
                           seed: int = DEFAULT_SEED,
                           min_cores: int = 1,
                           max_cores: int = 4,
                           cpu_time_range: Tuple[float, float] = (2.0, 6.0),
                           ) -> None:
    """Stage the shared datasets and submit the seeded random job stream.

    Each job reads one of ``n_datasets`` shared input datasets (replicated
    on every node's local disk), computes for a few seconds and writes a
    private output file.  Arrival times follow a Poisson process; dataset,
    core count and CPU time are drawn from independent child streams of
    the same seed, so changing one draw never perturbs the others.
    """
    rng = DeterministicRNG(seed)
    datasets = [File(f"dataset{d}", input_size) for d in range(n_datasets)]
    for dataset in datasets:
        simulation.stage_file_replicated(dataset)

    arrivals = PoissonArrivalProcess(arrival_rate, rng.spawn("arrivals"))
    dataset_rng = rng.spawn("datasets")
    cores_rng = rng.spawn("cores")
    cpu_rng = rng.spawn("cpu-times")
    for index, arrival_time in enumerate(arrivals.generate(n_jobs)):
        dataset = dataset_rng.choice(datasets)
        cores = cores_rng.integer(min_cores, max_cores)
        cpu_time = cpu_rng.uniform(*cpu_time_range)
        label = f"job{index}"
        workflow = Workflow(label)
        workflow.add_task(
            Task.from_cpu_time(
                "process",
                cpu_time,
                inputs=[dataset],
                outputs=[File(f"{label}_out", output_size)],
            )
        )
        simulation.submit_job(
            workflow,
            cores=cores,
            arrival_time=arrival_time,
            label=label,
        )


def build_exp6(placement: str = "cache", *, policy: str = "fifo",
               n_jobs: int = DEFAULT_N_JOBS,
               n_nodes: int = DEFAULT_N_NODES,
               n_datasets: int = DEFAULT_N_DATASETS,
               cores_per_node: int = DEFAULT_CORES_PER_NODE,
               input_size: float = DEFAULT_INPUT_SIZE,
               output_size: float = DEFAULT_OUTPUT_SIZE,
               arrival_rate: float = DEFAULT_ARRIVAL_RATE,
               chunk_size: float = DEFAULT_CHUNK_SIZE,
               seed: int = DEFAULT_SEED,
               eviction_policy: object = "lru",
               fault_plan=None) -> Simulation:
    """Build the Exp 6 simulation (unstarted), with its recipe bound.

    The builder/finisher split exists for checkpoint/restore: a snapshot
    records the recipe (this function's parameters) and a restore calls
    this builder again before replaying.  :func:`run_exp6` composes the
    two, so a direct run and a snapshot/resume run share every line of
    construction code.
    """
    simulation = Simulation(
        config=SimulationConfig(
            cache_mode="writeback",
            chunk_size=chunk_size,
            trace_interval=None,
        ),
        eviction_policy=(None if eviction_policy == "lru" else eviction_policy),
        fault_plan=fault_plan,
    )
    simulation.create_cluster_platform(
        n_nodes, cores_per_node=cores_per_node, with_nfs_server=False
    )
    simulation.create_cluster_scheduler(policy=policy, placement=placement)
    build_cluster_workload(
        simulation,
        n_jobs=n_jobs,
        n_datasets=n_datasets,
        input_size=input_size,
        output_size=output_size,
        arrival_rate=arrival_rate,
        seed=seed,
    )
    from repro.snapshot.recipe import SimRecipe

    simulation.bind_recipe(SimRecipe("exp6", dict(
        placement=placement, policy=policy, n_jobs=n_jobs, n_nodes=n_nodes,
        n_datasets=n_datasets, cores_per_node=cores_per_node,
        input_size=input_size, output_size=output_size,
        arrival_rate=arrival_rate, chunk_size=chunk_size, seed=seed,
        eviction_policy=eviction_policy, fault_plan=fault_plan,
    )))
    return simulation


def finish_exp6(result, placement: str = "cache", *, policy: str = "fifo",
                n_nodes: int = DEFAULT_N_NODES, **_params) -> ClusterPoint:
    """Reduce a finished Exp 6 ``SimulationResult`` to its point metrics."""
    metrics = result.scheduler
    return ClusterPoint(
        policy=policy,
        placement=placement,
        n_jobs=metrics.n_jobs,
        n_nodes=n_nodes,
        makespan=metrics.makespan,
        cache_hit_ratio=result.read_cache_hit_ratio(),
        mean_wait_time=metrics.mean_wait_time,
        mean_bounded_slowdown=metrics.mean_bounded_slowdown(),
        utilization=metrics.utilization,
        throughput=metrics.throughput,
        wallclock_time=result.wallclock_time,
        n_node_failures=metrics.n_node_failures,
        n_job_restarts=metrics.n_job_restarts,
        lost_work_seconds=metrics.lost_work_seconds,
    )


def run_exp6(placement: str = "cache", **params) -> ClusterPoint:
    """Run one cluster scheduling simulation and return its metrics.

    ``eviction_policy`` selects every node cache's victim-selection policy
    (swept by the exp8 policy ablation); the default LRU keeps the run
    bit-identical to the pre-policy simulator.  ``fault_plan`` injects
    seeded node crashes / stragglers / elasticity (exp9); ``None`` and the
    zero plan leave the run untouched.
    """
    simulation = build_exp6(placement, **params)
    result = simulation.run()
    return finish_exp6(result, placement, **params)


def exp6_series(placements: Sequence[str] = EXP6_PLACEMENTS, *,
                policy: str = "fifo",
                workers: Union[None, int, str] = None,
                progress=None,
                **kwargs) -> Dict[str, ClusterPoint]:
    """Run the same seeded workload under every placement strategy.

    One sweep point per placement, fanned out across ``workers``
    processes (:func:`~repro.experiments.runner.run_named_sweep`); each
    point replays the identical seeded workload (the seed travels in the
    spec), so the comparison is workload-controlled by construction and
    the result dict is worker-count independent.
    """
    return run_named_sweep(
        "exp6",
        {
            placement: dict(placement=placement, policy=policy, **kwargs)
            for placement in placements
        },
        workers=workers,
        progress=progress,
    )


def exp6_policy_series(policies: Sequence[str] = ("fifo", "sjf", "easy"), *,
                       placement: str = "cache",
                       workers: Union[None, int, str] = None,
                       progress=None,
                       **kwargs) -> Dict[str, ClusterPoint]:
    """Run the same seeded workload under every scheduling policy."""
    return run_named_sweep(
        "exp6",
        {
            policy: dict(placement=placement, policy=policy, **kwargs)
            for policy in policies
        },
        workers=workers,
        progress=progress,
    )


def exp6_grid(policies: Sequence[str], placements: Sequence[str], *,
              workers: Union[None, int, str] = None,
              progress=None,
              **kwargs) -> Dict[Tuple[str, str], ClusterPoint]:
    """The full policy × placement comparison as one flat sweep.

    Returns ``{(policy, placement): ClusterPoint}`` in grid order.
    """
    return run_named_sweep(
        "exp6",
        {
            (policy, placement): dict(placement=placement, policy=policy,
                                      **kwargs)
            for policy in policies
            for placement in placements
        },
        workers=workers,
        progress=progress,
    )


def exp6_report(points: Dict[str, ClusterPoint],
                title: Optional[str] = None) -> str:
    """Render the Exp 6 comparison as a plain-text table."""
    first = next(iter(points.values()))
    header = title or (
        f"Exp 6 — {first.n_jobs} jobs over {first.n_nodes} nodes "
        f"(policy: {first.policy})"
    )
    return format_table(
        [
            "Placement",
            "Policy",
            "Cache hit (%)",
            "Makespan (s)",
            "Mean wait (s)",
            "Bounded slowdown",
            "Utilization (%)",
            "Jobs/s",
        ],
        [point.as_row() for point in points.values()],
        title=header,
        precision=2,
    )
