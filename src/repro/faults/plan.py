"""Declarative fault plans.

A :class:`FaultPlan` describes *what* goes wrong in a run — node crashes,
stragglers, elastic capacity — without any reference to the simulation
objects, so plans are plain frozen data: picklable (they ride through the
sweep engine's worker processes), hashable, and comparable.  The
:class:`~repro.faults.injector.FaultInjector` turns a plan into seeded
discrete-event processes at simulation start.

Determinism is by construction: every random draw of the injector comes
from a :class:`~repro.rng.DeterministicRNG` seeded with
``derive_seed(plan.seed, stream_key)`` where the stream key names the node
and fault kind (``"crash:node3"``), so adding a straggler to one node never
perturbs the crash times of another.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Wildcard node pattern: the spec applies to every scheduler node.
ALL_NODES = "*"


@dataclass(frozen=True)
class NodeFaultSpec:
    """Crash/repair behaviour of one node (or all nodes with ``"*"``).

    The node alternates between up and down: up-times are exponential
    with mean ``mtbf``, down-times exponential with mean ``mttr`` (both
    drawn from the node's own seeded stream).  A crash kills the jobs
    running on the node (checkpoint rollback + requeue), aborts its
    in-flight transfers and drops its page cache; a repair brings the
    node back cold.

    Attributes
    ----------
    node:
        Node name, or :data:`ALL_NODES` for an independent crash process
        on every node.
    mtbf:
        Mean time between failures in simulated seconds (> 0).
    mttr:
        Mean time to repair in simulated seconds (>= 0; 0 restores the
        node in the next event cascade).
    first_failure_after:
        Grace period before the first failure draw (warm-up protection).
    max_failures:
        Upper bound on injected crashes per node (``None`` = unbounded).
    """

    node: str = ALL_NODES
    mtbf: float = 1000.0
    mttr: float = 50.0
    first_failure_after: float = 0.0
    max_failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ConfigurationError(
                f"node fault spec for {self.node!r}: mtbf must be > 0"
            )
        if self.mttr < 0:
            raise ConfigurationError(
                f"node fault spec for {self.node!r}: mttr must be >= 0"
            )
        if self.first_failure_after < 0:
            raise ConfigurationError(
                f"node fault spec for {self.node!r}: first_failure_after "
                "must be >= 0"
            )
        if self.max_failures is not None and self.max_failures < 0:
            raise ConfigurationError(
                f"node fault spec for {self.node!r}: max_failures must be >= 0"
            )


@dataclass(frozen=True)
class StragglerSpec:
    """Slow-node behaviour: multipliers on compute and I/O rates.

    While slowed, the node's per-core CPU speed is multiplied by
    ``compute_factor`` and the bandwidth of its disk (and memory)
    channels by ``io_factor`` (both in ``(0, 1]``; 1.0 leaves the rate
    untouched).  Original rates are recorded and restored exactly —
    no divide-then-multiply float drift.

    The slowdown window is ``[start, start + duration)``.  With
    ``period`` set the window repeats every ``period`` seconds
    (time-varying straggler); ``duration=None`` means the node straggles
    forever from ``start`` on.  ``max_delay`` adds a seeded uniform delay
    in ``[0, max_delay]`` to ``start``, de-synchronising the stragglers
    of a wildcard spec.
    """

    node: str = ALL_NODES
    compute_factor: float = 1.0
    io_factor: float = 1.0
    start: float = 0.0
    duration: Optional[float] = None
    period: Optional[float] = None
    max_delay: float = 0.0

    def __post_init__(self) -> None:
        for label, factor in (("compute_factor", self.compute_factor),
                              ("io_factor", self.io_factor)):
            if not 0 < factor <= 1:
                raise ConfigurationError(
                    f"straggler spec for {self.node!r}: {label} must be in "
                    f"(0, 1], got {factor}"
                )
        if self.start < 0 or self.max_delay < 0:
            raise ConfigurationError(
                f"straggler spec for {self.node!r}: start and max_delay "
                "must be >= 0"
            )
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError(
                f"straggler spec for {self.node!r}: duration must be > 0"
            )
        if self.period is not None:
            if self.duration is None:
                raise ConfigurationError(
                    f"straggler spec for {self.node!r}: a periodic "
                    "straggler needs a finite duration"
                )
            if self.period <= self.duration:
                raise ConfigurationError(
                    f"straggler spec for {self.node!r}: period must exceed "
                    "duration"
                )


@dataclass(frozen=True)
class ElasticNodeSpec:
    """Burstable capacity: a node that joins and (optionally) leaves.

    Before ``join_time`` the node is held in the draining state (it
    exists in the platform but receives no work).  At ``join_time`` it
    becomes schedulable.  At ``leave_time`` it starts draining again —
    running jobs finish normally, nothing new is placed — and once idle
    it has left for good (drain-before-leave).
    """

    node: str = ""
    join_time: float = 0.0
    leave_time: Optional[float] = None
    #: Seconds between drain-completion polls while leaving.
    drain_poll: float = 5.0

    def __post_init__(self) -> None:
        if not self.node or self.node == ALL_NODES:
            raise ConfigurationError(
                "an elastic spec names one concrete node (no wildcard)"
            )
        if self.join_time < 0:
            raise ConfigurationError(
                f"elastic spec for {self.node!r}: join_time must be >= 0"
            )
        if self.leave_time is not None and self.leave_time < self.join_time:
            raise ConfigurationError(
                f"elastic spec for {self.node!r}: leave_time must be >= "
                "join_time"
            )
        if self.drain_poll <= 0:
            raise ConfigurationError(
                f"elastic spec for {self.node!r}: drain_poll must be > 0"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of everything that goes wrong.

    An empty plan (``FaultPlan()``) is the *zero plan*: it injects
    nothing, enables no fault machinery, and a simulation run with it is
    byte-identical to one run without a plan at all — the property the
    parity tests pin.
    """

    seed: int = 0
    node_faults: Tuple[NodeFaultSpec, ...] = ()
    stragglers: Tuple[StragglerSpec, ...] = ()
    elastic: Tuple[ElasticNodeSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ConfigurationError(
                f"fault plan seed must be an int, got {type(self.seed).__name__}"
            )
        # Accept lists for ergonomics; store tuples so the plan stays
        # hashable and immutable.
        for name in ("node_faults", "stragglers", "elastic"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        seen = set()
        for spec in self.elastic:
            if spec.node in seen:
                raise ConfigurationError(
                    f"duplicate elastic spec for node {spec.node!r}"
                )
            seen.add(spec.node)

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (self.node_faults or self.stragglers or self.elastic)

    def __bool__(self) -> bool:
        return not self.is_zero

    # -------------------------------------------------------------- (de)code
    def as_dict(self) -> dict:
        """The plan as plain JSON-able data (see :meth:`from_dict`).

        Snapshot recipes embed fault plans in their JSON headers; the
        round trip ``FaultPlan.from_dict(plan.as_dict()) == plan`` is
        exact because every spec field is a scalar.
        """
        return {
            "seed": self.seed,
            "node_faults": [asdict(spec) for spec in self.node_faults],
            "stragglers": [asdict(spec) for spec in self.stragglers],
            "elastic": [asdict(spec) for spec in self.elastic],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output."""
        return cls(
            seed=data.get("seed", 0),
            node_faults=tuple(
                NodeFaultSpec(**spec) for spec in data.get("node_faults", ())
            ),
            stragglers=tuple(
                StragglerSpec(**spec) for spec in data.get("stragglers", ())
            ),
            elastic=tuple(
                ElasticNodeSpec(**spec) for spec in data.get("elastic", ())
            ),
        )
